"""The resident anonymization service: a stdlib asyncio HTTP server.

``repro serve`` turns the batch pipeline into a long-lived process: one
:class:`ServeServer` holds a :class:`~repro.serve.state.ServeState`
(datasets, releases, derived artifacts and the content-addressed cache,
all resident in memory) behind a small HTTP/1.1 request router.  No third
party dependencies — requests are parsed off ``asyncio`` streams directly,
responses are JSON.

Endpoints
---------
========================  ==================================================
``GET  /health``          liveness, uptime, request and resident counts
``GET  /metrics``         the live ``repro.obs`` metrics snapshot
``POST /anonymize``       algorithm × params → release summary (cached)
``POST /properties``      per-tuple property-vector lookups (Definition 1)
``POST /compare``         Section-5 comparator verdicts between releases
``POST /query``           released-data workload queries (six shapes)
``POST /shutdown``        graceful drain + artifact flush, then exit
========================  ==================================================

Every request runs inside a ``repro.obs`` span (``serve.<endpoint>``) and
feeds per-endpoint latency histograms, so a traced server exports the same
Chrome-trace/metrics artifacts a traced study does.  Shutdown — whether by
``SIGINT``/``SIGTERM``, the ``/shutdown`` endpoint, or
:meth:`ServeServer.request_shutdown` — stops accepting, drains in-flight
requests against a deadline, then flushes trace/metrics files atomically
via :mod:`repro.utility.atomic` before the process exits.

Handlers execute in the event loop: CPU-bound work (a cold ``anonymize``)
briefly serializes the request stream, which is exactly what makes
concurrent identical cold requests single-flight — the first computes and
memoizes, the rest hit memory.  Warm traffic is pure dictionary lookups.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .. import __version__
from ..obs import NULL_OBSERVATION, Observation, metrics as obs_metrics
from ..obs import observing, tracer as obs_tracer
from ..obs.export import write_chrome_trace, write_metrics_snapshot
from ..runtime.study import StudyError, VECTOR_PROPERTIES
from .query import QueryError, render_cell
from .state import ServeRequestError, ServeState

#: Upper bound on a request body; anything larger is refused with 413.
MAX_BODY_BYTES = 1 << 20

#: Upper bound on header count per request.
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An HTTP-level protocol failure (maps straight to a status code)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict[str, Any]:
        """The request body parsed as a JSON object (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to keep the connection open."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


def _render_response(status: int, payload: Mapping[str, Any], keep_alive: bool) -> bytes:
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8") + b"\n"
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def _read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a closed connection."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1", "replace").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _HttpError(400, "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise _HttpError(400, "too many headers")
        name, separator, value = line.decode("latin-1", "replace").partition(":")
        if not separator:
            raise _HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _HttpError(400, "malformed Content-Length") from None
    if length < 0:
        raise _HttpError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method.upper(), target.split("?", 1)[0], headers, body)


class ServeServer:
    """A long-lived anonymization service over one :class:`ServeState`.

    Parameters
    ----------
    state:
        The resident datasets/releases/cache the handlers resolve through.
    host, port:
        Bind address; port ``0`` binds an ephemeral port (the bound port
        is printed on stdout and exposed as :attr:`port`).
    observation:
        A live :class:`repro.obs.Observation` installed for the server's
        lifetime (request spans + latency metrics); the null default
        records nothing.
    drain_timeout:
        Seconds shutdown waits for in-flight requests before closing
        connections.
    run_dir, trace_path, metrics_path:
        Where to flush trace/metrics artifacts on shutdown.  ``run_dir``
        is shorthand for ``trace.json`` + ``metrics.json`` inside it.
    handle_signals:
        Install ``SIGINT``/``SIGTERM`` handlers that trigger graceful
        shutdown (main thread only; ignored on a background thread).
    quiet:
        Suppress the stdout status lines (used by in-process harnesses).
    """

    def __init__(
        self,
        state: ServeState,
        host: str = "127.0.0.1",
        port: int = 0,
        observation: Any = NULL_OBSERVATION,
        drain_timeout: float = 5.0,
        run_dir: str | Path | None = None,
        trace_path: str | Path | None = None,
        metrics_path: str | Path | None = None,
        handle_signals: bool = True,
        quiet: bool = False,
    ):
        self.state = state
        self.host = host
        self.port = port
        self.observation = observation
        self.drain_timeout = drain_timeout
        self.trace_path = Path(trace_path) if trace_path else (
            Path(run_dir) / "trace.json" if run_dir else None
        )
        self.metrics_path = Path(metrics_path) if metrics_path else (
            Path(run_dir) / "metrics.json" if run_dir else None
        )
        self.handle_signals = handle_signals
        self.quiet = quiet
        self.requests_served = 0
        self.started = threading.Event()
        self.shutdown_reason: str | None = None
        self._draining = False
        self._active = 0
        self._connections: set[asyncio.Task[Any]] = set()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._start_monotonic = 0.0

    # -- lifecycle ---------------------------------------------------------

    def request_shutdown(self, reason: str = "requested") -> None:
        """Begin graceful shutdown (idempotent; safe from the loop only).

        From another thread, go through the owning loop:
        ``loop.call_soon_threadsafe(server.request_shutdown, reason)``.
        """
        if self.shutdown_reason is None:
            self.shutdown_reason = reason
        self._draining = True
        if self._stop is not None:
            self._stop.set()

    async def serve(self) -> None:
        """Bind, announce the port, and serve until shutdown; then drain."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if self._draining:
            self._stop.set()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._start_monotonic = time.monotonic()
        if not self.quiet:
            print(
                f"repro serve: listening on http://{self.host}:{self.port}",
                flush=True,
            )
        self.started.set()
        installed = self._install_signal_handlers()
        try:
            with observing(self.observation):
                await self._stop.wait()
                self._draining = True
                server.close()
                await server.wait_closed()
                await self._drain()
        finally:
            self._remove_signal_handlers(installed)
            self._flush_artifacts()
            if not self.quiet:
                print(
                    f"repro serve: shut down ({self.shutdown_reason or 'stopped'}) "
                    f"after {self.requests_served} request(s)",
                    flush=True,
                )

    def _install_signal_handlers(self) -> list[signal.Signals]:
        if not self.handle_signals:
            return []
        if threading.current_thread() is not threading.main_thread():
            return []
        installed: list[signal.Signals] = []
        assert self._loop is not None
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._loop.add_signal_handler(
                    signum, self.request_shutdown, signum.name
                )
            except (NotImplementedError, RuntimeError):
                continue
            installed.append(signum)
        return installed

    def _remove_signal_handlers(self, installed: list[signal.Signals]) -> None:
        assert self._loop is not None
        for signum in installed:
            try:
                self._loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):
                pass

    async def _drain(self) -> None:
        """Wait (bounded) for in-flight requests, then close connections."""
        assert self._loop is not None
        deadline = self._loop.time() + self.drain_timeout
        while self._active > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    def _flush_artifacts(self) -> None:
        """Write trace/metrics artifacts atomically (when paths are set)."""
        if self.metrics_path is not None and self.observation.enabled:
            write_metrics_snapshot(
                self.observation.metrics.snapshot(), self.metrics_path
            )
        if self.trace_path is not None and self.observation.enabled:
            write_chrome_trace(
                list(self.observation.trace.spans),
                self.trace_path,
                process_name="repro-serve",
            )

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while not self._draining:
                try:
                    request = await _read_request(reader)
                except _HttpError as exc:
                    writer.write(
                        _render_response(
                            exc.status, {"ok": False, "error": str(exc)}, False
                        )
                    )
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
                if request is None:
                    return
                self._active += 1
                try:
                    status, payload = self._dispatch(request)
                finally:
                    self._active -= 1
                keep_alive = request.keep_alive and not self._draining
                writer.write(_render_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- routing -----------------------------------------------------------

    def _dispatch(self, request: HttpRequest) -> tuple[int, dict[str, Any]]:
        """Route one request; always returns a JSON-able response pair."""
        routes = {
            "/health": ("GET", self._handle_health),
            "/metrics": ("GET", self._handle_metrics),
            "/anonymize": ("POST", self._handle_anonymize),
            "/properties": ("POST", self._handle_properties),
            "/compare": ("POST", self._handle_compare),
            "/query": ("POST", self._handle_query),
            "/shutdown": ("POST", self._handle_shutdown),
        }
        route = routes.get(request.path)
        if route is None:
            return 404, {
                "ok": False,
                "error": f"unknown endpoint {request.path!r}",
                "endpoints": sorted(routes),
            }
        method, handler = route
        if request.method != method:
            return 405, {
                "ok": False,
                "error": f"{request.path} expects {method}, got {request.method}",
            }
        endpoint = request.path.lstrip("/")
        self.requests_served += 1
        started = time.monotonic()
        status = 500
        try:
            with obs_tracer().span(f"serve.{endpoint}", category="serve"):
                status, payload = handler(request.json())
            return status, payload
        except _HttpError as exc:
            status = exc.status
            return exc.status, {"ok": False, "error": str(exc)}
        except (ServeRequestError, QueryError, StudyError) as exc:
            status = 400
            return 400, {"ok": False, "error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive 500 path
            # Only the exception *type* crosses the boundary: a message
            # could embed data values from arbitrarily deep in the stack.
            status = 500
            return 500, {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}",
            }
        finally:
            elapsed_ms = (time.monotonic() - started) * 1000.0
            obs_metrics().inc(f"serve.request.{endpoint}")
            obs_metrics().observe(f"serve.latency_ms.{endpoint}", elapsed_ms)
            if status >= 400:
                obs_metrics().inc("serve.error")

    # -- endpoint handlers ---------------------------------------------------

    def _handle_health(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        return 200, {
            "ok": True,
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "uptime_s": time.monotonic() - self._start_monotonic,
            "requests": self.requests_served,
            "resident": self.state.resident_counts(),
        }

    def _handle_metrics(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        return 200, {"ok": True, "metrics": self.observation.metrics.snapshot()}

    def _handle_shutdown(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        assert self._loop is not None
        # Respond first, stop accepting right after: the loop callback runs
        # once this response is on the wire.
        self._loop.call_soon(self.request_shutdown, "shutdown endpoint")
        return 200, {"ok": True, "draining": True}

    def _handle_anonymize(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        dataset_spec = self.state.dataset_spec(body.get("dataset"))
        cell = self.state.algorithm_spec(body.get("algorithm"))
        release, source = self.state.release_for(dataset_spec, cell)
        payload: dict[str, Any] = {
            "ok": True,
            "algorithm": cell.label,
            "dataset": dataset_spec.as_payload(),
            "source": source,
            "rows": len(release),
            "k": release.k(),
            "suppressed": len(release.suppressed),
            "levels": release.levels,
            "released_fingerprint": release.released.fingerprint(),
        }
        if body.get("include_rows"):
            payload["columns"] = list(release.released.schema.names)
            payload["released_rows"] = [
                [render_cell(cell_value) for cell_value in row]
                for row in release.released
            ]
        return 200, payload

    def _handle_properties(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        dataset_spec = self.state.dataset_spec(body.get("dataset"))
        cell = self.state.algorithm_spec(body.get("algorithm"))
        prop = body.get("property", "equivalence-class-size")
        vector, source = self.state.vector_for(dataset_spec, cell, prop)
        values = [float(value) for value in vector]
        indices = body.get("indices")
        if indices is not None:
            if not isinstance(indices, list) or not all(
                isinstance(i, int) and not isinstance(i, bool) for i in indices
            ):
                raise ServeRequestError("'indices' must be a list of integers")
            out_of_range = [i for i in indices if not 0 <= i < len(values)]
            if out_of_range:
                raise ServeRequestError(
                    f"indices out of range for {len(values)} rows: {out_of_range}"
                )
            values = [values[i] for i in indices]
        return 200, {
            "ok": True,
            "algorithm": cell.label,
            "property": prop,
            "source": source,
            "rows": len(vector),
            "indices": indices,
            "values": values,
        }

    def _handle_compare(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        dataset_spec = self.state.dataset_spec(body.get("dataset"))
        algorithms = body.get("algorithms")
        if not isinstance(algorithms, list) or len(algorithms) < 2:
            raise ServeRequestError(
                "compare requires an 'algorithms' list of at least two cells"
            )
        cells = tuple(self.state.algorithm_spec(item) for item in algorithms)
        prop = body.get("property", "equivalence-class-size")
        if prop not in VECTOR_PROPERTIES:
            raise ServeRequestError(
                f"unknown property {prop!r}; "
                f"choose from {sorted(VECTOR_PROPERTIES)}"
            )
        result, source = self.state.compare_for(dataset_spec, cells, prop)
        relations = sorted(
            [first, second, relation.value]
            for (first, second), relation in result["relations"].items()
        )
        return 200, {
            "ok": True,
            "property": result["property"],
            "source": source,
            "cells": [cell.label for cell in cells],
            "relations": relations,
            "wins": result["wins"],
        }

    def _handle_query(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        dataset_spec = self.state.dataset_spec(body.get("dataset"))
        cell = self.state.algorithm_spec(body.get("algorithm"))
        query = body.get("query")
        if not isinstance(query, dict):
            raise ServeRequestError("request requires a 'query' object")
        other = None
        if body.get("other") is not None:
            other = self.state.algorithm_spec(body.get("other"))
        result, source = self.state.query_for(dataset_spec, cell, query, other)
        return 200, {
            "ok": True,
            "algorithm": cell.label,
            "source": source,
            "result": result,
        }


class ServerThread:
    """Run a :class:`ServeServer` on a daemon thread (tests, bench driver).

    ``start()`` blocks until the port is bound and returns the base URL;
    ``stop()`` triggers graceful shutdown through the owning loop and
    joins the thread.  Signal handlers are never installed (background
    threads cannot own them); use the CLI entry point for signal-driven
    lifecycles.
    """

    def __init__(self, server: ServeServer):
        server.handle_signals = False
        server.quiet = True
        self.server = server
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def _run(self) -> None:
        try:
            asyncio.run(self.server.serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced in stop()
            self._error = exc

    def start(self, timeout: float = 30.0) -> str:
        """Start serving; returns ``http://host:port`` once bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self.server.started.wait(timeout):
            raise RuntimeError(
                f"server did not bind within {timeout}s"
            ) from self._error
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Drain, flush artifacts, and join the server thread."""
        thread = self._thread
        if thread is None:
            return
        loop = self.server._loop
        if loop is not None and thread.is_alive():
            try:
                loop.call_soon_threadsafe(
                    self.server.request_shutdown, "ServerThread.stop"
                )
            except RuntimeError:
                pass
        thread.join(timeout)
        if thread.is_alive():
            raise RuntimeError(f"server thread did not stop within {timeout}s")
        self._thread = None
        if self._error is not None:
            error, self._error = self._error, None
            raise error
