"""Resident server state: datasets, releases and the result cache.

A :class:`ServeState` is what makes ``repro serve`` a *service* instead of
a script: the workload datasets, their columnar views, every anonymized
release and every derived artifact (property vectors, comparator verdicts,
query results) stay resident in memory between requests, backed by the
same content-addressed :class:`~repro.runtime.cache.ResultCache` the study
runtime memoizes into.  A warm request never recomputes: resolution walks

    in-memory memo  →  on-disk cache  →  registered op

and every layer is keyed by the *same* :class:`~repro.runtime.task.CacheKey`
the batch runtime uses, so a server pointed at a study's ``--cache-dir``
serves that study's results without recomputing a single cell — and a
restarted server resumes from disk with 100% hits.

Request handlers resolve through the registered task operations
(``anonymize``, ``measure``, ``compare``, ``serve.query``), all certified
for determinism and parallel safety in ``lint/op_certificates.json`` —
the serve plane runs nothing the distributed executor could not.

Seeds follow the study convention: algorithm specs that accept a ``seed``
get one derived from the server's study seed with
:func:`~repro.runtime.task.derive_seed`, so serve-side cache keys are
bit-compatible with ``repro study --seed`` runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Mapping

from ..anonymize.engine import Anonymization
from ..obs import metrics as obs_metrics
from ..runtime.cache import MISS, ResultCache
from ..runtime.study import (
    ALGORITHM_FACTORIES,
    DATASET_PROVIDERS,
    SCALAR_MEASURES,
    VECTOR_PROPERTIES,
    AlgorithmSpec,
    DatasetSpec,
    StudyError,
    _algorithm_key,
)
from ..runtime.task import CacheKey, canonical_json, derive_seed, resolve_op


class ServeRequestError(ValueError):
    """Raised for malformed request payloads (a client error, HTTP 400)."""


class _ResidentLRU:
    """A bounded insertion-refreshing memo for resident result objects."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: OrderedDict[str, Any] = OrderedDict()

    def get(self, key: str) -> Any:
        """The resident value under ``key``, or :data:`MISS`."""
        if key not in self._items:
            return MISS
        self._items.move_to_end(key)
        return self._items[key]

    def put(self, key: str, value: Any) -> None:
        """Make ``value`` resident, evicting the least-recent beyond capacity."""
        self._items[key] = value
        self._items.move_to_end(key)
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)
            obs_metrics().inc("serve.resident.evict")

    def __len__(self) -> int:
        return len(self._items)


def _canonical_items(params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


def _spec_payload(spec: Mapping[str, Any] | None, field: str) -> dict[str, Any]:
    if spec is None:
        raise ServeRequestError(f"request requires a {field!r} object")
    if not isinstance(spec, Mapping):
        raise ServeRequestError(f"request field {field!r} must be a JSON object")
    params = spec.get("params", {})
    if not isinstance(params, Mapping):
        raise ServeRequestError(f"{field}.params must be a JSON object")
    return {key: value for key, value in spec.items()}


class ServeState:
    """All state one ``repro serve`` process keeps resident.

    Parameters
    ----------
    default_dataset:
        The workload requests fall back to when they name no dataset;
        materialized (rows + hierarchies + columnar view) at startup.
    cache:
        Content-addressed store shared with the study runtime; ``None``
        disables durable memoization (memory-only).
    seed:
        Study seed for the serve plane; algorithm seeds derive from it
        exactly as ``repro study`` derives them.
    max_resident:
        Bound on each in-memory memo (releases, vectors, query/compare
        results); least-recently-used entries fall back to the disk cache.
    """

    def __init__(
        self,
        default_dataset: DatasetSpec,
        cache: ResultCache | None = None,
        seed: int = 42,
        max_resident: int = 256,
    ):
        self.cache = cache
        self.seed = seed
        self._default_dataset = default_dataset
        self._releases = _ResidentLRU(max_resident)
        self._derived = _ResidentLRU(max_resident)
        self._fingerprints: dict[DatasetSpec, str] = {}
        # Materialize the default workload now: startup pays the build cost
        # once, requests find the table (and its interned columnar view)
        # resident.
        dataset, _ = default_dataset.materialize()
        self._fingerprints[default_dataset] = dataset.fingerprint()

    # -- request-payload resolution ---------------------------------------

    def dataset_spec(self, payload: Mapping[str, Any] | None) -> DatasetSpec:
        """Resolve a request's ``dataset`` object (default when omitted)."""
        if payload is None:
            return self._default_dataset
        spec = _spec_payload(payload, "dataset")
        provider = spec.get("provider")
        if provider not in DATASET_PROVIDERS:
            raise ServeRequestError(
                f"unknown dataset provider {provider!r}; "
                f"choose from {sorted(DATASET_PROVIDERS)}"
            )
        try:
            return DatasetSpec.of(provider, **dict(spec.get("params", {})))
        except StudyError as exc:
            raise ServeRequestError(str(exc)) from None

    def algorithm_spec(self, payload: Mapping[str, Any] | None) -> AlgorithmSpec:
        """Resolve a request's ``algorithm`` object, seeded serve-style."""
        spec = _spec_payload(payload, "algorithm")
        name = spec.get("algorithm")
        if name not in ALGORITHM_FACTORIES:
            raise ServeRequestError(
                f"unknown algorithm {name!r}; "
                f"choose from {sorted(ALGORITHM_FACTORIES)}"
            )
        try:
            cell = AlgorithmSpec.of(name, **dict(spec.get("params", {})))
        except StudyError as exc:
            raise ServeRequestError(str(exc)) from None
        return cell.with_seed(self.seed)

    def fingerprint(self, dataset_spec: DatasetSpec) -> str:
        """The (memoized) content fingerprint of a named dataset."""
        if dataset_spec not in self._fingerprints:
            dataset, _ = dataset_spec.materialize()
            self._fingerprints[dataset_spec] = dataset.fingerprint()
        return self._fingerprints[dataset_spec]

    # -- layered resolution ------------------------------------------------

    def _resolve(
        self,
        memo: _ResidentLRU,
        key: CacheKey,
        op: str,
        params: Mapping[str, Any],
        deps: Mapping[str, Any],
        counter: str,
    ) -> tuple[Any, str]:
        """Resolve one value through memo → disk cache → registered op.

        Returns ``(value, source)`` with ``source`` one of ``"memory"``,
        ``"cache"`` or ``"computed"`` — the per-layer counters behind the
        serve plane's hit-rate metrics.
        """
        digest = key.digest()
        value = memo.get(digest)
        if value is not MISS:
            obs_metrics().inc(f"{counter}.memory_hit")
            return value, "memory"
        if self.cache is not None:
            value = self.cache.get(key)
            if value is not MISS:
                memo.put(digest, value)
                obs_metrics().inc(f"{counter}.disk_hit")
                return value, "cache"
        seed = derive_seed(self.seed, f"serve:{digest}")
        value = resolve_op(op)(params, deps, seed)
        if self.cache is not None:
            self.cache.put(key, value)
        memo.put(digest, value)
        obs_metrics().inc(f"{counter}.computed")
        return value, "computed"

    def release_for(
        self, dataset_spec: DatasetSpec, cell: AlgorithmSpec
    ) -> tuple[Anonymization, str]:
        """The anonymized release of one grid cell, plus its source layer.

        Key-compatible with the study runtime's ``anonymize`` tasks: a
        cache directory warmed by ``repro study`` serves these requests
        without recomputation, and vice versa.
        """
        key = CacheKey(
            dataset=self.fingerprint(dataset_spec),
            algorithm=_algorithm_key(cell),
        )
        params = {
            "dataset": dataset_spec.as_payload(),
            "algorithm": cell.as_payload(),
        }
        return self._resolve(
            self._releases, key, "anonymize", params, {}, "serve.release"
        )

    def vector_for(
        self, dataset_spec: DatasetSpec, cell: AlgorithmSpec, prop: str
    ) -> tuple[Any, str]:
        """One per-tuple property vector of one release (Definition 1)."""
        if prop not in VECTOR_PROPERTIES:
            raise ServeRequestError(
                f"unknown property {prop!r}; "
                f"choose from {sorted(VECTOR_PROPERTIES)}"
            )
        release, _ = self.release_for(dataset_spec, cell)
        key = CacheKey(
            dataset=self.fingerprint(dataset_spec),
            algorithm=_algorithm_key(cell),
            metric=prop,
        )
        params = {
            "dataset": dataset_spec.as_payload(),
            "release_task": "release",
            "kind": "vector",
            "metric": prop,
        }
        return self._resolve(
            self._derived, key, "measure", params, {"release": release},
            "serve.vector",
        )

    def scalar_for(
        self, dataset_spec: DatasetSpec, cell: AlgorithmSpec, measure: str
    ) -> tuple[float, str]:
        """One scalar measure of one release (grid-cell summary)."""
        if measure not in SCALAR_MEASURES:
            raise ServeRequestError(
                f"unknown measure {measure!r}; "
                f"choose from {sorted(SCALAR_MEASURES)}"
            )
        release, _ = self.release_for(dataset_spec, cell)
        key = CacheKey(
            dataset=self.fingerprint(dataset_spec),
            algorithm=_algorithm_key(cell),
            metric=measure,
        )
        params = {
            "dataset": dataset_spec.as_payload(),
            "release_task": "release",
            "kind": "scalar",
            "metric": measure,
        }
        value, source = self._resolve(
            self._derived, key, "measure", params, {"release": release},
            "serve.scalar",
        )
        return float(value), source

    def compare_for(
        self,
        dataset_spec: DatasetSpec,
        cells: tuple[AlgorithmSpec, ...],
        prop: str,
    ) -> tuple[dict[str, Any], str]:
        """Section-5 comparator verdicts between the named releases.

        The result is the ``compare`` op's payload — ordered-pair
        dominance relations plus win counts — cached under the same
        family key a study's compare tasks use.
        """
        if len(cells) < 2:
            raise ServeRequestError("compare requires at least two algorithms")
        labels = [cell.label for cell in cells]
        if len(set(labels)) != len(labels):
            raise ServeRequestError("compare requires distinct algorithm cells")
        vectors = {
            cell.label: self.vector_for(dataset_spec, cell, prop)[0]
            for cell in cells
        }
        family_key = canonical_json([cell.as_payload() for cell in cells])
        key = CacheKey(
            dataset=self.fingerprint(dataset_spec),
            algorithm=family_key,
            metric=f"compare:{prop}",
        )
        params = {
            "property": prop,
            "order": labels,
            "labels": {label: label for label in labels},
        }
        return self._resolve(
            self._derived, key, "compare", params, vectors, "serve.compare"
        )

    def query_for(
        self,
        dataset_spec: DatasetSpec,
        cell: AlgorithmSpec,
        query: Mapping[str, Any],
        other: AlgorithmSpec | None = None,
    ) -> tuple[dict[str, Any], str]:
        """One workload query answered over a released table.

        ``other`` names the second release of a ``join``.  Results are
        cached under the query's canonical JSON, so repeated workload
        passes are pure lookups.
        """
        release, _ = self.release_for(dataset_spec, cell)
        deps: dict[str, Any] = {"release": release}
        algorithm_key = _algorithm_key(cell)
        if other is not None:
            deps["other"] = self.release_for(dataset_spec, other)[0]
            algorithm_key = canonical_json(
                [cell.as_payload(), other.as_payload()]
            )
        key = CacheKey(
            dataset=self.fingerprint(dataset_spec),
            algorithm=algorithm_key,
            metric=f"serve.query:{canonical_json(dict(query))}",
        )
        return self._resolve(
            self._derived, key, "serve.query", {"query": dict(query)}, deps,
            "serve.query",
        )

    # -- introspection -----------------------------------------------------

    def resident_counts(self) -> dict[str, int]:
        """How many objects each in-memory memo currently holds."""
        return {
            "releases": len(self._releases),
            "derived": len(self._derived),
            "datasets": len(self._fingerprints),
        }
