"""Concurrent query-workload driver for the resident service.

``repro bench serve`` is the benchmark substrate every scaling PR measures
against: it boots (or targets) one :class:`~repro.serve.server.ServeServer`
and fires *N* concurrent clients over a mixed workload — ``anonymize``,
``properties``, ``compare`` and all six ``query`` shapes — recording
per-endpoint p50/p95/p99 latency and aggregate throughput into a
``BENCH_serve.json`` document (schema ``repro.bench/serve@1``, validated
by lint rule ``ART013``).

Client plans are deterministic: client *i* of a run seeded ``s`` always
issues the same request sequence (seeded via
:func:`~repro.runtime.task.derive_seed`), so two benchmark runs against
the same cache directory replay an identical workload — which is what
makes the warm-rerun cache-hit assertion in CI meaningful.

Each client keeps one ``http.client`` connection alive for its whole plan,
so measured latency is request handling, not connection setup.  Latency is
measured client-side around the full HTTP round trip; the server's own
``serve.latency_ms.*`` histograms land in the merged obs metrics export.
"""

from __future__ import annotations

import http.client
import json
import subprocess
import threading
import time
from pathlib import Path
from random import Random
from typing import Any, Mapping

from ..runtime.task import derive_seed
from ..utility.atomic import atomic_write_text
from .query import QUERY_SHAPES

#: Schema tag of the flat single-run benchmark document (see ``ART013``).
SERVE_BENCH_SCHEMA = "repro.bench/serve@1"

#: Endpoints the mixed workload exercises, in plan-seeding order.
WORKLOAD_ENDPOINTS = (
    "anonymize",
    "properties",
    "compare",
    "query:point",
    "query:range",
    "query:groupby",
    "query:topk",
    "query:distinct",
    "query:join",
)

#: Algorithm cells the workload rotates through (modest k values so a
#: cold bench stays quick; the cache makes every later pass free).
WORKLOAD_CELLS = (
    {"algorithm": "samarati", "params": {"k": 2}},
    {"algorithm": "mondrian", "params": {"k": 2}},
    {"algorithm": "datafly", "params": {"k": 2}},
)

#: Query payloads per shape, phrased over the Adult release schema.
_QUERY_TEMPLATES: dict[str, dict[str, Any]] = {
    "point": {"shape": "point", "column": "sex", "value": "Female"},
    "range": {"shape": "range", "column": "age", "low": 20, "high": 40},
    "groupby": {"shape": "groupby", "group_by": "workclass", "agg": "count"},
    "topk": {"shape": "topk", "column": "education", "k": 3},
    "distinct": {"shape": "distinct", "column": "native-country"},
    "join": {"shape": "join", "on": "sex"},
}


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated ``q``-quantile (0..1) of a non-empty sample."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _request_payload(endpoint: str, rng: Random) -> tuple[str, dict[str, Any]]:
    """The ``(path, body)`` of one workload request."""
    cell = rng.choice(WORKLOAD_CELLS)
    if endpoint == "anonymize":
        return "/anonymize", {"algorithm": cell}
    if endpoint == "properties":
        return "/properties", {
            "algorithm": cell,
            "property": rng.choice(
                ("equivalence-class-size", "breach-probability")
            ),
        }
    if endpoint == "compare":
        first, second = rng.sample(WORKLOAD_CELLS, 2)
        return "/compare", {
            "algorithms": [first, second],
            "property": "equivalence-class-size",
        }
    _prefix, _, shape = endpoint.partition(":")
    body: dict[str, Any] = {
        "algorithm": cell,
        "query": dict(_QUERY_TEMPLATES[shape]),
    }
    if shape == "join":
        others = [item for item in WORKLOAD_CELLS if item != cell]
        body["other"] = rng.choice(others)
    return "/query", body


def build_plan(
    seed: int, client_index: int, requests: int
) -> list[tuple[str, str, dict[str, Any]]]:
    """Client ``client_index``'s deterministic request plan.

    Returns ``requests`` triples of ``(endpoint, path, body)``.  The plan
    opens with one request per workload endpoint (so even the smallest
    bench covers all six query shapes), then fills with a seeded mix.
    """
    if requests < 1:
        raise ValueError(f"requests must be positive, got {requests}")
    rng = Random(derive_seed(seed, f"serve-client:{client_index}"))
    endpoints = list(WORKLOAD_ENDPOINTS[:requests])
    while len(endpoints) < requests:
        endpoints.append(rng.choice(WORKLOAD_ENDPOINTS))
    plan = []
    for endpoint in endpoints:
        path, body = _request_payload(endpoint, rng)
        plan.append((endpoint, path, body))
    return plan


class _Client(threading.Thread):
    """One workload client: a keep-alive connection replaying its plan."""

    def __init__(
        self,
        host: str,
        port: int,
        plan: list[tuple[str, str, dict[str, Any]]],
        timeout: float,
    ):
        super().__init__(daemon=True)
        self._host = host
        self._port = port
        self._plan = plan
        self._timeout = timeout
        #: ``(endpoint, latency_ms, status)`` per completed request.
        self.samples: list[tuple[str, float, int]] = []
        self.errors: list[str] = []

    def run(self) -> None:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            for endpoint, path, body in self._plan:
                payload = json.dumps(body).encode("utf-8")
                started = time.monotonic()
                try:
                    connection.request(
                        "POST",
                        path,
                        body=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    response.read()
                    status = response.status
                except (http.client.HTTPException, OSError) as exc:
                    self.errors.append(f"{endpoint}: {type(exc).__name__}")
                    connection.close()
                    connection = http.client.HTTPConnection(
                        self._host, self._port, timeout=self._timeout
                    )
                    continue
                elapsed_ms = (time.monotonic() - started) * 1000.0
                self.samples.append((endpoint, elapsed_ms, status))
                if status >= 400:
                    self.errors.append(f"{endpoint}: HTTP {status}")
        finally:
            connection.close()


def run_workload(
    host: str,
    port: int,
    clients: int = 4,
    requests: int = len(WORKLOAD_ENDPOINTS),
    seed: int = 42,
    timeout: float = 120.0,
) -> dict[str, Any]:
    """Fire ``clients`` concurrent clients and aggregate their samples.

    Returns the raw aggregation — per-endpoint latency samples, error
    list, wall-clock duration — ready for :func:`summarize`.
    """
    if clients < 1:
        raise ValueError(f"clients must be positive, got {clients}")
    workers = [
        _Client(host, port, build_plan(seed, index, requests), timeout)
        for index in range(clients)
    ]
    started = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    duration_s = time.monotonic() - started
    by_endpoint: dict[str, list[float]] = {}
    errors: list[str] = []
    completed = 0
    for worker in workers:
        errors.extend(worker.errors)
        for endpoint, latency_ms, _status in worker.samples:
            completed += 1
            by_endpoint.setdefault(endpoint, []).append(latency_ms)
    return {
        "clients": clients,
        "requests": completed,
        "errors": errors,
        "duration_s": duration_s,
        "by_endpoint": by_endpoint,
    }


def summarize(
    raw: Mapping[str, Any],
    quick: bool = False,
    anonymize_cache_hit_rate: float | None = None,
) -> dict[str, Any]:
    """Fold a :func:`run_workload` aggregation into the bench document.

    The result is the flat ``repro.bench/serve@1`` payload ``ART013``
    validates: one latency-percentile block per endpoint plus run-level
    throughput, error count and git revision.
    """
    duration = float(raw["duration_s"])
    endpoints = {
        endpoint: {
            "requests": len(samples),
            "p50_ms": percentile(samples, 0.50),
            "p95_ms": percentile(samples, 0.95),
            "p99_ms": percentile(samples, 0.99),
        }
        for endpoint, samples in sorted(raw["by_endpoint"].items())
        if samples
    }
    doc: dict[str, Any] = {
        "schema": SERVE_BENCH_SCHEMA,
        "suite": "serve",
        "git_rev": git_rev(),
        "quick": bool(quick),
        "clients": int(raw["clients"]),
        "requests": int(raw["requests"]),
        "errors": len(raw["errors"]),
        "duration_s": duration,
        "throughput_rps": (raw["requests"] / duration) if duration > 0 else 0.0,
        "endpoints": endpoints,
    }
    if anonymize_cache_hit_rate is not None:
        doc["anonymize_cache_hit_rate"] = float(anonymize_cache_hit_rate)
    return doc


def write_bench(doc: Mapping[str, Any], path: str | Path) -> Path:
    """Write a bench document to ``path`` (atomic, sorted, indented)."""
    target = Path(path)
    atomic_write_text(
        target, json.dumps(dict(doc), indent=2, sort_keys=True) + "\n"
    )
    return target


def anonymize_hit_rate(snapshot: Mapping[str, Any]) -> float | None:
    """The anonymize cache-hit rate of one obs metrics snapshot.

    Hits are serve-plane memory + disk cache hits; the denominator adds
    cold computes.  ``None`` when the snapshot saw no anonymize traffic.
    """
    counters = snapshot.get("counters", {})
    memory = counters.get("serve.release.memory_hit", 0)
    disk = counters.get("serve.release.disk_hit", 0)
    computed = counters.get("serve.release.computed", 0)
    total = memory + disk + computed
    if total == 0:
        return None
    return (memory + disk) / total
