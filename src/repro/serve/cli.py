"""The ``repro serve`` and ``repro bench serve`` subcommands.

``repro serve`` boots the resident anonymization service and blocks until
a signal (or ``POST /shutdown``) drains it; ``repro bench serve`` boots a
private server on an ephemeral port, fires the concurrent mixed workload
at it, and writes the ``BENCH_serve.json`` benchmark document (validated
by lint rule ``ART013``).  Both share the study runtime's cache
conventions — point either at a ``repro study`` cache directory and warm
results are served without recomputation.

``repro bench serve --expect-cached`` mirrors ``repro study
--expect-cached``: it exits with code 3 unless every ``anonymize``
request was served from cache (memory or disk) — the CI warm-rerun
assertion.
"""

from __future__ import annotations

import argparse
import asyncio

from ..obs import NULL_OBSERVATION, Observation
from ..runtime.cache import ResultCache
from ..runtime.cli import EXIT_NOT_CACHED
from ..runtime.study import DATASET_PROVIDERS, DatasetSpec
from .server import ServeServer, ServerThread
from .state import ServeState
from .workload import (
    WORKLOAD_ENDPOINTS,
    anonymize_hit_rate,
    run_workload,
    summarize,
    write_bench,
)


def _add_shared_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=sorted(DATASET_PROVIDERS),
        default="adult",
        help="resident workload provider (default: adult)",
    )
    parser.add_argument("--rows", type=int, default=300)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="content-addressed result store shared with `repro study` "
        "(default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="serve from memory only (no durable memoization)",
    )
    parser.add_argument(
        "--max-resident",
        type=int,
        default=256,
        help="in-memory result objects kept resident per memo (default: 256)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable span tracing; flushed atomically at shutdown",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="enable metric collection; flushed atomically at shutdown",
    )


def configure_serve_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro serve`` arguments to a subcommand parser."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8200,
        help="bind port; 0 binds an ephemeral port, printed on stdout",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds shutdown waits for in-flight requests (default: 5)",
    )
    _add_shared_arguments(parser)


def _build_state(args: argparse.Namespace) -> ServeState:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ServeState(
        default_dataset=DatasetSpec.of(
            args.dataset, rows=args.rows, seed=args.seed
        ),
        cache=cache,
        seed=args.seed,
        max_resident=args.max_resident,
    )


def run_serve(args: argparse.Namespace) -> int:
    """Execute ``repro serve``: block until drained, then exit cleanly."""
    observation = (
        Observation() if (args.trace or args.metrics) else NULL_OBSERVATION
    )
    server = ServeServer(
        _build_state(args),
        host=args.host,
        port=args.port,
        observation=observation,
        drain_timeout=args.drain_timeout,
        trace_path=args.trace,
        metrics_path=args.metrics,
    )
    asyncio.run(server.serve())
    return 0


def configure_bench_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro bench`` arguments to a subcommand parser."""
    suites = parser.add_subparsers(dest="suite", required=True)
    serve = suites.add_parser(
        "serve",
        help="concurrent mixed workload against a private resident server",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent workload clients (default: 4)",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=len(WORKLOAD_ENDPOINTS),
        help="requests per client; the first "
        f"{len(WORKLOAD_ENDPOINTS)} cover every endpoint once "
        f"(default: {len(WORKLOAD_ENDPOINTS)})",
    )
    serve.add_argument(
        "--bench-json",
        metavar="FILE",
        default="BENCH_serve.json",
        help="benchmark document destination (default: BENCH_serve.json)",
    )
    serve.add_argument(
        "--quick",
        action="store_true",
        help="mark the document as a smoke run (recorded, not compared)",
    )
    serve.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail (exit 3) unless every anonymize request hit the cache",
    )
    _add_shared_arguments(serve)


def run_bench(args: argparse.Namespace) -> int:
    """Execute ``repro bench serve`` and return the process exit code."""
    # Metrics are always live for a bench run — the cache-hit-rate
    # assertion reads them; --trace/--metrics only control the exports.
    observation = Observation()
    server = ServeServer(
        _build_state(args),
        port=0,
        observation=observation,
        trace_path=args.trace,
        metrics_path=args.metrics,
    )
    thread = ServerThread(server)
    thread.start()
    try:
        raw = run_workload(
            server.host,
            server.port,
            clients=args.clients,
            requests=args.requests,
            seed=args.seed,
        )
    finally:
        thread.stop()
    hit_rate = anonymize_hit_rate(observation.metrics.snapshot())
    doc = summarize(raw, quick=args.quick, anonymize_cache_hit_rate=hit_rate)
    path = write_bench(doc, args.bench_json)

    print(
        f"bench serve: {doc['clients']} client(s) x {args.requests} request(s) "
        f"-> {doc['requests']} completed, {doc['errors']} error(s), "
        f"{doc['throughput_rps']:.1f} req/s over {doc['duration_s']:.2f}s"
    )
    for endpoint, stats in doc["endpoints"].items():
        print(
            f"  {endpoint:<16} n={stats['requests']:<4} "
            f"p50={stats['p50_ms']:.2f}ms p95={stats['p95_ms']:.2f}ms "
            f"p99={stats['p99_ms']:.2f}ms"
        )
    if hit_rate is not None:
        print(f"anonymize cache-hit rate: {hit_rate * 100.0:.1f}%")
    print(f"bench: document -> {path}")

    if args.trace:
        print(f"trace: -> {args.trace}")
    if args.metrics:
        print(f"metrics: -> {args.metrics}")
    if doc["errors"]:
        print(f"bench serve: {doc['errors']} request(s) failed")
        return 1
    if args.expect_cached and (hit_rate is None or hit_rate < 1.0):
        shown = "no anonymize traffic" if hit_rate is None else f"{hit_rate * 100.0:.1f}%"
        print(
            f"--expect-cached: anonymize cache-hit rate was {shown}; "
            "the store was not warm"
        )
        return EXIT_NOT_CACHED
    return 0
