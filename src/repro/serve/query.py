"""Released-data query workloads: the six canonical utility probes.

Query answering over an anonymized release is the classic utility measure
for disclosure control (Rastogi–Suciu): the more a release is generalized,
the fewer rows a selective predicate can still match, and the further an
aggregate drifts from its raw-data value.  This module implements the six
workload shapes of the concurrent benchmark plane — point lookup, range,
group-by aggregate, top-k, distinct-count and join — as one registered
task operation (``serve.query``) over *released* tables only.

Two invariants matter here:

* **released data only** — a query never touches ``release.original``;
  the op receives the released :class:`~repro.datasets.dataset.Dataset`
  and nothing else, so raw quasi-identifier values cannot flow into a
  response by construction;
* **determinism** — group keys are sorted, top-k ties break on the
  rendered value, and no ambient state is read, so the op is certified
  for the content-addressed cache and for distributed execution
  (``lint/op_certificates.json``).

Generalized cells (intervals, spans, suppression stars) render through the
same lossless serialization the CSV release writer uses, so ``point``
predicates can name a generalized cell exactly as it appears in an
exported release.  Range predicates match only cells that are still raw
numbers — a generalized numeric cell no longer answers a range query,
which is precisely the information loss the workload measures.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..datasets.dataset import Dataset
from ..datasets.io import _serialize_cell
from ..runtime.task import register_op

#: The query shapes the serve plane answers, mirroring the canonical
#: concurrent utility-workload suites (point lookup, range, group-by
#: aggregate, top-k, distinct-count, join).
QUERY_SHAPES = ("point", "range", "groupby", "topk", "distinct", "join")

#: Aggregates accepted by the ``groupby`` shape.
GROUPBY_AGGREGATES = ("count", "sum", "avg")


class QueryError(ValueError):
    """Raised for malformed query payloads (a client error, HTTP 400)."""


def render_cell(cell: Any) -> str:
    """The lossless string form of one released cell.

    Identical to what :func:`repro.datasets.write_csv` emits, so query
    predicates compose with exported releases: intervals as ``(low,high]``,
    Mondrian spans as ``[low-high]``, set-valued cells as ``{a|b|c}``.
    """
    return _serialize_cell(cell)


def _require_column(released: Dataset, name: Any, field: str) -> str:
    if not isinstance(name, str) or not name:
        raise QueryError(f"query field {field!r} must name a column")
    if name not in released.schema.names:
        raise QueryError(
            f"unknown column {name!r}; choose from {list(released.schema.names)}"
        )
    return name


def _require_number(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"query field {field!r} must be a number")
    return float(value)


def _numeric_cells(released: Dataset, column: str) -> list[float]:
    """The still-raw numeric cells of a released column.

    Generalized cells (intervals, spans, suppression tokens) are not
    numbers any more and fall out of every range aggregate — that loss is
    the quantity range workloads probe.
    """
    return [
        float(cell)
        for cell in released.column(column)
        if not isinstance(cell, bool) and isinstance(cell, (int, float))
    ]


def _query_point(released: Dataset, query: Mapping[str, Any]) -> dict[str, Any]:
    column = _require_column(released, query.get("column"), "column")
    if "value" not in query:
        raise QueryError("point query requires a 'value' field")
    needle = str(query["value"])
    count = sum(
        1 for cell in released.column(column) if render_cell(cell) == needle
    )
    return {"shape": "point", "column": column, "value": needle, "count": count}


def _query_range(released: Dataset, query: Mapping[str, Any]) -> dict[str, Any]:
    column = _require_column(released, query.get("column"), "column")
    low = _require_number(query.get("low"), "low")
    high = _require_number(query.get("high"), "high")
    if low > high:
        raise QueryError(f"range query has low {low} > high {high}")
    matched = [
        value
        for value in _numeric_cells(released, column)
        if low <= value <= high
    ]
    return {
        "shape": "range",
        "column": column,
        "low": low,
        "high": high,
        "count": len(matched),
        "sum": sum(matched),
    }


def _query_groupby(released: Dataset, query: Mapping[str, Any]) -> dict[str, Any]:
    group_by = _require_column(released, query.get("group_by"), "group_by")
    aggregate = query.get("agg", "count")
    if aggregate not in GROUPBY_AGGREGATES:
        raise QueryError(
            f"unknown aggregate {aggregate!r}; choose from {list(GROUPBY_AGGREGATES)}"
        )
    keys = [render_cell(cell) for cell in released.column(group_by)]
    if aggregate == "count":
        groups: dict[str, float] = {}
        for key in keys:
            groups[key] = groups.get(key, 0) + 1
    else:
        target = _require_column(released, query.get("target"), "target")
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for key, cell in zip(keys, released.column(target)):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            sums[key] = sums.get(key, 0.0) + float(cell)
            counts[key] = counts.get(key, 0) + 1
        if aggregate == "sum":
            groups = sums
        else:
            groups = {key: sums[key] / counts[key] for key in sums}
    return {
        "shape": "groupby",
        "group_by": group_by,
        "agg": aggregate,
        "groups": {key: groups[key] for key in sorted(groups)},
        "group_count": len(groups),
    }


def _query_topk(released: Dataset, query: Mapping[str, Any]) -> dict[str, Any]:
    column = _require_column(released, query.get("column"), "column")
    k = query.get("k", 5)
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise QueryError(f"top-k query requires a positive integer 'k', got {k!r}")
    counts: dict[str, int] = {}
    for cell in released.column(column):
        key = render_cell(cell)
        counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return {
        "shape": "topk",
        "column": column,
        "k": k,
        "top": [[value, count] for value, count in ranked[:k]],
    }


def _query_distinct(released: Dataset, query: Mapping[str, Any]) -> dict[str, Any]:
    column = _require_column(released, query.get("column"), "column")
    seen = {render_cell(cell) for cell in released.column(column)}
    return {"shape": "distinct", "column": column, "distinct": len(seen)}


def _query_join(
    released: Dataset, query: Mapping[str, Any], other: Dataset | None
) -> dict[str, Any]:
    if other is None:
        raise QueryError(
            "join query requires an 'other' release "
            "(the second side of the join)"
        )
    on = _require_column(released, query.get("on"), "on")
    if on not in other.schema.names:
        raise QueryError(f"join column {on!r} missing from the other release")
    left: dict[str, int] = {}
    for cell in released.column(on):
        key = render_cell(cell)
        left[key] = left.get(key, 0) + 1
    right: dict[str, int] = {}
    for cell in other.column(on):
        key = render_cell(cell)
        right[key] = right.get(key, 0) + 1
    shared = sorted(set(left) & set(right))
    pairs = sum(left[key] * right[key] for key in shared)
    return {
        "shape": "join",
        "on": on,
        "keys": len(shared),
        "pairs": pairs,
    }


def run_query(
    released: Dataset,
    query: Mapping[str, Any],
    other: Dataset | None = None,
) -> dict[str, Any]:
    """Answer one workload query over a released table.

    ``query`` is a JSON-able mapping with a ``shape`` field naming one of
    :data:`QUERY_SHAPES` plus the shape's own fields; ``other`` is the
    second released table for ``join``.  Returns a JSON-able result dict;
    raises :class:`QueryError` on malformed payloads.
    """
    if not isinstance(query, Mapping):
        raise QueryError("query must be a JSON object")
    shape = query.get("shape")
    if shape == "point":
        return _query_point(released, query)
    if shape == "range":
        return _query_range(released, query)
    if shape == "groupby":
        return _query_groupby(released, query)
    if shape == "topk":
        return _query_topk(released, query)
    if shape == "distinct":
        return _query_distinct(released, query)
    if shape == "join":
        return _query_join(released, query, other)
    raise QueryError(
        f"unknown query shape {shape!r}; choose from {list(QUERY_SHAPES)}"
    )


@register_op("serve.query")
def _op_serve_query(
    params: Mapping[str, Any], deps: Mapping[str, Any], seed: int
) -> dict[str, Any]:
    """Registered op behind the ``/query`` endpoint.

    ``deps['release']`` (and ``deps['other']`` for joins) carry
    :class:`~repro.anonymize.engine.Anonymization` objects resolved by the
    server's resident state; only their *released* tables are consulted.
    The op is pure over its inputs, so results are memoized in the
    content-addressed cache under the query's canonical JSON.
    """
    release = deps["release"]
    other = deps.get("other")
    return run_query(
        release.released,
        params["query"],
        None if other is None else other.released,
    )
