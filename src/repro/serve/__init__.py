"""repro.serve — the resident anonymization service and its workload plane.

The batch runtime (:mod:`repro.runtime`) answers "run this study once";
this package answers "keep the study's state resident and serve it".  One
:class:`ServeState` holds datasets, anonymized releases, derived vectors
and the content-addressed :class:`~repro.runtime.cache.ResultCache` in
memory; one :class:`ServeServer` exposes them over a stdlib asyncio HTTP
router (``anonymize`` / ``properties`` / ``compare`` / ``query``) with
per-request :mod:`repro.obs` spans and graceful signal-driven shutdown;
:mod:`repro.serve.workload` drives concurrent mixed workloads against it
and records the ``BENCH_serve.json`` benchmark document.

Cache keys are bit-compatible with ``repro study``: point ``repro serve
--cache-dir`` at a study's store and warm requests never recompute — and
a restarted server resumes from the same store with 100% hits.

See ``docs/serve.md`` for the architecture and endpoint reference.
"""

from .query import GROUPBY_AGGREGATES, QUERY_SHAPES, QueryError, run_query
from .server import HttpRequest, ServeServer, ServerThread
from .state import ServeRequestError, ServeState
from .workload import (
    SERVE_BENCH_SCHEMA,
    WORKLOAD_CELLS,
    WORKLOAD_ENDPOINTS,
    anonymize_hit_rate,
    build_plan,
    run_workload,
    summarize,
    write_bench,
)

__all__ = [
    "GROUPBY_AGGREGATES",
    "QUERY_SHAPES",
    "QueryError",
    "run_query",
    "HttpRequest",
    "ServeServer",
    "ServerThread",
    "ServeRequestError",
    "ServeState",
    "SERVE_BENCH_SCHEMA",
    "WORKLOAD_CELLS",
    "WORKLOAD_ENDPOINTS",
    "anonymize_hit_rate",
    "build_plan",
    "run_workload",
    "summarize",
    "write_bench",
]
