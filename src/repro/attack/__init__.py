"""Adversary models: linkage and attribute disclosure attacks."""

from .composition import (
    composition_k,
    composition_risks,
    intersection_match_set,
)
from .homogeneity import (
    background_knowledge_risks,
    homogeneity_risks,
    homogeneous_classes,
)
from .linkage import (
    AttackError,
    LinkageReport,
    cell_matches,
    linkage_report,
    match_set,
    prosecutor_risks,
    simulate_linkage,
)

__all__ = [
    "composition_k",
    "composition_risks",
    "intersection_match_set",
    "background_knowledge_risks",
    "homogeneity_risks",
    "homogeneous_classes",
    "AttackError",
    "LinkageReport",
    "cell_matches",
    "linkage_report",
    "match_set",
    "prosecutor_risks",
    "simulate_linkage",
]
