"""Attribute disclosure attacks: homogeneity and background knowledge.

Machanavajjhala et al.'s two attacks on k-anonymous releases, as surveyed
in the paper's related work:

* **homogeneity attack** — if all (or most) sensitive values in a victim's
  equivalence class agree, linkage suffices to learn the value without
  exact re-identification;
* **background knowledge attack** — an adversary able to rule out ``m``
  candidate sensitive values succeeds when at most ``m+1`` distinct values
  remain in the class.

Both yield per-tuple property vectors, so the anonymization bias of
*attribute* disclosure is measurable with the same comparator machinery as
identity disclosure.
"""

from __future__ import annotations

from ..anonymize.engine import Anonymization
from ..core.properties import _sensitive_column
from ..core.vector import PropertyVector


def homogeneity_risks(
    anonymization: Anonymization, sensitive_attribute: str | None = None
) -> PropertyVector:
    """Per-tuple probability that linkage alone reveals the tuple's own
    sensitive value: the frequency of that value in its class (lower is
    better).  A value of 1.0 marks a class fully homogeneous in the
    victim's value — the textbook homogeneity attack."""
    _, column = _sensitive_column(anonymization, sensitive_attribute)
    classes = anonymization.equivalence_classes
    counts = classes.sensitive_value_counts(column)
    sizes = classes.sizes()
    return PropertyVector(
        [count / size for count, size in zip(counts, sizes)],
        name="homogeneity-risk",
        higher_is_better=False,
    )


def homogeneous_classes(
    anonymization: Anonymization, sensitive_attribute: str | None = None
) -> list[int]:
    """Indices of equivalence classes with a single sensitive value —
    every member is subject to the homogeneity attack."""
    _, column = _sensitive_column(anonymization, sensitive_attribute)
    histograms = anonymization.equivalence_classes.value_counts(column)
    return [
        class_index
        for class_index, histogram in enumerate(histograms)
        if len(histogram) == 1
    ]


def background_knowledge_risks(
    anonymization: Anonymization,
    ruled_out: int,
    sensitive_attribute: str | None = None,
) -> PropertyVector:
    """Per-tuple disclosure probability against an adversary who can rule
    out ``ruled_out`` of the class's sensitive values (lower is better).

    The adversary eliminates the ``ruled_out`` *least damaging* candidates
    (worst case for the victim: the eliminated values are never the
    victim's own), then the victim's value is exposed with probability
    (victim's count) / (remaining mass).
    """
    if ruled_out < 0:
        raise ValueError(f"ruled_out must be >= 0, got {ruled_out}")
    _, column = _sensitive_column(anonymization, sensitive_attribute)
    classes = anonymization.equivalence_classes
    histograms = classes.value_counts(column)
    risks = []
    for row_index in range(len(anonymization)):
        histogram = histograms[classes.class_of(row_index)]
        own_value = column[row_index]
        own_count = histogram[own_value]
        # Worst case: the ruled-out values are other values, removed in
        # increasing order of count (keeps the most competing mass out).
        other_counts = sorted(
            (count for value, count in histogram.items() if value != own_value),
            reverse=True,
        )
        remaining_other = sum(other_counts[ruled_out:]) if ruled_out else sum(
            other_counts
        )
        risks.append(own_count / (own_count + remaining_other))
    return PropertyVector(
        risks,
        name=f"background-knowledge-risk[m={ruled_out}]",
        higher_is_better=False,
    )
