"""Composition (intersection) attacks across multiple releases.

When the same microdata is anonymized twice — two algorithms, two
parameterizations, or two publication rounds — an adversary holding both
releases intersects the match sets.  Each release may be k-anonymous on
its own while the intersection isolates individuals (the composition
problem, Ganta et al. KDD 2008).  In the paper's terms: the *pair* of
releases induces a per-tuple privacy property vector of its own, typically
dominated by either single release's vector.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..anonymize.engine import Anonymization
from ..core.vector import PropertyVector
from ..datasets.dataset import Dataset
from ..hierarchy.base import Hierarchy
from .linkage import AttackError, match_set


def _check_aligned(releases: Sequence[Anonymization]) -> None:
    if len(releases) < 2:
        raise AttackError("composition needs at least two releases")
    original = releases[0].original
    for release in releases[1:]:
        if release.original is not original and release.original != original:
            raise AttackError(
                "all releases must anonymize the same original data"
            )


def intersection_match_set(
    releases: Sequence[Anonymization],
    external_row: Sequence,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> list[int]:
    """Rows consistent with the external record in *every* release."""
    _check_aligned(releases)
    surviving: set[int] | None = None
    for release in releases:
        matches = set(match_set(release, external_row, hierarchies))
        surviving = matches if surviving is None else surviving & matches
        if not surviving:
            break
    return sorted(surviving or ())


def composition_risks(
    releases: Sequence[Anonymization],
    external: Dataset | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> PropertyVector:
    """Per-tuple re-identification risk against the combined releases
    (lower is better): ``1 / |∩ match sets|``."""
    _check_aligned(releases)
    source = external or releases[0].original
    if len(source) != len(releases[0]):
        raise AttackError("external table must align row-for-row")
    qi_positions = source.schema.quasi_identifier_indices
    risks = []
    for row_index in range(len(source)):
        record = [source[row_index][p] for p in qi_positions]
        matches = intersection_match_set(releases, record, hierarchies)
        if not matches:
            raise AttackError(
                f"row {row_index}: releases jointly inconsistent with its "
                "raw quasi-identifiers"
            )
        risks.append(1.0 / len(matches))
    return PropertyVector(
        risks, name="composition-risk", higher_is_better=False
    )


def composition_k(
    releases: Sequence[Anonymization],
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> int:
    """The effective k against the combined releases: the smallest joint
    match set over all individuals."""
    risks = composition_risks(releases, hierarchies=hierarchies)
    return round(1.0 / float(risks.values.max()))
