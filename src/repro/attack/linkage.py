"""Linkage (re-identification) attack simulation.

The paper's property vectors quantify privacy *structurally* (class sizes,
breach probabilities).  This module grounds those numbers in an explicit
adversary: one who holds an external identified table with the victims'
quasi-identifier values (the classical Sweeney linkage attack) and matches
it against the released table.

Three standard adversary models are provided (Elliot/Dale terminology):

* **prosecutor** — targets a specific individual known to be in the
  release; risk is 1 / |match set|;
* **journalist** — targets anyone, wants to provably re-identify at least
  one record; risk is driven by the smallest match set;
* **marketer** — wants to re-identify as many records as possible in bulk;
  risk is the expected fraction of correct matches.

The per-tuple prosecutor risks form a property vector that coincides with
the ``breach_probability`` extractor when the external table equals the
original data — a consistency that tests verify — and the Monte Carlo
:func:`simulate_linkage` confirms the structural numbers empirically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..anonymize.engine import Anonymization
from ..core.vector import PropertyVector
from ..datasets.dataset import Dataset
from ..hierarchy.base import SUPPRESSED, Hierarchy, HierarchyError, Interval
from ..hierarchy.numeric import Span


class AttackError(ValueError):
    """Raised for inconsistent attack configurations."""


def cell_matches(released: Any, raw: Any, hierarchy: Hierarchy | None = None) -> bool:
    """Whether a released (possibly generalized) cell is consistent with a
    raw external value.

    Handles every generalized form the engine produces: raw equality,
    suppression token (matches anything), numeric intervals/spans, masked
    string codes (``1305*``), and frozensets of candidate values.  Taxonomy
    tokens (e.g. ``"Married"``) require the attribute's ``hierarchy`` so
    the adversary can test subtree membership; without it they match
    nothing but themselves (conservative).
    """
    if released == SUPPRESSED:
        return True
    if isinstance(released, frozenset):
        return raw in released
    if isinstance(released, (Interval, Span)):
        return raw in released
    if isinstance(released, str) and isinstance(raw, str) and "*" in released:
        if len(released) != len(raw):
            return False
        return all(r == "*" or r == c for r, c in zip(released, raw))
    if released == raw:
        return True
    if hierarchy is not None:
        try:
            return released in hierarchy.generalizations(raw)
        except HierarchyError:
            return False
    return False


def match_set(
    anonymization: Anonymization,
    external_row: Sequence[Any],
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> list[int]:
    """Row indices of the release consistent with one external QI record.

    ``external_row`` holds raw values for the quasi-identifier attributes,
    in schema QI order.  ``hierarchies`` (per QI attribute name) lets the
    adversary resolve taxonomy tokens; numeric intervals and string masks
    need none.
    """
    schema = anonymization.original.schema
    positions = schema.quasi_identifier_indices
    names = schema.quasi_identifier_names
    if len(external_row) != len(positions):
        raise AttackError(
            f"external record has {len(external_row)} values, expected "
            f"{len(positions)} quasi-identifiers"
        )
    lookup = hierarchies or {}
    matches = []
    for row_index, row in enumerate(anonymization.released):
        if all(
            cell_matches(row[position], value, lookup.get(name))
            for position, name, value in zip(positions, names, external_row)
        ):
            matches.append(row_index)
    return matches


def prosecutor_risks(
    anonymization: Anonymization,
    external: Dataset | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> PropertyVector:
    """Per-tuple prosecutor re-identification risk (lower is better).

    With ``external=None`` the adversary is assumed to know the victims'
    exact quasi-identifiers (worst case: external table = original data).
    Each tuple's risk is ``1 / |match set|`` of its own external record.
    """
    source = external or anonymization.original
    if len(source) != len(anonymization):
        raise AttackError(
            "external table must align row-for-row with the release"
        )
    qi_positions = source.schema.quasi_identifier_indices
    risks = []
    for row_index in range(len(anonymization)):
        record = [source[row_index][p] for p in qi_positions]
        matches = match_set(anonymization, record, hierarchies)
        if not matches:
            raise AttackError(
                f"row {row_index}: release inconsistent with its own raw "
                "quasi-identifiers"
            )
        risks.append(1.0 / len(matches))
    return PropertyVector(
        risks, name="prosecutor-risk", higher_is_better=False
    )


@dataclass(frozen=True)
class LinkageReport:
    """Summary of a linkage attack against a release."""

    prosecutor_max: float
    prosecutor_mean: float
    journalist_risk: float
    marketer_risk: float
    records_at_max_risk: int

    def describe(self) -> str:
        """One-line human-readable rendering of the report."""
        return (
            f"prosecutor max={self.prosecutor_max:.4f} "
            f"mean={self.prosecutor_mean:.4f}  "
            f"journalist={self.journalist_risk:.4f}  "
            f"marketer={self.marketer_risk:.4f}  "
            f"at-max={self.records_at_max_risk}"
        )


def linkage_report(
    anonymization: Anonymization,
    external: Dataset | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> LinkageReport:
    """Prosecutor / journalist / marketer risk summary."""
    risks = prosecutor_risks(anonymization, external, hierarchies)
    values = risks.values
    maximum = float(values.max())
    return LinkageReport(
        prosecutor_max=maximum,
        prosecutor_mean=float(values.mean()),
        journalist_risk=maximum,
        marketer_risk=float(values.mean()),
        records_at_max_risk=sum(1 for value in values if value == maximum),
    )


def simulate_linkage(
    anonymization: Anonymization,
    trials: int = 1000,
    seed: int = 0,
    external: Dataset | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> float:
    """Monte Carlo re-identification rate.

    Repeatedly picks a victim uniformly at random, lets the adversary link
    the victim's raw quasi-identifiers against the release and guess
    uniformly within the match set; returns the empirical success rate.
    In expectation this equals the mean prosecutor risk — the consistency
    check that validates the structural property vector empirically.
    """
    if trials < 1:
        raise AttackError(f"trials must be >= 1, got {trials}")
    source = external or anonymization.original
    rng = random.Random(seed)
    qi_positions = source.schema.quasi_identifier_indices
    successes = 0
    cache: dict[int, list[int]] = {}
    for _ in range(trials):
        victim = rng.randrange(len(anonymization))
        if victim not in cache:
            record = [source[victim][p] for p in qi_positions]
            cache[victim] = match_set(anonymization, record, hierarchies)
            if not cache[victim]:
                raise AttackError(
                    f"row {victim}: release inconsistent with its own raw "
                    "quasi-identifiers"
                )
        matches = cache[victim]
        guess = matches[rng.randrange(len(matches))]
        if guess == victim:
            successes += 1
    return successes / trials
