"""Utility-optimal full-domain k-anonymization.

A systematic-search analog of Bayardo-Agrawal's optimal k-anonymization,
restated on the full-domain lattice (the original searches set-based
recodings; see DESIGN.md, Substitutions).  Two monotonicity facts prune the
search:

* k-anonymity (with a fixed suppression budget) is monotone upward — every
  ancestor of a satisfying node satisfies;
* every cost metric used here (LM, DM) is non-decreasing along
  generalization.

Hence the optimum lies on the *minimal satisfying frontier*; the search
enumerates nodes bottom-up by height, skips descendants-of-nothing, and
scores only frontier nodes.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ...hierarchy.lattice import Node
from ..engine import Anonymization
from .base import (
    AlgorithmError,
    Anonymizer,
    RecodingWorkspace,
    check_k,
    check_suppression_limit,
)

#: Cost function over a candidate node: (workspace, node, k) -> cost.
CostFunction = Callable[[RecodingWorkspace, Node, int], float]


def loss_metric_cost(workspace: RecodingWorkspace, node: Node, k: int) -> float:
    """LM cost: total generalization loss plus full loss for suppressed rows."""
    violating = workspace.violating_rows(node, k)
    base = workspace.node_loss(node)
    if not violating:
        return base
    # A suppressed row's cells all reach loss 1; replace its recoded loss.
    per_row_recoded = [
        sum(workspace.loss_column(name, level)[row_index]
            for name, level in zip(workspace.qi_names, node))
        for row_index in violating
    ]
    qi_count = len(workspace.qi_names)
    return base + sum(qi_count - recoded for recoded in per_row_recoded)


def discernibility_cost(workspace: RecodingWorkspace, node: Node, k: int) -> float:
    """DM cost: Σ|class|² over surviving classes + N per suppressed row."""
    sizes = workspace.group_sizes(node).values()
    total = len(workspace.dataset)
    cost = 0.0
    for size in sizes:
        if size < k:
            cost += size * total
        else:
            cost += size * size
    return cost


class OptimalLattice(Anonymizer):
    """Exhaustive minimal-frontier search for the cost-optimal recoding.

    Parameters
    ----------
    k:
        The k-anonymity requirement.
    suppression_limit:
        Maximum fraction of rows that may be suppressed.
    cost:
        Cost function to minimize (default: the general loss metric).
    """

    def __init__(
        self,
        k: int,
        suppression_limit: float = 0.02,
        cost: CostFunction = loss_metric_cost,
    ):
        self.k = check_k(k)
        self.suppression_limit = check_suppression_limit(suppression_limit)
        self.cost = cost
        self.name = f"optimal[k={k}]"

    def minimal_satisfying_nodes(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[Node]:
        """The minimal satisfying frontier of the lattice."""
        workspace = RecodingWorkspace(dataset, hierarchies)
        return self._frontier(workspace)

    def _sweep(self, workspace: RecodingWorkspace) -> tuple[list[Node], set[Node]]:
        """Bottom-up sweep; returns (minimal frontier, all satisfying)."""
        budget = int(self.suppression_limit * len(workspace.dataset))
        lattice = workspace.lattice
        satisfying: set[Node] = set()
        frontier: list[Node] = []
        for height in range(lattice.max_height + 1):
            for node in lattice.nodes_at_height(height):
                dominated = any(
                    predecessor in satisfying
                    for predecessor in lattice.predecessors(node)
                )
                if dominated:
                    # Monotonicity: satisfies, but not minimal.
                    satisfying.add(node)
                    continue
                if workspace.satisfies_k(node, self.k, budget):
                    satisfying.add(node)
                    frontier.append(node)
        return frontier, satisfying

    def _frontier(self, workspace: RecodingWorkspace) -> list[Node]:
        return self._sweep(workspace)[0]

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        workspace = RecodingWorkspace(dataset, hierarchies)
        frontier, satisfying = self._sweep(workspace)
        if not frontier:
            raise AlgorithmError(
                f"no generalization satisfies k={self.k} within the "
                f"suppression budget"
            )
        # Without suppression every cost metric here is monotone along
        # generalization, so the optimum lies on the minimal frontier.  With
        # a budget, extra generalization can trade against suppression
        # penalties, so all satisfying nodes must be scored.
        budget = int(self.suppression_limit * len(dataset))
        candidates = frontier if budget == 0 else sorted(satisfying)
        chosen = min(candidates, key=lambda node: self.cost(workspace, node, self.k))
        return workspace.apply(chosen, self.k, name=self.name)
