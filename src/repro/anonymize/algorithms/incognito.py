"""Incognito (LeFevre, DeWitt, Ramakrishnan).

Incognito computes *all* k-anonymous full-domain generalizations by dynamic
programming over quasi-identifier subsets: a node can only be k-anonymous
over a QI set if each of its projections onto the (i-1)-subsets is
k-anonymous (k-anonymity is anti-monotone under adding attributes), and
within one sub-lattice k-anonymity is monotone upward (the generalization
property), so ancestors of a known-anonymous node are marked without
rechecking.

The final release is the minimum-loss node among the minimal k-anonymous
nodes of the full QI set.  :meth:`k_anonymous_nodes` exposes the complete
set, which downstream comparisons (the paper's use case) can mine for
candidate anonymizations.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ...hierarchy.lattice import Lattice, Node
from ..engine import Anonymization
from .base import (
    AlgorithmError,
    Anonymizer,
    RecodingWorkspace,
    check_k,
    check_suppression_limit,
)


class Incognito(Anonymizer):
    """Incognito k-anonymizer.

    Parameters
    ----------
    k:
        The k-anonymity requirement.
    suppression_limit:
        Maximum fraction of rows that may be suppressed (0 reproduces the
        original algorithm exactly).
    """

    def __init__(self, k: int, suppression_limit: float = 0.0):
        self.k = check_k(k)
        self.suppression_limit = check_suppression_limit(suppression_limit)
        self.name = f"incognito[k={k}]"

    def _anonymous_sublattice(
        self,
        workspace: RecodingWorkspace,
        attributes: Sequence[str],
        previous: dict[tuple[str, ...], set[Node]],
        budget: int,
    ) -> set[Node]:
        """k-anonymous nodes of one QI-subset sub-lattice."""
        sub_lattice = Lattice([workspace.hierarchies[name] for name in attributes])

        def projections_anonymous(node: Node) -> bool:
            if len(attributes) == 1:
                return True
            for drop in range(len(attributes)):
                subset = tuple(
                    name for i, name in enumerate(attributes) if i != drop
                )
                projected = tuple(
                    level for i, level in enumerate(node) if i != drop
                )
                if projected not in previous[subset]:
                    return False
            return True

        anonymous: set[Node] = set()
        # Bottom-up breadth-first sweep; the generalization property marks
        # every ancestor of an anonymous node without a frequency-set pass.
        for height in range(sub_lattice.max_height + 1):
            for node in sub_lattice.nodes_at_height(height):
                if node in anonymous:
                    continue
                if not projections_anonymous(node):
                    continue
                if any(
                    predecessor in anonymous
                    for predecessor in sub_lattice.predecessors(node)
                ):
                    anonymous.add(node)
                    continue
                if workspace.satisfies_k(node, self.k, budget, attributes):
                    anonymous.add(node)
        return anonymous

    def k_anonymous_nodes(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[Node]:
        """All k-anonymous nodes of the full QI lattice."""
        workspace = RecodingWorkspace(dataset, hierarchies)
        return self._k_anonymous_nodes(workspace)

    def _k_anonymous_nodes(self, workspace: RecodingWorkspace) -> list[Node]:
        budget = int(self.suppression_limit * len(workspace.dataset))
        qi_names = workspace.qi_names
        results: dict[tuple[str, ...], set[Node]] = {}
        for size in range(1, len(qi_names) + 1):
            for subset in itertools.combinations(qi_names, size):
                results[subset] = self._anonymous_sublattice(
                    workspace, subset, results, budget
                )
        return sorted(results[tuple(qi_names)])

    def minimal_nodes(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[Node]:
        """The minimal (least generalized) k-anonymous nodes."""
        workspace = RecodingWorkspace(dataset, hierarchies)
        nodes = self._k_anonymous_nodes(workspace)
        return workspace.lattice.minimal_nodes(nodes)

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        workspace = RecodingWorkspace(dataset, hierarchies)
        nodes = self._k_anonymous_nodes(workspace)
        if not nodes:
            raise AlgorithmError(
                f"no full-domain generalization satisfies k={self.k} within "
                f"the suppression budget"
            )
        minimal = workspace.lattice.minimal_nodes(nodes)
        chosen = min(minimal, key=workspace.node_loss)
        return workspace.apply(chosen, self.k, name=self.name)
