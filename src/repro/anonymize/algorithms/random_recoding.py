"""Random satisfying recoding — the null-hypothesis baseline.

Comparative studies need a floor: how much of an algorithm's measured
quality is search, and how much comes free with *any* recoding that meets
the constraint?  This baseline samples uniformly from the satisfying
region of the full-domain lattice (rejection sampling with a bottom-up
fallback), giving an unbiased "some k-anonymous recoding" release.
"""

from __future__ import annotations

import random
from typing import Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ..engine import Anonymization
from .base import (
    AlgorithmError,
    Anonymizer,
    RecodingWorkspace,
    check_k,
    check_suppression_limit,
)


class RandomRecoding(Anonymizer):
    """Uniformly random satisfying full-domain recoding.

    Parameters
    ----------
    k:
        The k-anonymity requirement.
    suppression_limit:
        Maximum fraction of rows that may be suppressed.
    seed:
        RNG seed; deterministic per seed.
    attempts:
        Rejection-sampling budget before falling back to an exhaustive
        enumeration of satisfying nodes (still uniform, just slower).
    """

    def __init__(
        self,
        k: int,
        suppression_limit: float = 0.02,
        seed: int = 0,
        attempts: int = 200,
    ):
        self.k = check_k(k)
        self.suppression_limit = check_suppression_limit(suppression_limit)
        self.seed = seed
        if attempts < 1:
            raise AlgorithmError("attempts must be >= 1")
        self.attempts = attempts
        self.name = f"random[k={k}]"

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        workspace = RecodingWorkspace(dataset, hierarchies)
        budget = int(self.suppression_limit * len(dataset))
        rng = random.Random(self.seed)
        heights = workspace.lattice.heights

        for _ in range(self.attempts):
            node = tuple(rng.randrange(height + 1) for height in heights)
            if workspace.satisfies_k(node, self.k, budget):
                return workspace.apply(node, self.k, name=self.name)

        satisfying = [
            node
            for node in workspace.lattice.nodes()
            if workspace.satisfies_k(node, self.k, budget)
        ]
        if not satisfying:
            raise AlgorithmError(
                f"no generalization satisfies k={self.k} within the "
                "suppression budget"
            )
        chosen = satisfying[rng.randrange(len(satisfying))]
        return workspace.apply(chosen, self.k, name=self.name)
