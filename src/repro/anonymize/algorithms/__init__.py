"""Disclosure control algorithms (the comparison subjects of the paper)."""

from .base import AlgorithmError, Anonymizer, RecodingWorkspace
from .bottomup import BottomUpGeneralization
from .clustering import KMemberClustering
from .constrained import ConstrainedLattice
from .cuts import Cut, CutError, LevelCut, NumericSplitCut, TaxonomyCut
from .datafly import Datafly
from .genetic import GeneticAnonymizer
from .incognito import Incognito
from .mondrian import Mondrian
from .muargus import MuArgus
from .random_recoding import RandomRecoding
from .optimal import OptimalLattice, discernibility_cost, loss_metric_cost
from .samarati import Samarati
from .topdown import TopDownSpecialization

__all__ = [
    "AlgorithmError",
    "Anonymizer",
    "RecodingWorkspace",
    "BottomUpGeneralization",
    "ConstrainedLattice",
    "KMemberClustering",
    "Cut",
    "CutError",
    "LevelCut",
    "NumericSplitCut",
    "TaxonomyCut",
    "TopDownSpecialization",
    "Datafly",
    "GeneticAnonymizer",
    "Incognito",
    "Mondrian",
    "MuArgus",
    "OptimalLattice",
    "RandomRecoding",
    "discernibility_cost",
    "loss_metric_cost",
    "Samarati",
]
