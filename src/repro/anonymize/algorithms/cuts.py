"""Hierarchy-cut recodings.

Top-Down Specialization (Fung et al.) and Bottom-Up Generalization (Wang et
al.) — both surveyed in the paper's introduction — operate on *cuts*
through the generalization hierarchies rather than uniform level vectors: a
taxonomy attribute may release "Government" for some subtree while keeping
other branches at leaf granularity.  This module provides the cut
representation those two algorithms share.

For taxonomy attributes a cut is a set of tokens covering every leaf
exactly once; for interval/masking hierarchies (whose levels are already
total orders) a cut degenerates to a single level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import SUPPRESSED, Hierarchy
from ...lint.redact import redact_value
from ...hierarchy.categorical import TaxonomyHierarchy
from ...hierarchy.numeric import Span
from ..engine import Anonymization, released_with_local_cells


class CutError(ValueError):
    """Raised for invalid hierarchy cuts."""


@dataclass
class TaxonomyCut:
    """A cut through one taxonomy: a token set covering each leaf once."""

    hierarchy: TaxonomyHierarchy
    tokens: set[Hashable] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.tokens:
            self.tokens = {SUPPRESSED}
        self.validate()

    def validate(self) -> None:
        """Check the cut covers every leaf exactly once."""
        for leaf in self.hierarchy.leaves:
            # A group may legitimately carry the same label as its single
            # leaf (e.g. workclass "Private"); identical tokens on one path
            # are indistinguishable, so deduplicate before counting.
            path = dict.fromkeys(self.hierarchy.generalizations(leaf))
            covering = [token for token in path if token in self.tokens]
            if len(covering) != 1:
                raise CutError(
                    f"cut {sorted(map(repr, self.tokens))} covers leaf "
                    f"{leaf!r} {len(covering)} times (must be exactly once)"
                )

    def map_value(self, value: Any) -> Hashable:
        """The cut token releasing ``value``."""
        for token in self.hierarchy.generalizations(value):
            if token in self.tokens:
                return token
        raise CutError(
            f"value {redact_value(value, label='cell')} not covered by cut"
        )

    def specializations(self) -> list[Hashable]:
        """Cut tokens that can be replaced by their children."""
        return [
            token
            for token in self.tokens
            if self.hierarchy.level_of(token) > 0
        ]

    def specialize(self, token: Hashable) -> "TaxonomyCut":
        """A new cut with ``token`` replaced by its children."""
        if token not in self.tokens:
            raise CutError(f"{token!r} not in cut")
        replaced = set(self.tokens)
        replaced.remove(token)
        replaced.update(self.hierarchy.children(token))
        return TaxonomyCut(self.hierarchy, replaced)

    def merge_candidates(self) -> dict[Hashable, frozenset]:
        """Mergeable parents mapped to the sibling group each replaces.

        A parent is mergeable when every sibling at the level below it is
        currently in the cut.  Level walking (rather than parent/children
        lookups) keeps this correct when a group label aliases its single
        leaf (e.g. a "Private" group containing only the "Private" leaf).
        """
        hierarchy = self.hierarchy
        candidates: dict[Hashable, frozenset] = {}
        for token in self.tokens:
            representative = next(
                leaf
                for leaf in hierarchy.leaves
                if token in hierarchy.generalizations(leaf)
            )
            path = hierarchy.generalizations(representative)
            # Highest level carrying the token's label (alias levels repeat
            # the label), then the next differing label is the strict parent.
            token_level = max(
                level for level, label in enumerate(path) if label == token
            )
            parent = None
            parent_level = None
            for level in range(token_level + 1, hierarchy.height + 1):
                if path[level] != token:
                    parent = path[level]
                    parent_level = level
                    break
            if parent is None or parent in candidates:
                continue
            siblings = frozenset(
                hierarchy.generalize(leaf, parent_level - 1)
                for leaf in hierarchy.leaves
                if hierarchy.generalize(leaf, parent_level) == parent
            )
            if siblings <= self.tokens:
                candidates[parent] = siblings
        return candidates

    def generalizations(self) -> list[Hashable]:
        """Parents that could replace their full sibling group."""
        return list(self.merge_candidates())

    def generalize(self, parent: Hashable) -> "TaxonomyCut":
        """A new cut with ``parent``'s sibling group replaced by ``parent``."""
        candidates = self.merge_candidates()
        if parent not in candidates:
            raise CutError(
                f"{redact_value(parent, label='token')} is not a mergeable "
                f"parent of this cut"
            )
        replaced = (set(self.tokens) - candidates[parent]) | {parent}
        return TaxonomyCut(self.hierarchy, replaced)

    def loss(self, value: Any) -> float:
        """LM loss of the value under this cut."""
        return self.hierarchy.released_loss(self.map_value(value))


@dataclass
class LevelCut:
    """Degenerate cut for totally ordered hierarchies: one level."""

    hierarchy: Hierarchy
    level: int

    def __post_init__(self) -> None:
        self.hierarchy.check_level(self.level)

    def map_value(self, value: Any) -> Hashable:
        """The generalized token releasing ``value``."""
        return self.hierarchy.generalize(value, self.level)

    def specializations(self) -> list[int]:
        """Levels that can be lowered (empty at level 0)."""
        return [self.level] if self.level > 0 else []

    def specialize(self, _token: int | None = None) -> "LevelCut":
        """The cut one level finer."""
        if self.level == 0:
            raise CutError("already at level 0")
        return LevelCut(self.hierarchy, self.level - 1)

    def generalizations(self) -> list[int]:
        """Levels that can be raised (empty at the top)."""
        return [self.level] if self.level < self.hierarchy.height else []

    def generalize(self, _token: int | None = None) -> "LevelCut":
        """The cut one level coarser."""
        if self.level >= self.hierarchy.height:
            raise CutError("already at the top level")
        return LevelCut(self.hierarchy, self.level + 1)

    def loss(self, value: Any) -> float:
        """LM loss of the value at this level."""
        return self.hierarchy.loss(value, self.level)


@dataclass
class NumericSplitCut:
    """Data-driven interval cut for numeric attributes (Fung's TDS).

    The attribute domain ``[low, high]`` is partitioned by ``splits`` into
    closed segments; a value releases as the :class:`Span` of its segment.
    Specialization inserts a new split inside one segment — TDS picks the
    median of the segment's observed values, so intervals adapt to the data
    instead of following fixed hierarchy bands.
    """

    bounds: tuple[float, float]
    splits: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        low, high = self.bounds
        if high <= low:
            raise CutError(f"invalid bounds ({low}, {high})")
        ordered = tuple(sorted(set(self.splits)))
        if any(not low < s < high for s in ordered):
            raise CutError("splits must lie strictly inside the bounds")
        self.splits = ordered

    def _edges(self) -> list[float]:
        low, high = self.bounds
        return [low, *self.splits, high]

    def segments(self) -> list[Span]:
        """The closed segments of the current partition, in order."""
        edges = self._edges()
        return [Span(a, b) for a, b in zip(edges[:-1], edges[1:])]

    def map_value(self, value: Any) -> Hashable:
        """The segment Span releasing ``value``."""
        if not isinstance(value, (int, float)):
            raise CutError(
                f"numeric cut cannot map {redact_value(value, label='cell')}"
            )
        low, high = self.bounds
        if not low <= value <= high:
            raise CutError(
                f"value {redact_value(value, label='cell')} outside bounds "
                f"({low}, {high})"
            )
        edges = self._edges()
        for a, b in zip(edges[:-1], edges[1:]):
            # Left-closed segments; the last one is closed on both ends.
            if a <= value < b or (b == high and value <= high):
                return Span(a, b)
        raise AssertionError("unreachable: bounds checked above")

    def specializations(self) -> list[int]:
        """Indices of segments that could be split (all of them; whether a
        useful split value exists depends on the data — see
        :meth:`split_value`)."""
        return list(range(len(self.splits) + 1))

    def split_value(self, segment: int, values: list[float]) -> float | None:
        """TDS's split choice: the median of the observed values strictly
        inside the segment, or ``None`` when no split separates anything."""
        span = self.segments()[segment]
        inside = sorted(v for v in values if v in span)
        if len(set(inside)) < 2:
            return None
        middle = inside[len(inside) // 2]
        if middle == inside[0]:
            # Median equals the minimum; split just above it instead.
            larger = [v for v in inside if v > middle]
            middle = larger[0]
        if not span.low < middle < span.high:
            return None
        return float(middle)

    def specialize(self, split: float) -> "NumericSplitCut":
        """A new cut with ``split`` added."""
        low, high = self.bounds
        if not low < split < high or split in self.splits:
            raise CutError(
                f"invalid new split {redact_value(split, label='split')}"
            )
        return NumericSplitCut(self.bounds, self.splits + (split,))

    def generalizations(self) -> list[int]:
        """Indices of removable splits."""
        return list(range(len(self.splits)))

    def generalize(self, index: int) -> "NumericSplitCut":
        """A new cut with the ``index``-th split removed."""
        if not 0 <= index < len(self.splits):
            raise CutError(f"no split at index {index}")
        remaining = self.splits[:index] + self.splits[index + 1 :]
        return NumericSplitCut(self.bounds, remaining)

    def loss(self, value: Any) -> float:
        """Normalized width of the value's segment."""
        low, high = self.bounds
        span = self.map_value(value)
        if isinstance(span, Span):
            return min(1.0, span.width / (high - low))
        return 0.0


Cut = TaxonomyCut | LevelCut | NumericSplitCut


def top_cuts(
    dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
) -> dict[str, Cut]:
    """Fully generalized cuts for every QI (TDS's starting point)."""
    return {
        name: _make_cut(hierarchies[name], at_top=True)
        for name in dataset.schema.quasi_identifier_names
    }


def bottom_cuts(
    dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
) -> dict[str, Cut]:
    """Raw-value cuts for every QI (BUG's starting point)."""
    return {
        name: _make_cut(hierarchies[name], at_top=False)
        for name in dataset.schema.quasi_identifier_names
    }


def _make_cut(hierarchy: Hierarchy, at_top: bool) -> Cut:
    if isinstance(hierarchy, TaxonomyHierarchy):
        if at_top:
            return TaxonomyCut(hierarchy, {SUPPRESSED})
        return TaxonomyCut(hierarchy, set(hierarchy.leaves))
    return LevelCut(hierarchy, hierarchy.height if at_top else 0)


def apply_cuts(
    dataset: Dataset, cuts: Mapping[str, Cut], name: str
) -> Anonymization:
    """Materialize a cut recoding as an Anonymization."""
    qi_names = dataset.schema.quasi_identifier_names
    missing = set(qi_names) - set(cuts)
    if missing:
        raise CutError(f"missing cuts for {sorted(missing)}")
    columns = {
        attr: [cuts[attr].map_value(value) for value in dataset.column(attr)]
        for attr in qi_names
    }
    qi_cells = [
        {attr: columns[attr][row] for attr in qi_names}
        for row in range(len(dataset))
    ]
    return released_with_local_cells(dataset, qi_cells, name=name)


def cut_group_sizes(
    dataset: Dataset, cuts: Mapping[str, Cut]
) -> dict[tuple, int]:
    """Frequency set of the recoding induced by ``cuts``."""
    qi_names = dataset.schema.quasi_identifier_names
    columns = [
        [cuts[attr].map_value(value) for value in dataset.column(attr)]
        for attr in qi_names
    ]
    counts: dict[tuple, int] = {}
    for key in zip(*columns):
        counts[key] = counts.get(key, 0) + 1
    return counts


def cut_violations(dataset: Dataset, cuts: Mapping[str, Cut], k: int) -> int:
    """Rows in groups smaller than k under the cut recoding."""
    counts = cut_group_sizes(dataset, cuts)
    return sum(size for size in counts.values() if size < k)


def cut_total_loss(dataset: Dataset, cuts: Mapping[str, Cut]) -> float:
    """Total LM loss of the cut recoding."""
    total = 0.0
    for attr in dataset.schema.quasi_identifier_names:
        cut = cuts[attr]
        total += sum(cut.loss(value) for value in dataset.column(attr))
    return total
