"""Top-Down Specialization (Fung, Wang, Yu — ICDE 2005).

Starts from the fully generalized table (every QI at its hierarchy top) and
greedily *specializes* one cut token at a time — replacing it with its
children — choosing at each step the specialization that recovers the most
information while keeping the table k-anonymous.  Stops when no candidate
specialization preserves k.

The released table is a hierarchy-cut recoding: different branches of a
taxonomy may end at different granularities, which full-domain recoders
cannot express.
"""

from __future__ import annotations

from typing import Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ...hierarchy.numeric import IntervalHierarchy
from ..engine import Anonymization
from .base import Anonymizer, check_k
from .cuts import (
    Cut,
    NumericSplitCut,
    apply_cuts,
    cut_total_loss,
    cut_violations,
    top_cuts,
)


class TopDownSpecialization(Anonymizer):
    """TDS k-anonymizer over hierarchy cuts.

    Parameters
    ----------
    k:
        The k-anonymity requirement (guaranteed — the search never leaves
        the k-anonymous region, and the fully generalized start satisfies
        any k <= N).
    max_specializations:
        Optional cap on performed specializations (None = until no valid
        candidate remains).
    flexible_numeric:
        Use Fung-style data-driven binary splits for numeric attributes
        (:class:`~repro.anonymize.algorithms.cuts.NumericSplitCut`) instead
        of the fixed hierarchy bands.  Interval hierarchies then only
        contribute their domain bounds.
    """

    def __init__(
        self,
        k: int,
        max_specializations: int | None = None,
        flexible_numeric: bool = False,
    ):
        self.k = check_k(k)
        if max_specializations is not None and max_specializations < 0:
            raise ValueError("max_specializations must be >= 0")
        self.max_specializations = max_specializations
        self.flexible_numeric = flexible_numeric
        self.name = f"tds[k={k}]" + ("-flex" if flexible_numeric else "")

    def _start_cuts(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> dict[str, Cut]:
        cuts = top_cuts(dataset, hierarchies)
        if self.flexible_numeric:
            for attribute in dataset.schema.quasi_identifier_names:
                hierarchy = hierarchies[attribute]
                if isinstance(hierarchy, IntervalHierarchy):
                    cuts[attribute] = NumericSplitCut(hierarchy.bounds)
        return cuts

    def _trials(
        self, dataset: Dataset, cuts: Mapping[str, Cut]
    ) -> list[tuple[str, Cut]]:
        """Every legal one-step specialization as (attribute, new cut)."""
        trials: list[tuple[str, Cut]] = []
        for attribute, cut in cuts.items():
            if isinstance(cut, NumericSplitCut):
                column = [
                    v
                    for v in dataset.column(attribute)
                    if isinstance(v, (int, float))
                ]
                for segment in cut.specializations():
                    split = cut.split_value(segment, column)
                    if split is not None:
                        trials.append((attribute, cut.specialize(split)))
            else:
                for token in cut.specializations():
                    trials.append((attribute, cut.specialize(token)))
        return trials

    def search_cuts(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> dict[str, Cut]:
        """The final cut per QI attribute."""
        if len(dataset) < self.k:
            raise ValueError(
                f"dataset of {len(dataset)} rows cannot be {self.k}-anonymized"
            )
        cuts = self._start_cuts(dataset, hierarchies)
        performed = 0
        while True:
            if (
                self.max_specializations is not None
                and performed >= self.max_specializations
            ):
                break
            current_loss = cut_total_loss(dataset, cuts)
            best: tuple[float, str, Cut] | None = None
            for attribute, trial_cut in self._trials(dataset, cuts):
                trial = dict(cuts)
                trial[attribute] = trial_cut
                if cut_violations(dataset, trial, self.k) > 0:
                    continue
                gain = current_loss - cut_total_loss(dataset, trial)
                if best is None or gain > best[0]:
                    best = (gain, attribute, trial_cut)
            if best is None:
                break
            _, attribute, trial_cut = best
            cuts[attribute] = trial_cut
            performed += 1
        return cuts

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        cuts = self.search_cuts(dataset, hierarchies)
        return apply_cuts(dataset, cuts, name=self.name)
