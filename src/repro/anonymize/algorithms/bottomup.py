"""Bottom-Up Generalization (Wang, Yu, Chakraborty — ICDM 2004).

The mirror image of top-down specialization: start from the raw table and
greedily *generalize* — merging a sibling group into its parent (taxonomy)
or raising a level (ordered hierarchies) — until the table is k-anonymous.
Each step picks the candidate with the best benefit/cost ratio: violation
rows removed per unit of information loss added.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ..engine import Anonymization
from .base import Anonymizer, check_k
from .cuts import (
    Cut,
    apply_cuts,
    bottom_cuts,
    cut_total_loss,
    cut_violations,
)


class BottomUpGeneralization(Anonymizer):
    """BUG k-anonymizer over hierarchy cuts.

    Parameters
    ----------
    k:
        The k-anonymity requirement (guaranteed: the fully generalized
        table is always reachable and satisfies any k <= N).
    """

    def __init__(self, k: int):
        self.k = check_k(k)
        self.name = f"bug[k={k}]"

    def _candidates(
        self, cuts: Mapping[str, Cut]
    ) -> list[tuple[str, Hashable | int]]:
        return [
            (attribute, parent)
            for attribute, cut in cuts.items()
            for parent in cut.generalizations()
        ]

    def search_cuts(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> dict[str, Cut]:
        """The final cut per QI attribute."""
        if len(dataset) < self.k:
            raise ValueError(
                f"dataset of {len(dataset)} rows cannot be {self.k}-anonymized"
            )
        cuts = bottom_cuts(dataset, hierarchies)
        while cut_violations(dataset, cuts, self.k) > 0:
            current_violations = cut_violations(dataset, cuts, self.k)
            current_loss = cut_total_loss(dataset, cuts)
            best: tuple[float, str, Hashable | int] | None = None
            for attribute, parent in self._candidates(cuts):
                trial = dict(cuts)
                trial[attribute] = cuts[attribute].generalize(parent)
                removed = current_violations - cut_violations(
                    dataset, trial, self.k
                )
                added_loss = cut_total_loss(dataset, trial) - current_loss
                # Benefit/cost; free-loss candidates rank by removals alone.
                score = removed / added_loss if added_loss > 0 else float(removed)
                if best is None or score > best[0]:
                    best = (score, attribute, parent)
            if best is None:
                # No candidate left: the cut is the hierarchy top already
                # but violations remain — impossible for k <= N since the
                # top puts all rows in one group.
                raise AssertionError("generalization exhausted below k")
            _, attribute, parent = best
            cuts[attribute] = cuts[attribute].generalize(parent)
        return cuts

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        cuts = self.search_cuts(dataset, hierarchies)
        return apply_cuts(dataset, cuts, name=self.name)
