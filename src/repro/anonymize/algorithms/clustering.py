"""Greedy k-member clustering anonymization (Byun et al., DASFAA 2007).

A third recoding family beside full-domain levels and hierarchy cuts:
build equivalence classes directly as clusters of at least k *similar*
records, then release each cluster's minimal generalization (numeric
min-max spans, categorical lowest common generalization).  Compared to
Mondrian's axis-aligned cuts, clustering can follow arbitrary-shaped dense
regions; compared to full-domain recoding it is fully local.

Algorithm (greedy k-member): repeatedly seed a cluster with the record
farthest from the previous seed, grow it with the k−1 records whose
addition costs the least information, and assign the leftovers (< k) to
their cheapest clusters.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...datasets.dataset import Dataset
from ...datasets.schema import AttributeKind
from ...hierarchy.base import Hierarchy
from ...hierarchy.categorical import TaxonomyHierarchy
from ...hierarchy.numeric import Span
from ..engine import Anonymization, released_with_local_cells
from .base import AlgorithmError, Anonymizer, check_k


class KMemberClustering(Anonymizer):
    """Greedy k-member clustering anonymizer.

    Parameters
    ----------
    k:
        Minimum cluster (equivalence class) size.
    """

    def __init__(self, k: int):
        self.k = check_k(k)
        self.name = f"k-member[k={k}]"

    # -- per-attribute machinery ------------------------------------------------

    def _plan(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[tuple[str, AttributeKind, Any]]:
        plan = []
        for attribute in dataset.schema.quasi_identifiers:
            if attribute.kind is AttributeKind.NUMERIC:
                column = [
                    v
                    for v in dataset.column(attribute.name)
                    if isinstance(v, (int, float))
                ]
                low, high = (min(column), max(column)) if column else (0.0, 1.0)
                plan.append((attribute.name, attribute.kind, (low, high)))
            else:
                hierarchy = hierarchies.get(attribute.name)
                plan.append((attribute.name, attribute.kind, hierarchy))
        return plan

    @staticmethod
    def _categorical_span(
        values: set[Any], hierarchy: TaxonomyHierarchy | None
    ) -> tuple[Any, float]:
        """(released cell, normalized loss) for a categorical value set."""
        if len(values) == 1:
            return next(iter(values)), 0.0
        if isinstance(hierarchy, TaxonomyHierarchy):
            # Lowest common generalization along the shared path.
            paths = [hierarchy.generalizations(value) for value in values]
            for level in range(1, hierarchy.height + 1):
                tokens = {path[level] for path in paths}
                if len(tokens) == 1:
                    token = tokens.pop()
                    return token, hierarchy.released_loss(token)
            token = paths[0][-1]
            return token, 1.0
        cell = frozenset(values)
        return cell, (len(values) - 1) / max(len(values), 2)

    def _cluster_cost(
        self,
        columns: Mapping[str, tuple],
        plan: Sequence[tuple[str, AttributeKind, Any]],
        rows: Sequence[int],
    ) -> float:
        """Total information loss of releasing ``rows`` as one cluster."""
        cost = 0.0
        for attribute, kind, info in plan:
            column = columns[attribute]
            values = [column[row] for row in rows]
            if kind is AttributeKind.NUMERIC:
                low, high = info
                domain = high - low
                if domain > 0:
                    cost += (max(values) - min(values)) / domain
            else:
                _, loss = self._categorical_span(set(values), info)
                cost += loss
        return cost * len(rows)

    # -- clustering ----------------------------------------------------------------

    def clusters(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[list[int]]:
        """Greedy k-member clusters (row-index lists, each >= k)."""
        if len(dataset) < self.k:
            raise AlgorithmError(
                f"dataset of {len(dataset)} rows cannot be {self.k}-anonymized"
            )
        plan = self._plan(dataset, hierarchies)
        columns = {
            attribute: dataset.column(attribute)
            for attribute, _, _ in plan
        }
        unassigned = set(range(len(dataset)))
        clusters: list[list[int]] = []
        seed = min(unassigned)
        while len(unassigned) >= self.k:
            # Seed: farthest (most expensive pair) from the previous seed.
            previous = seed
            seed = max(
                unassigned,
                key=lambda row: self._cluster_cost(
                    columns, plan, [previous, row]
                ),
            )
            cluster = [seed]
            unassigned.remove(seed)
            while len(cluster) < self.k:
                best = min(
                    unassigned,
                    key=lambda row: self._cluster_cost(
                        columns, plan, cluster + [row]
                    ),
                )
                cluster.append(best)
                unassigned.remove(best)
            clusters.append(cluster)
        # Leftovers join their cheapest cluster.
        for row in sorted(unassigned):
            target = min(
                range(len(clusters)),
                key=lambda index: self._cluster_cost(
                    columns, plan, clusters[index] + [row]
                ),
            )
            clusters[target].append(row)
        return clusters

    # -- release --------------------------------------------------------------------

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        plan = self._plan(dataset, hierarchies)
        qi_cells: list[dict[str, Any]] = [dict() for _ in range(len(dataset))]
        for cluster in self.clusters(dataset, hierarchies):
            summary: dict[str, Any] = {}
            for attribute, kind, info in plan:
                column = dataset.column(attribute)
                values = [column[row] for row in cluster]
                if kind is AttributeKind.NUMERIC:
                    low, high = min(values), max(values)
                    summary[attribute] = (
                        values[0] if low == high else Span(float(low), float(high))
                    )
                else:
                    cell, _ = self._categorical_span(set(values), info)
                    summary[attribute] = cell
            for row in cluster:
                qi_cells[row] = dict(summary)
        return released_with_local_cells(dataset, qi_cells, name=self.name)
