"""Multi-model constrained lattice search.

Section 4 of the paper observes that "optimization attempts are also rare
where emphasis is laid on obtaining anonymizations that satisfy more than
one privacy property".  This anonymizer fills that gap on the full-domain
lattice: it finds the minimum-loss recoding satisfying *every* supplied
privacy model simultaneously (k-anonymity + l-diversity + t-closeness +
...), exploiting that each of this library's models is monotone along
generalization — merging equivalence classes never decreases the minimum
class size, the diversity of a class, or its closeness to the global
distribution.

Monotonicity is also verified empirically by the test suite
(tests/test_constrained.py), not just assumed.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ...hierarchy.lattice import Node
from ...privacy.base import PrivacyModel
from ..engine import Anonymization, recode_node
from .base import AlgorithmError, Anonymizer, RecodingWorkspace


class ConstrainedLattice(Anonymizer):
    """Minimum-loss full-domain recoding satisfying several privacy models.

    Parameters
    ----------
    models:
        Privacy models that must all hold (each assumed monotone along
        generalization — true for every model in :mod:`repro.privacy`).
    """

    def __init__(self, models: Sequence[PrivacyModel]):
        if not models:
            raise AlgorithmError("constrained search needs at least one model")
        self.models = tuple(models)
        names = "+".join(model.name for model in self.models)
        self.name = f"constrained[{names}]"

    def _satisfies(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy], node: Node
    ) -> bool:
        release = recode_node(dataset, hierarchies, node)
        return all(model.satisfied_by(release) for model in self.models)

    def satisfying_frontier(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[Node]:
        """Minimal satisfying nodes (no satisfying strict descendant)."""
        workspace = RecodingWorkspace(dataset, hierarchies)
        lattice = workspace.lattice
        satisfying: set[Node] = set()
        frontier: list[Node] = []
        for height in range(lattice.max_height + 1):
            for node in lattice.nodes_at_height(height):
                if any(
                    predecessor in satisfying
                    for predecessor in lattice.predecessors(node)
                ):
                    satisfying.add(node)
                    continue
                if self._satisfies(dataset, hierarchies, node):
                    satisfying.add(node)
                    frontier.append(node)
        return frontier

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        workspace = RecodingWorkspace(dataset, hierarchies)
        frontier = self.satisfying_frontier(dataset, hierarchies)
        if not frontier:
            raise AlgorithmError(
                "no full-domain generalization satisfies "
                + " and ".join(model.name for model in self.models)
            )
        chosen = min(frontier, key=workspace.node_loss)
        release = recode_node(dataset, workspace.hierarchies, chosen, name=self.name)
        return release
