"""A μ-Argus-style greedy anonymizer (Hundepool and Willenborg).

μ-Argus checks the frequencies of *combinations* of quasi-identifiers only
up to a configured dimension, greedily generalizes the attributes involved
in the most unsafe (below-threshold) combinations, and finally locally
suppresses the remaining unsafe rows.  Because combinations larger than
``max_combination_size`` are never checked, the released table is **not
guaranteed** to be k-anonymous over the full quasi-identifier — the
documented shortcoming Sweeney reported [16], reproduced faithfully here
(and surfaced by this library's tests).
"""

from __future__ import annotations

import itertools
from typing import Hashable, Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ..engine import Anonymization, recode
from .base import (
    Anonymizer,
    RecodingWorkspace,
    check_k,
    check_suppression_limit,
)


class MuArgus(Anonymizer):
    """μ-Argus-style k-anonymizer.

    Parameters
    ----------
    k:
        The frequency threshold for combinations.
    max_combination_size:
        Largest QI combination whose frequencies are checked (the original
        tool's key limitation; default 2).
    suppression_limit:
        Cap on locally suppressed rows; generalization continues while the
        unsafe row count exceeds it.
    """

    def __init__(
        self,
        k: int,
        max_combination_size: int = 2,
        suppression_limit: float = 0.05,
    ):
        self.k = check_k(k)
        if max_combination_size < 1:
            raise ValueError(
                f"max combination size must be >= 1, got {max_combination_size}"
            )
        self.max_combination_size = max_combination_size
        self.suppression_limit = check_suppression_limit(suppression_limit)
        self.name = f"muargus[k={k},dim={max_combination_size}]"

    def _unsafe_rows_by_attribute(
        self, workspace: RecodingWorkspace, levels: dict[str, int]
    ) -> tuple[set[int], dict[str, int]]:
        """Rows appearing in any unsafe (< k) combination up to the checked
        dimension, and per-attribute unsafe-combination involvement."""
        qi_names = workspace.qi_names
        unsafe_rows: set[int] = set()
        involvement = {name: 0 for name in qi_names}
        dimension = min(self.max_combination_size, len(qi_names))
        for size in range(1, dimension + 1):
            for subset in itertools.combinations(qi_names, size):
                node = tuple(levels[name] for name in subset)
                counts = workspace.group_sizes(node, subset)
                unsafe_keys = {
                    key for key, count in counts.items() if count < self.k
                }
                if not unsafe_keys:
                    continue
                columns = [
                    workspace.generalized_column(name, levels[name])
                    for name in subset
                ]
                for row_index, key in enumerate(zip(*columns)):
                    if key in unsafe_keys:
                        unsafe_rows.add(row_index)
                for name in subset:
                    involvement[name] += len(unsafe_keys)
        return unsafe_rows, involvement

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        workspace = RecodingWorkspace(dataset, hierarchies)
        levels = {name: 0 for name in workspace.qi_names}
        budget = int(self.suppression_limit * len(dataset))

        while True:
            unsafe_rows, involvement = self._unsafe_rows_by_attribute(
                workspace, levels
            )
            if len(unsafe_rows) <= budget:
                break
            candidates = [
                name
                for name in workspace.qi_names
                if levels[name] < workspace.hierarchies[name].height
                and involvement[name] > 0
            ]
            if not candidates:
                break
            chosen = max(candidates, key=lambda name: involvement[name])
            levels[chosen] += 1

        unsafe_rows, _ = self._unsafe_rows_by_attribute(workspace, levels)
        return recode(
            dataset,
            workspace.hierarchies,
            levels,
            suppress=sorted(unsafe_rows),
            name=self.name,
        )
