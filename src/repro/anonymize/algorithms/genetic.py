"""Iyengar-style genetic k-anonymization.

Iyengar [KDD 2002] posed k-anonymization as optimization over *flexible*
generalizations — for an ordered attribute domain, any partition into
contiguous intervals (encoded as a split-point bitstring), a much larger
space than the hierarchy's fixed levels — and searched it with a genetic
algorithm penalizing classes below k.  Lunacek, Whitley and Ray [GECCO 2006]
sped this up with a crossover operator that preserves the hierarchy
constraints on categorical attributes.

This implementation follows that design:

* numeric quasi-identifiers use split-point bitstrings over the sorted
  distinct values (fully flexible intervals);
* categorical quasi-identifiers use hierarchy level genes, so every
  chromosome respects the taxonomy by construction — the feasibility
  invariant Lunacek's crossover enforces;
* fitness is the general loss metric plus an Iyengar-style penalty charging
  each row of an undersized class the full suppression loss;
* selection is tournament-based with elitism; crossover is uniform per
  gene-block; mutation flips split bits / perturbs level genes.

The GA is seeded and deterministic for a given configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ...datasets.dataset import Dataset
from ...datasets.schema import AttributeKind
from ...hierarchy.base import Hierarchy
from ...hierarchy.codes import level_table
from ...hierarchy.numeric import Span
from ...kernels import active as active_kernels
from ..engine import Anonymization, released_with_local_cells
from .base import AlgorithmError, Anonymizer, check_k


@dataclass
class _NumericGene:
    """Split-point bitstring over an attribute's sorted distinct values.

    ``splits[i]`` set means an interval boundary between sorted value i and
    i+1; all-zero is full generalization to one interval, all-one keeps the
    raw values.
    """

    attribute: str
    splits: list[bool]  # one flag per boundary between sorted distinct values


@dataclass
class _CategoricalGene:
    """Hierarchy level for a categorical attribute."""

    attribute: str
    level: int


class _Chromosome:
    def __init__(self, genes: list[_NumericGene | _CategoricalGene]):
        self.genes = genes

    def copy(self) -> "_Chromosome":
        copied: list[_NumericGene | _CategoricalGene] = []
        for gene in self.genes:
            if isinstance(gene, _NumericGene):
                copied.append(_NumericGene(gene.attribute, list(gene.splits)))
            else:
                copied.append(_CategoricalGene(gene.attribute, gene.level))
        return _Chromosome(copied)


class GeneticAnonymizer(Anonymizer):
    """Genetic k-anonymizer over flexible generalizations.

    Parameters
    ----------
    k:
        The k-anonymity requirement.
    population_size, generations:
        GA budget.
    mutation_rate:
        Per-bit / per-gene mutation probability.
    tournament:
        Tournament size for selection.
    elitism:
        Number of best chromosomes copied unchanged each generation.
    seed:
        RNG seed; runs are deterministic per seed.
    """

    def __init__(
        self,
        k: int,
        population_size: int = 40,
        generations: int = 60,
        mutation_rate: float = 0.02,
        tournament: int = 3,
        elitism: int = 2,
        seed: int = 0,
    ):
        self.k = check_k(k)
        if population_size < 2:
            raise AlgorithmError("population size must be >= 2")
        if generations < 1:
            raise AlgorithmError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise AlgorithmError("mutation rate must be in [0,1]")
        if tournament < 1 or tournament > population_size:
            raise AlgorithmError("tournament size must be in [1, population]")
        if elitism < 0 or elitism >= population_size:
            raise AlgorithmError("elitism must be in [0, population)")
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament = tournament
        self.elitism = elitism
        self.seed = seed
        self.name = f"genetic[k={k}]"

    # -- decoding ---------------------------------------------------------------

    def _attribute_plan(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[tuple[str, AttributeKind, Any]]:
        plan = []
        for attribute in dataset.schema.quasi_identifiers:
            if attribute.kind is AttributeKind.NUMERIC:
                distinct = sorted(dataset.distinct(attribute.name))
                plan.append((attribute.name, attribute.kind, distinct))
            else:
                hierarchy = hierarchies.get(attribute.name)
                if hierarchy is None:
                    raise AlgorithmError(
                        f"categorical QI {attribute.name!r} needs a hierarchy"
                    )
                plan.append((attribute.name, attribute.kind, hierarchy))
        return plan

    def _random_chromosome(self, plan: list, rng: random.Random) -> _Chromosome:
        genes: list[_NumericGene | _CategoricalGene] = []
        for attribute, kind, info in plan:
            if kind is AttributeKind.NUMERIC:
                size = max(len(info) - 1, 0)
                genes.append(
                    _NumericGene(
                        attribute, [rng.random() < 0.5 for _ in range(size)]
                    )
                )
            else:
                genes.append(
                    _CategoricalGene(attribute, rng.randrange(info.height + 1))
                )
        return _Chromosome(genes)

    @staticmethod
    def _intervals(distinct: Sequence[float], splits: Sequence[bool]) -> list[Span]:
        """Contiguous value groups encoded by the split bitstring."""
        spans = []
        start = 0
        for position, is_split in enumerate(splits):
            if is_split:
                spans.append(Span(float(distinct[start]), float(distinct[position])))
                start = position + 1
        spans.append(Span(float(distinct[start]), float(distinct[-1])))
        return spans

    def _decode_columns(
        self, dataset: Dataset, plan: list, chromosome: _Chromosome
    ) -> dict[str, list[Any]]:
        """Released QI cell per row per attribute for this chromosome."""
        columns: dict[str, list[Any]] = {}
        for gene, (attribute, kind, info) in zip(chromosome.genes, plan):
            raw = dataset.column(attribute)
            if isinstance(gene, _NumericGene):
                spans = self._intervals(info, gene.splits)
                lookup = {}
                for span in spans:
                    for value in info:
                        if value in span:
                            lookup[value] = span
                columns[attribute] = [
                    value if lookup[value].width == 0 else lookup[value]
                    for value in raw
                ]
            else:
                hierarchy = info
                column = dataset.columns().column(attribute)
                built = level_table(column, hierarchy).level(gene.level)
                values = built.values
                columns[attribute] = [values[code] for code in column.codes]
        return columns

    # -- fitness -----------------------------------------------------------------

    def _fitness(
        self,
        dataset: Dataset,
        plan: list,
        hierarchies: Mapping[str, Hierarchy],
        chromosome: _Chromosome,
    ) -> float:
        """Total loss + penalty for undersized classes (lower is better).

        Runs on the columnar plane: per attribute the loss increment is
        scored once per distinct base value and accumulated per row through
        the interned codes — the per-row ``+=`` order (attribute-major, row
        order within each attribute) matches the row plane exactly, so the
        fitness floats are bit-identical and seeded runs are unchanged.
        """
        kernels = active_kernels()
        view = dataset.columns()
        loss = 0.0
        qi_count = len(plan)
        combined: Any = None
        for gene, (attribute, kind, info) in zip(chromosome.genes, plan):
            column = view.column(attribute)
            base = kernels.from_code_buffer(column.codes)
            per_base: list[float]
            if isinstance(gene, _NumericGene):
                spans = self._intervals(info, gene.splits)
                span_of: dict[Any, int] = {}
                for index, span in enumerate(spans):
                    for value in info:
                        if value in span:
                            span_of[value] = index
                domain = max(info) - min(info)
                gather = [0] * column.domain_size
                per_base = [0.0] * column.domain_size
                for code, value in enumerate(column.decode):
                    index = span_of[value]
                    gather[code] = index
                    span = spans[index]
                    if span.width > 0 and domain > 0:
                        per_base[code] = min(1.0, span.width / domain)
                codes = kernels.gather(gather, base)
                radix = len(spans)
            else:
                hierarchy = info
                built = level_table(column, hierarchy).level(gene.level)
                cell_loss = [hierarchy.released_loss(value) for value in built.decode]
                per_base = [cell_loss[code] for code in built.gather]
                codes = kernels.gather(built.gather, base)
                radix = built.count
            for code in column.codes:
                loss += per_base[code]
            if combined is None:
                combined = codes
            else:
                combined = kernels.pack(combined, radix, codes)

        # Iyengar's penalty: every row of a class below k is charged as if
        # suppressed (full loss across all QIs).
        penalty = 0
        if combined is not None:
            labels, count = kernels.densify(combined)
            sizes = kernels.bincount(labels, count)
            penalty = kernels.sum_less(sizes, self.k) * qi_count
        return loss + penalty

    # -- GA operators --------------------------------------------------------------

    def _crossover(
        self, a: _Chromosome, b: _Chromosome, rng: random.Random
    ) -> _Chromosome:
        """Gene-block uniform crossover; numeric bitstrings mix with a
        single-point cut (Lunacek-style boundary-respecting merge),
        categorical levels are inherited whole so hierarchy feasibility is
        preserved by construction."""
        genes: list[_NumericGene | _CategoricalGene] = []
        for gene_a, gene_b in zip(a.genes, b.genes):
            if isinstance(gene_a, _NumericGene):
                assert isinstance(gene_b, _NumericGene)
                splits = list(gene_a.splits)
                if splits:
                    cut = rng.randrange(len(splits) + 1)
                    splits[cut:] = gene_b.splits[cut:]
                genes.append(_NumericGene(gene_a.attribute, splits))
            else:
                assert isinstance(gene_b, _CategoricalGene)
                chosen = gene_a if rng.random() < 0.5 else gene_b
                genes.append(_CategoricalGene(chosen.attribute, chosen.level))
        return _Chromosome(genes)

    def _mutate(
        self, chromosome: _Chromosome, plan: list, rng: random.Random
    ) -> None:
        for gene, (_, kind, info) in zip(chromosome.genes, plan):
            if isinstance(gene, _NumericGene):
                for position in range(len(gene.splits)):
                    if rng.random() < self.mutation_rate:
                        gene.splits[position] = not gene.splits[position]
            else:
                if rng.random() < self.mutation_rate:
                    gene.level = rng.randrange(info.height + 1)

    # -- main loop --------------------------------------------------------------------

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        if len(dataset) < self.k:
            raise AlgorithmError(
                f"dataset of {len(dataset)} rows cannot be {self.k}-anonymized"
            )
        rng = random.Random(self.seed)
        plan = self._attribute_plan(dataset, hierarchies)
        population = [
            self._random_chromosome(plan, rng) for _ in range(self.population_size)
        ]
        scores = [
            self._fitness(dataset, plan, hierarchies, member) for member in population
        ]

        def tournament_pick() -> _Chromosome:
            contenders = [
                rng.randrange(len(population)) for _ in range(self.tournament)
            ]
            winner = min(contenders, key=lambda i: scores[i])
            return population[winner]

        for _ in range(self.generations):
            # Stable sort: elitism ties resolve by population order in both
            # backends (np.argsort's default introsort is not stable).
            order = sorted(range(len(scores)), key=scores.__getitem__)
            next_population = [population[i].copy() for i in order[: self.elitism]]
            while len(next_population) < self.population_size:
                child = self._crossover(tournament_pick(), tournament_pick(), rng)
                self._mutate(child, plan, rng)
                next_population.append(child)
            population = next_population
            scores = [
                self._fitness(dataset, plan, hierarchies, member)
                for member in population
            ]

        best = population[min(range(len(scores)), key=scores.__getitem__)]
        return self._materialize(dataset, plan, best)

    def _materialize(
        self, dataset: Dataset, plan: list, chromosome: _Chromosome
    ) -> Anonymization:
        columns = self._decode_columns(dataset, plan, chromosome)
        qi_names = [attribute for attribute, _, _ in plan]
        keys = list(zip(*(columns[name] for name in qi_names)))
        counts: dict[Any, int] = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        suppressed = [
            row_index for row_index, key in enumerate(keys) if counts[key] < self.k
        ]
        qi_cells = []
        for row_index in range(len(dataset)):
            qi_cells.append({name: columns[name][row_index] for name in qi_names})
        anonymization = released_with_local_cells(
            dataset, qi_cells, suppressed=suppressed, name=self.name
        )
        if suppressed:
            # Re-release with the suppressed rows fully generalized.
            from ...hierarchy.base import SUPPRESSED

            for row_index in suppressed:
                qi_cells[row_index] = {name: SUPPRESSED for name in qi_names}
            anonymization = released_with_local_cells(
                dataset, qi_cells, suppressed=suppressed, name=self.name
            )
        return anonymization
