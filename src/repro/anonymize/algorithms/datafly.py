"""Sweeney's Datafly algorithm.

Datafly repeatedly generalizes (by one full hierarchy level) the
quasi-identifier with the most distinct values until the rows that still
violate k-anonymity fit within the suppression budget, then suppresses them.
A fast heuristic with no optimality guarantee — the classical baseline of
the comparative studies the paper discusses.
"""

from __future__ import annotations

from typing import Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ..engine import Anonymization
from .base import Anonymizer, RecodingWorkspace, check_k, check_suppression_limit


class Datafly(Anonymizer):
    """Datafly k-anonymizer.

    Parameters
    ----------
    k:
        The k-anonymity requirement.
    suppression_limit:
        Maximum fraction of rows that may be suppressed instead of
        generalizing further (Sweeney's default allows up to k rows; a
        fraction is the modern convention).
    """

    def __init__(self, k: int, suppression_limit: float = 0.02):
        self.k = check_k(k)
        self.suppression_limit = check_suppression_limit(suppression_limit)
        self.name = f"datafly[k={k}]"

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        workspace = RecodingWorkspace(dataset, hierarchies)
        lattice = workspace.lattice
        budget = int(self.suppression_limit * len(dataset))
        node = list(lattice.bottom)

        while workspace.violation_count(tuple(node), self.k) > budget:
            candidates = [
                position
                for position, name in enumerate(workspace.qi_names)
                if node[position] < workspace.hierarchies[name].height
            ]
            if not candidates:
                break
            # Generalize the attribute with the most distinct values at its
            # current level (Sweeney's heuristic).
            def distinct_count(position: int) -> int:
                name = workspace.qi_names[position]
                return workspace.distinct_count(name, node[position])

            chosen = max(candidates, key=distinct_count)
            node[chosen] += 1

        return workspace.apply(tuple(node), self.k, name=self.name)
