"""Mondrian multidimensional k-anonymity (LeFevre, DeWitt, Ramakrishnan).

Mondrian recursively partitions the data by median cuts on one
quasi-identifier at a time (the one with the widest normalized range in the
partition), stopping when no cut leaves both sides with at least k rows.
Each final partition is released with its attributes summarized: numeric
attributes by their closed min-max :class:`~repro.hierarchy.numeric.Span`,
categorical attributes by the frozenset of values present (or the raw value
when unique).  This is *local* recoding — the multidimensional flexibility
that lets Mondrian beat full-domain algorithms on utility.

Both the **strict** variant (median cut splits a sorted order, allowed only
if both sides have >= k rows) and the **relaxed** variant (rows equal to the
median are distributed to balance the halves) are provided.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...datasets.dataset import Dataset
from ...datasets.schema import AttributeKind
from ...hierarchy.base import Hierarchy
from ...hierarchy.numeric import Span
from ..engine import Anonymization, released_with_local_cells
from .base import Anonymizer, check_k


class Mondrian(Anonymizer):
    """Mondrian k-anonymizer.

    Parameters
    ----------
    k:
        The k-anonymity requirement.
    relaxed:
        Use relaxed multidimensional partitioning (ties at the median are
        split to balance partitions) instead of strict.
    l_diversity:
        Optional distinct-l requirement on ``sensitive_attribute``: a cut
        is allowed only if both sides keep at least ``l`` distinct
        sensitive values (the Mondrian l-diversity variant of
        Machanavajjhala et al. / LeFevre et al.).
    sensitive_attribute:
        Column the diversity requirement protects; defaults to the
        schema's sole sensitive attribute.
    """

    def __init__(
        self,
        k: int,
        relaxed: bool = False,
        l_diversity: int | None = None,
        sensitive_attribute: str | None = None,
    ):
        self.k = check_k(k)
        self.relaxed = relaxed
        if l_diversity is not None and l_diversity < 1:
            raise ValueError(f"l must be >= 1, got {l_diversity}")
        self.l_diversity = l_diversity
        self.sensitive_attribute = sensitive_attribute
        variant = "relaxed" if relaxed else "strict"
        suffix = f",l={l_diversity}" if l_diversity else ""
        self.name = f"mondrian-{variant}[k={k}{suffix}]"

    # -- partitioning ---------------------------------------------------------

    def _spread(
        self, dataset: Dataset, rows: Sequence[int], attribute: str, kind: AttributeKind
    ) -> float:
        """Normalized range of the attribute within the partition."""
        column = dataset.column(attribute)
        values = [column[r] for r in rows]
        if kind is AttributeKind.NUMERIC:
            full = dataset.column(attribute)
            full_range = max(full) - min(full)
            if full_range == 0:
                return 0.0
            return (max(values) - min(values)) / full_range
        distinct = len(set(values))
        total_distinct = len(dataset.distinct(attribute))
        if total_distinct <= 1:
            return 0.0
        return (distinct - 1) / (total_distinct - 1)

    def _split(
        self, dataset: Dataset, rows: list[int], attribute: str, kind: AttributeKind
    ) -> tuple[list[int], list[int]] | None:
        """Median cut of the partition on one attribute, or ``None`` if no
        allowable cut exists."""
        column = dataset.column(attribute)

        if kind is AttributeKind.NUMERIC:
            ordered = sorted(rows, key=lambda r: column[r])
        else:
            ordered = sorted(rows, key=lambda r: str(column[r]))

        if self.relaxed:
            middle = len(ordered) // 2
            left, right = ordered[:middle], ordered[middle:]
        else:
            # Strict: the cut must fall between two distinct values so that
            # equal values stay together.
            middle = len(ordered) // 2
            median_value = column[ordered[middle]]
            left = [r for r in ordered if self._before(column[r], median_value, kind)]
            right = [r for r in ordered if not self._before(column[r], median_value, kind)]
        if len(left) >= self.k and len(right) >= self.k:
            if self._diverse_enough(dataset, left) and self._diverse_enough(
                dataset, right
            ):
                return left, right
        return None

    def _sensitive_position(self, dataset: Dataset) -> int:
        from ...datasets.schema import SchemaError

        attribute = self.sensitive_attribute
        if attribute is None:
            names = dataset.schema.sensitive_names
            if len(names) != 1:
                raise SchemaError(
                    "dataset does not have exactly one sensitive attribute; "
                    "pass sensitive_attribute explicitly"
                )
            attribute = names[0]
        return dataset.schema.index_of(attribute)

    def _diverse_enough(self, dataset: Dataset, rows: Sequence[int]) -> bool:
        """Whether a candidate side meets the optional l-diversity floor."""
        if self.l_diversity is None:
            return True
        position = self._sensitive_position(dataset)
        distinct = set()
        for row in rows:
            distinct.add(dataset[row][position])
            if len(distinct) >= self.l_diversity:
                return True
        return False

    @staticmethod
    def _before(value: Any, pivot: Any, kind: AttributeKind) -> bool:
        if kind is AttributeKind.NUMERIC:
            return value < pivot
        return str(value) < str(pivot)

    def partitions(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy] | None = None
    ) -> list[list[int]]:
        """The final multidimensional partitions (row-index lists)."""
        schema = dataset.schema
        qi = [(a.name, a.kind) for a in schema.quasi_identifiers]
        finished: list[list[int]] = []
        pending: list[list[int]] = [list(range(len(dataset)))]
        while pending:
            rows = pending.pop()
            # Try attributes by decreasing spread until one admits a cut.
            by_spread = sorted(
                qi,
                key=lambda item: self._spread(dataset, rows, item[0], item[1]),
                reverse=True,
            )
            for attribute, kind in by_spread:
                cut = self._split(dataset, rows, attribute, kind)
                if cut is not None:
                    pending.extend(cut)
                    break
            else:
                finished.append(rows)
        return finished

    # -- release --------------------------------------------------------------

    def _summarize(
        self, dataset: Dataset, rows: Sequence[int], attribute: str, kind: AttributeKind
    ) -> Any:
        column = dataset.column(attribute)
        values = [column[r] for r in rows]
        if kind is AttributeKind.NUMERIC:
            low, high = min(values), max(values)
            return values[0] if low == high else Span(float(low), float(high))
        distinct = frozenset(values)
        if len(distinct) == 1:
            return values[0]
        return distinct

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy] | None = None
    ) -> Anonymization:
        """Anonymize; ``hierarchies`` are unused (accepted for protocol
        uniformity — Mondrian needs no generalization hierarchies)."""
        if len(dataset) < self.k:
            raise ValueError(
                f"dataset of {len(dataset)} rows cannot be {self.k}-anonymized"
            )
        schema = dataset.schema
        qi = [(a.name, a.kind) for a in schema.quasi_identifiers]
        qi_cells: list[dict[str, Any]] = [dict() for _ in range(len(dataset))]
        for rows in self.partitions(dataset):
            summary = {
                attribute: self._summarize(dataset, rows, attribute, kind)
                for attribute, kind in qi
            }
            for row_index in rows:
                qi_cells[row_index] = dict(summary)
        return released_with_local_cells(dataset, qi_cells, name=self.name)
