"""Shared infrastructure for disclosure control algorithms.

Provides the :class:`Anonymizer` protocol plus a :class:`RecodingWorkspace`
that memoizes per-(attribute, level) generalized columns and loss columns —
the frequency-set computations at the heart of every lattice search
(Samarati, Incognito, optimal) reduce to cheap tuple grouping over cached
columns.
"""

from __future__ import annotations

import abc
from typing import Hashable, Mapping, Sequence

import numpy as np

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ...hierarchy.lattice import Lattice, Node
from ..engine import Anonymization, AnonymizationError, recode_node


class AlgorithmError(ValueError):
    """Raised for invalid algorithm configurations."""


class Anonymizer(abc.ABC):
    """A disclosure control algorithm.

    Implementations are configured at construction (k, suppression budget,
    seeds, ...) and applied with :meth:`anonymize`.
    """

    name: str = "anonymizer"

    @abc.abstractmethod
    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        """Produce an anonymized release of ``dataset``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def check_k(k: int) -> int:
    """Validate a k-anonymity parameter."""
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    return k


def check_suppression_limit(limit: float) -> float:
    """Validate a suppression-fraction parameter."""
    if not 0.0 <= limit <= 1.0:
        raise AlgorithmError(f"suppression limit must be in [0,1], got {limit}")
    return limit


class RecodingWorkspace:
    """Cached full-domain recoding machinery for one dataset + hierarchies.

    Caches, per QI attribute and generalization level, the generalized
    column and the per-row loss column, so that evaluating thousands of
    lattice nodes costs one tuple-grouping pass each instead of repeated
    hierarchy walks.
    """

    def __init__(self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]):
        self.dataset = dataset
        self.qi_names = dataset.schema.quasi_identifier_names
        if not self.qi_names:
            raise AnonymizationError("dataset has no quasi-identifier attributes")
        missing = set(self.qi_names) - set(hierarchies)
        if missing:
            raise AnonymizationError(f"missing hierarchies for {sorted(missing)}")
        self.hierarchies = {name: hierarchies[name] for name in self.qi_names}
        self.lattice = Lattice([self.hierarchies[name] for name in self.qi_names])
        self._columns: dict[tuple[str, int], tuple[Hashable, ...]] = {}
        self._loss_columns: dict[tuple[str, int], tuple[float, ...]] = {}
        # Vectorized fast path: per (attribute, level), the column as dense
        # integer codes plus the code count — node-level grouping then
        # reduces to a mixed-radix combine + bincount.
        self._code_columns: dict[tuple[str, int], tuple[np.ndarray, int]] = {}

    def generalized_column(self, attribute: str, level: int) -> tuple[Hashable, ...]:
        """The attribute's column generalized to ``level`` (cached)."""
        key = (attribute, level)
        if key not in self._columns:
            hierarchy = self.hierarchies[attribute]
            self._columns[key] = tuple(
                hierarchy.generalize(value, level)
                for value in self.dataset.column(attribute)
            )
        return self._columns[key]

    def loss_column(self, attribute: str, level: int) -> tuple[float, ...]:
        """Per-row LM loss of the attribute at ``level`` (cached)."""
        key = (attribute, level)
        if key not in self._loss_columns:
            hierarchy = self.hierarchies[attribute]
            self._loss_columns[key] = tuple(
                hierarchy.loss(value, level)
                for value in self.dataset.column(attribute)
            )
        return self._loss_columns[key]

    def code_column(self, attribute: str, level: int) -> tuple[np.ndarray, int]:
        """The generalized column as dense integer codes plus code count
        (cached) — the vectorized grouping primitive."""
        key = (attribute, level)
        if key not in self._code_columns:
            column = self.generalized_column(attribute, level)
            lookup: dict[Hashable, int] = {}
            codes = np.empty(len(column), dtype=np.int64)
            for row_index, value in enumerate(column):
                code = lookup.get(value)
                if code is None:
                    code = len(lookup)
                    lookup[value] = code
                codes[row_index] = code
            self._code_columns[key] = (codes, len(lookup))
        return self._code_columns[key]

    def _row_group_codes(
        self, node: Node, names: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(per-row group code, per-group size) at ``node`` — one mixed-radix
        combine over cached code columns plus a bincount."""
        combined = None
        for name, level in zip(names, node):
            codes, count = self.code_column(name, level)
            if combined is None:
                combined = codes.copy()
            else:
                # Re-densify after each combine: keeps values < N·count, so
                # the mixed-radix product can never overflow int64.
                combined = combined * count + codes
                _, combined = np.unique(combined, return_inverse=True)
        if combined is None:
            raise AnonymizationError("grouping requires at least one attribute")
        _, dense = np.unique(combined, return_inverse=True)
        sizes = np.bincount(dense)
        return dense, sizes

    def group_sizes(
        self, node: Node, attributes: Sequence[str] | None = None
    ) -> dict[Hashable, int]:
        """Frequency set: generalized-QI-tuple -> row count at ``node``.

        ``attributes`` restricts the projection (Incognito's sub-lattices);
        ``node`` then gives levels for exactly those attributes, in order.
        """
        names = tuple(attributes) if attributes is not None else self.qi_names
        if len(node) != len(names):
            raise AnonymizationError(
                f"node {node!r} has {len(node)} levels for {len(names)} attributes"
            )
        columns = [
            self.generalized_column(name, level) for name, level in zip(names, node)
        ]
        counts: dict[Hashable, int] = {}
        for generalized in zip(*columns):
            counts[generalized] = counts.get(generalized, 0) + 1
        return counts

    def class_size_vector(
        self, node: Node, attributes: Sequence[str] | None = None
    ) -> np.ndarray:
        """Per-row equivalence class size at ``node`` (vectorized)."""
        names = tuple(attributes) if attributes is not None else self.qi_names
        self._check_node_arity(node, names)
        dense, sizes = self._row_group_codes(node, names)
        return sizes[dense]

    def _check_node_arity(self, node: Node, names: Sequence[str]) -> None:
        if len(node) != len(names):
            raise AnonymizationError(
                f"node {node!r} has {len(node)} levels for {len(names)} attributes"
            )

    def violating_rows(
        self, node: Node, k: int, attributes: Sequence[str] | None = None
    ) -> list[int]:
        """Rows in equivalence classes smaller than ``k`` at ``node``."""
        names = tuple(attributes) if attributes is not None else self.qi_names
        self._check_node_arity(node, names)
        per_row = self.class_size_vector(node, names)
        return np.flatnonzero(per_row < k).tolist()

    def violation_count(
        self, node: Node, k: int, attributes: Sequence[str] | None = None
    ) -> int:
        """Number of rows in classes smaller than ``k`` at ``node``."""
        names = tuple(attributes) if attributes is not None else self.qi_names
        self._check_node_arity(node, names)
        per_row = self.class_size_vector(node, names)
        return int(np.count_nonzero(per_row < k))

    def satisfies_k(
        self,
        node: Node,
        k: int,
        max_suppressed: int = 0,
        attributes: Sequence[str] | None = None,
    ) -> bool:
        """Whether ``node`` is k-anonymous after suppressing at most
        ``max_suppressed`` rows."""
        return self.violation_count(node, k, attributes) <= max_suppressed

    def node_loss(self, node: Node) -> float:
        """Total LM loss of the recoding at ``node`` (without suppression)."""
        return sum(
            sum(self.loss_column(name, level))
            for name, level in zip(self.qi_names, node)
        )

    def apply(self, node: Node, k: int, name: str | None = None) -> Anonymization:
        """Materialize the recoding at ``node``, suppressing classes < k."""
        suppress = self.violating_rows(node, k) if k > 1 else []
        return recode_node(
            self.dataset, self.hierarchies, node, suppress=suppress, name=name
        )
