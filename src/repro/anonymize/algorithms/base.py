"""Shared infrastructure for disclosure control algorithms.

Provides the :class:`Anonymizer` protocol plus a :class:`RecodingWorkspace`
running on the columnar plane: per QI attribute the column is interned once
(:meth:`Dataset.columns`) and a level table is built per hierarchy
(:mod:`repro.hierarchy.codes`), after which evaluating a lattice node is a
handful of array gathers.  Node partitions are cached and — when the level
tables are *nested* over the column domain — derived incrementally: a
coarser node's partition is computed from a cached finer one by re-keying
one representative row per class instead of re-grouping all rows, which is
what makes full-lattice walks (Samarati, Incognito, Datafly, the optimal
search) cheap at scale.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Any, Hashable, Mapping, Sequence

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ...hierarchy.codes import LevelTable, level_table
from ...hierarchy.lattice import Lattice, Node
from ...kernels import active as active_kernels
from ...obs import metrics as obs_metrics
from ..engine import Anonymization, AnonymizationError, recode_node


class AlgorithmError(ValueError):
    """Raised for invalid algorithm configurations."""


class Anonymizer(abc.ABC):
    """A disclosure control algorithm.

    Implementations are configured at construction (k, suppression budget,
    seeds, ...) and applied with :meth:`anonymize`.
    """

    name: str = "anonymizer"

    @abc.abstractmethod
    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        """Produce an anonymized release of ``dataset``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def check_k(k: int) -> int:
    """Validate a k-anonymity parameter."""
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    return k


def check_suppression_limit(limit: float) -> float:
    """Validate a suppression-fraction parameter."""
    if not 0.0 <= limit <= 1.0:
        raise AlgorithmError(f"suppression limit must be in [0,1], got {limit}")
    return limit


class _Partition:
    """One node's row partition: per-row labels, per-class sizes, and one
    representative row (the class's minimal row index) per class.

    All three are kernel arrays of the active backend (numpy ``ndarray``
    or ``array('q')``); labels follow the canonical sorted-rank numbering
    shared by both backends."""

    __slots__ = ("labels", "sizes", "reps", "group_count")

    def __init__(self, labels: Any, sizes: Any, reps: Any):
        self.labels = labels
        self.sizes = sizes
        self.reps = reps
        self.group_count = len(sizes)


class RecodingWorkspace:
    """Cached full-domain recoding machinery for one dataset + hierarchies.

    Caches, per QI attribute, the interned base codes and the hierarchy
    level tables, plus an LRU of recently evaluated node partitions; lattice
    walks evaluating neighbor nodes hit the incremental coarsening path
    instead of re-grouping every row.
    """

    #: Partitions kept per attribute projection (int64 labels cost 8·N
    #: bytes each; 32 nodes of a 30k-row table is ~7.7 MB).
    _PARTITION_CACHE_SIZE = 32

    def __init__(self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]):
        self.dataset = dataset
        self.qi_names = dataset.schema.quasi_identifier_names
        if not self.qi_names:
            raise AnonymizationError("dataset has no quasi-identifier attributes")
        missing = set(self.qi_names) - set(hierarchies)
        if missing:
            raise AnonymizationError(f"missing hierarchies for {sorted(missing)}")
        self.hierarchies = {name: hierarchies[name] for name in self.qi_names}
        self.lattice = Lattice([self.hierarchies[name] for name in self.qi_names])
        self._view = dataset.columns()
        self._kernels = active_kernels()
        self._tables: dict[str, LevelTable] = {}
        self._base_codes: dict[str, Any] = {}
        self._columns: dict[tuple[str, int], tuple[Hashable, ...]] = {}
        self._loss_columns: dict[tuple[str, int], tuple[float, ...]] = {}
        self._code_columns: dict[tuple[str, int], tuple[Any, int]] = {}
        self._partitions: dict[
            tuple[str, ...], OrderedDict[Node, _Partition]
        ] = {}
        #: Observable counters for tests/benchmarks: how many partitions
        #: were computed fresh, derived incrementally, served from cache,
        #: or dropped by the LRU bound.
        self.partition_stats = {"fresh": 0, "derived": 0, "hits": 0, "evictions": 0}

    def reset_stats(self) -> None:
        """Zero :attr:`partition_stats` (for per-study reporting).

        The cached partitions themselves are kept — only the counters
        reset, so two sequential studies sharing a workspace report
        independent counts instead of cumulative leakage.
        """
        for key in self.partition_stats:
            self.partition_stats[key] = 0

    # -- columnar primitives -------------------------------------------------

    def _table(self, attribute: str) -> LevelTable:
        table = self._tables.get(attribute)
        if table is None:
            table = level_table(
                self._view.column(attribute), self.hierarchies[attribute]
            )
            self._tables[attribute] = table
        return table

    def _base(self, attribute: str) -> Any:
        codes = self._base_codes.get(attribute)
        if codes is None:
            codes = self._kernels.from_code_buffer(
                self._view.column(attribute).codes
            )
            self._base_codes[attribute] = codes
        return codes

    def generalized_column(self, attribute: str, level: int) -> tuple[Hashable, ...]:
        """The attribute's column generalized to ``level`` (cached)."""
        key = (attribute, level)
        if key not in self._columns:
            built = self._table(attribute).level(level)
            values = built.values
            self._columns[key] = tuple(
                values[code] for code in self._view.column(attribute).codes
            )
        return self._columns[key]

    def loss_column(self, attribute: str, level: int) -> tuple[float, ...]:
        """Per-row LM loss of the attribute at ``level`` (cached)."""
        key = (attribute, level)
        if key not in self._loss_columns:
            built = self._table(attribute).level(level)
            loss = built.loss
            self._loss_columns[key] = tuple(
                loss[code] for code in self._view.column(attribute).codes
            )
        return self._loss_columns[key]

    def code_column(self, attribute: str, level: int) -> tuple[Any, int]:
        """The generalized column as dense integer codes plus code count
        (cached) — one gather through the level table."""
        key = (attribute, level)
        if key not in self._code_columns:
            built = self._table(attribute).level(level)
            codes = self._kernels.gather(built.gather, self._base(attribute))
            self._code_columns[key] = (codes, built.count)
        return self._code_columns[key]

    def distinct_count(self, attribute: str, level: int) -> int:
        """Distinct released values of the column at ``level`` (O(1) —
        every base code occurs in the column, so this is the level-table
        code count).  Sweeney's Datafly heuristic reads this per node."""
        return self._table(attribute).level(level).count

    # -- node partitions -----------------------------------------------------

    def partition(
        self, node: Node, attributes: Sequence[str] | None = None
    ) -> _Partition:
        """The row partition at ``node`` (cached; derived incrementally
        from a cached finer node when the level tables allow it)."""
        names = tuple(attributes) if attributes is not None else self.qi_names
        self._check_node_arity(node, names)
        node = tuple(node)
        cache = self._partitions.setdefault(names, OrderedDict())
        cached = cache.get(node)
        if cached is not None:
            cache.move_to_end(node)
            self.partition_stats["hits"] += 1
            obs_metrics().inc("workspace.partition.hit")
            return cached
        partition = self._derive_partition(node, names, cache)
        if partition is None:
            partition = self._fresh_partition(node, names)
            self.partition_stats["fresh"] += 1
            obs_metrics().inc("workspace.partition.fresh")
        else:
            self.partition_stats["derived"] += 1
            obs_metrics().inc("workspace.partition.derived")
        cache[node] = partition
        if len(cache) > self._PARTITION_CACHE_SIZE:
            cache.popitem(last=False)
            self.partition_stats["evictions"] += 1
            obs_metrics().inc("workspace.partition.evict")
        return partition

    def _fresh_partition(self, node: Node, names: tuple[str, ...]) -> _Partition:
        kernels = self._kernels
        combined: Any = None
        for name, level in zip(names, node):
            built = self._table(name).level(level)
            codes = kernels.gather(built.gather, self._base(name))
            if combined is None:
                combined = codes
            else:
                # pack() re-densifies after each combine: keeps values
                # < N·count, so the mixed-radix product can never overflow
                # int64.
                combined = kernels.pack(combined, built.count, codes)
        if combined is None:
            raise AnonymizationError("grouping requires at least one attribute")
        reps, labels, count = kernels.group(combined)
        return _Partition(labels, kernels.bincount(labels, count), reps)

    def _derive_partition(
        self,
        node: Node,
        names: tuple[str, ...],
        cache: "OrderedDict[Node, _Partition]",
    ) -> _Partition | None:
        """Coarsen the best cached finer partition, if any is usable.

        A cached node is usable when it is dominated by ``node`` (every
        attribute at most as generalized) and every attribute whose level
        increases has a *nested* level table over the column domain —
        otherwise equal classes at the finer node need not merge cleanly
        and the derivation would be wrong (see ``LevelTable.nested``).
        """
        best: tuple[Node, _Partition] | None = None
        for cached_node, cached_partition in cache.items():
            if not all(c <= n for c, n in zip(cached_node, node)):
                continue
            usable = all(
                c == n or self._table(name).nested()
                for name, c, n in zip(names, cached_node, node)
            )
            if not usable:
                continue
            if best is None or cached_partition.group_count < best[1].group_count:
                best = (cached_node, cached_partition)
        if best is None:
            return None
        kernels = self._kernels
        parent = best[1]
        # Re-key one representative row per parent class at the new node.
        combined: Any = None
        rep_rows = parent.reps
        for name, level in zip(names, node):
            built = self._table(name).level(level)
            rep_base = kernels.gather(self._base(name), rep_rows)
            codes = kernels.gather(built.gather, rep_base)
            if combined is None:
                combined = codes
            else:
                combined = kernels.pack(combined, built.count, codes)
        if combined is None:
            raise AnonymizationError("grouping requires at least one attribute")
        child_of_group, count = kernels.densify(combined)
        labels = kernels.gather(child_of_group, parent.labels)
        sizes = kernels.fold_add(child_of_group, parent.sizes, count)
        reps = kernels.fold_min(
            child_of_group, parent.reps, count, fill=len(self.dataset)
        )
        return _Partition(labels, sizes, reps)

    # -- frequency sets ------------------------------------------------------

    def group_sizes(
        self, node: Node, attributes: Sequence[str] | None = None
    ) -> dict[Hashable, int]:
        """Frequency set: generalized-QI-tuple -> row count at ``node``.

        ``attributes`` restricts the projection (Incognito's sub-lattices);
        ``node`` then gives levels for exactly those attributes, in order.
        Keys are decoded from one representative row per class; dict order
        is first occurrence in row order, as the row plane produced.
        """
        names = tuple(attributes) if attributes is not None else self.qi_names
        partition = self.partition(node, names)
        levels = [self._table(name).level(level) for name, level in zip(names, node)]
        bases = [self._base(name) for name in names]
        counts: dict[Hashable, int] = {}
        for group in self._kernels.argsort(partition.reps):
            row = partition.reps[group]
            key = tuple(
                built.values[base[row]] for built, base in zip(levels, bases)
            )
            counts[key] = int(partition.sizes[group])
        return counts

    def class_size_vector(
        self, node: Node, attributes: Sequence[str] | None = None
    ) -> Any:
        """Per-row equivalence class size at ``node`` (a kernel array)."""
        names = tuple(attributes) if attributes is not None else self.qi_names
        partition = self.partition(node, names)
        return self._kernels.gather(partition.sizes, partition.labels)

    def _check_node_arity(self, node: Node, names: Sequence[str]) -> None:
        if len(node) != len(names):
            raise AnonymizationError(
                f"node {node!r} has {len(node)} levels for {len(names)} attributes"
            )

    def violating_rows(
        self, node: Node, k: int, attributes: Sequence[str] | None = None
    ) -> list[int]:
        """Rows in equivalence classes smaller than ``k`` at ``node``."""
        names = tuple(attributes) if attributes is not None else self.qi_names
        self._check_node_arity(node, names)
        per_row = self.class_size_vector(node, names)
        return self._kernels.flatnonzero_less(per_row, k)

    def violation_count(
        self, node: Node, k: int, attributes: Sequence[str] | None = None
    ) -> int:
        """Number of rows in classes smaller than ``k`` at ``node``."""
        names = tuple(attributes) if attributes is not None else self.qi_names
        self._check_node_arity(node, names)
        per_row = self.class_size_vector(node, names)
        return self._kernels.count_less(per_row, k)

    def satisfies_k(
        self,
        node: Node,
        k: int,
        max_suppressed: int = 0,
        attributes: Sequence[str] | None = None,
    ) -> bool:
        """Whether ``node`` is k-anonymous after suppressing at most
        ``max_suppressed`` rows."""
        return self.violation_count(node, k, attributes) <= max_suppressed

    def node_loss(self, node: Node) -> float:
        """Total LM loss of the recoding at ``node`` (without suppression)."""
        return sum(
            sum(self.loss_column(name, level))
            for name, level in zip(self.qi_names, node)
        )

    def apply(self, node: Node, k: int, name: str | None = None) -> Anonymization:
        """Materialize the recoding at ``node``, suppressing classes < k."""
        suppress = self.violating_rows(node, k) if k > 1 else []
        return recode_node(
            self.dataset, self.hierarchies, node, suppress=suppress, name=name
        )
