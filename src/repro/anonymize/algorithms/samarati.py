"""Samarati's binary search for k-minimal full-domain generalizations.

k-anonymity (with a fixed suppression budget) is monotone in lattice height:
if some node at height h satisfies it, some node at every greater height
does too (its ancestors).  Samarati's algorithm binary-searches the height
for the lowest stratum containing a satisfying node; all satisfying nodes at
that height are *k-minimal generalizations*, among which one is picked by a
preference rule — here, minimum total loss (LM), the "preference information
provided by the data recipient" of the original paper.
"""

from __future__ import annotations

from typing import Mapping

from ...datasets.dataset import Dataset
from ...hierarchy.base import Hierarchy
from ...hierarchy.lattice import Node
from ..engine import Anonymization
from .base import (
    AlgorithmError,
    Anonymizer,
    RecodingWorkspace,
    check_k,
    check_suppression_limit,
)


class Samarati(Anonymizer):
    """Samarati k-anonymizer.

    Parameters
    ----------
    k:
        The k-anonymity requirement.
    suppression_limit:
        Maximum fraction of rows that may be suppressed.
    """

    def __init__(self, k: int, suppression_limit: float = 0.02):
        self.k = check_k(k)
        self.suppression_limit = check_suppression_limit(suppression_limit)
        self.name = f"samarati[k={k}]"

    def minimal_height(self, workspace: RecodingWorkspace) -> int:
        """Lowest lattice height containing a satisfying node."""
        budget = int(self.suppression_limit * len(workspace.dataset))
        lattice = workspace.lattice

        def satisfiable_at(height: int) -> bool:
            return any(
                workspace.satisfies_k(node, self.k, budget)
                for node in lattice.nodes_at_height(height)
            )

        if not satisfiable_at(lattice.max_height):
            raise AlgorithmError(
                f"no generalization satisfies k={self.k} within the "
                f"suppression budget, even at the lattice top"
            )
        low, high = 0, lattice.max_height
        while low < high:
            middle = (low + high) // 2
            if satisfiable_at(middle):
                high = middle
            else:
                low = middle + 1
        return low

    def k_minimal_nodes(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> list[Node]:
        """All satisfying nodes at the minimal height (k-minimal
        generalizations)."""
        workspace = RecodingWorkspace(dataset, hierarchies)
        return self._k_minimal_nodes(workspace)

    def _k_minimal_nodes(self, workspace: RecodingWorkspace) -> list[Node]:
        budget = int(self.suppression_limit * len(workspace.dataset))
        height = self.minimal_height(workspace)
        return [
            node
            for node in workspace.lattice.nodes_at_height(height)
            if workspace.satisfies_k(node, self.k, budget)
        ]

    def anonymize(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> Anonymization:
        workspace = RecodingWorkspace(dataset, hierarchies)
        nodes = self._k_minimal_nodes(workspace)
        chosen = min(nodes, key=workspace.node_loss)
        return workspace.apply(chosen, self.k, name=self.name)
