"""Equivalence classes of an anonymized data set.

An equivalence class is a maximal set of rows sharing the same generalized
quasi-identifier tuple.  Class sizes are the raw material of the paper's
running privacy property ("size of the equivalence class to which a tuple
belongs", Section 3).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence


class EquivalenceClasses:
    """Partition of row indices by generalized QI tuple.

    Parameters
    ----------
    keys:
        One hashable grouping key per row (typically the generalized QI
        tuple), in row order.
    """

    __slots__ = ("_classes", "_class_of", "_keys")

    def __init__(self, keys: Sequence[Hashable]):
        groups: dict[Hashable, list[int]] = {}
        for row_index, key in enumerate(keys):
            groups.setdefault(key, []).append(row_index)
        # Classes ordered by first occurrence, members in row order.
        self._classes: tuple[tuple[int, ...], ...] = tuple(
            tuple(members) for members in groups.values()
        )
        self._keys: tuple[Hashable, ...] = tuple(groups.keys())
        class_of = [0] * len(keys)
        for class_index, members in enumerate(self._classes):
            for row_index in members:
                class_of[row_index] = class_index
        self._class_of: tuple[int, ...] = tuple(class_of)

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self._classes)

    def __getitem__(self, class_index: int) -> tuple[int, ...]:
        return self._classes[class_index]

    @property
    def row_count(self) -> int:
        """Number of rows in the partitioned data set."""
        return len(self._class_of)

    def key_of_class(self, class_index: int) -> Hashable:
        """The shared generalized QI tuple of a class."""
        return self._keys[class_index]

    def class_of(self, row_index: int) -> int:
        """Index of the class containing the row."""
        return self._class_of[row_index]

    def members_of(self, row_index: int) -> tuple[int, ...]:
        """All rows in the same class as ``row_index`` (including itself)."""
        return self._classes[self._class_of[row_index]]

    def size_of(self, row_index: int) -> int:
        """Size of the class containing the row."""
        return len(self.members_of(row_index))

    def sizes(self) -> list[int]:
        """Per-row class sizes, in row order — the paper's equivalence class
        size property vector."""
        return [len(self._classes[c]) for c in self._class_of]

    def class_sizes(self) -> list[int]:
        """Per-class sizes, in class order."""
        return [len(members) for members in self._classes]

    def minimum_size(self) -> int:
        """The k of k-anonymity: size of the smallest class."""
        if not self._classes:
            return 0
        return min(len(members) for members in self._classes)

    def value_counts(
        self, values: Sequence[Any]
    ) -> list[dict[Any, int]]:
        """Per-class histograms of a column's values (for diversity models).

        ``values`` is the full column in row order; returns one value->count
        dict per class, in class order.
        """
        if len(values) != self.row_count:
            raise ValueError(
                f"expected {self.row_count} values, got {len(values)}"
            )
        histograms: list[dict[Any, int]] = []
        for members in self._classes:
            counts: dict[Any, int] = {}
            for row_index in members:
                value = values[row_index]
                counts[value] = counts.get(value, 0) + 1
            histograms.append(counts)
        return histograms

    def sensitive_value_counts(self, values: Sequence[Any]) -> list[int]:
        """Per-row count of the row's own sensitive value within its class —
        the property underlying l-diversity in Section 3 of the paper."""
        histograms = self.value_counts(values)
        return [
            histograms[self._class_of[row_index]][values[row_index]]
            for row_index in range(self.row_count)
        ]
