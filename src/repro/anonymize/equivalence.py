"""Equivalence classes of an anonymized data set.

An equivalence class is a maximal set of rows sharing the same generalized
quasi-identifier tuple.  Class sizes are the raw material of the paper's
running privacy property ("size of the equivalence class to which a tuple
belongs", Section 3).

Two construction paths exist:

* the row plane passes one hashable key per row (the generalized QI tuple);
* the columnar plane passes precomputed integer group labels via
  :meth:`EquivalenceClasses.from_labels`, resolving the human-facing class
  keys lazily from one representative row per class.

Both yield the identical partition contract: classes ordered by first
occurrence, members in row order.  Per-column histograms
(:meth:`value_counts`) are memoized by column identity, so repeated
l-diversity / t-closeness measurements over the same release don't redo
the grouping — :meth:`~repro.datasets.dataset.Dataset.column` returns a
memoized tuple precisely so that this cache can hit.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Sequence


class EquivalenceClasses:
    """Partition of row indices by generalized QI tuple.

    Parameters
    ----------
    keys:
        One hashable grouping key per row (typically the generalized QI
        tuple), in row order.
    """

    __slots__ = (
        "_classes",
        "_class_of",
        "_keys",
        "_sizes",
        "_class_sizes",
        "_minimum",
        "_histogram_cache",
    )

    def __init__(self, keys: Sequence[Hashable]):
        groups: dict[Hashable, list[int]] = {}
        for row_index, key in enumerate(keys):
            groups.setdefault(key, []).append(row_index)
        # Classes ordered by first occurrence, members in row order.
        self._init_from_groups(
            tuple(tuple(members) for members in groups.values()),
            len(keys),
            tuple(groups.keys()),
        )

    @classmethod
    def from_labels(
        cls,
        labels: Sequence[int],
        key_of_row: Callable[[int], Hashable] | None = None,
    ) -> "EquivalenceClasses":
        """Build the partition from precomputed group labels.

        ``labels`` is one hashable group label per row (the columnar
        plane's packed mixed-radix codes); rows with equal labels share a
        class.  ``key_of_row`` maps a representative row index to the
        class's public key (the generalized QI tuple) — resolved once per
        class, from its first member, so label grouping never has to
        materialize row tuples.  Without it the labels themselves serve as
        keys.
        """
        groups: dict[int, list[int]] = {}
        for row_index, label in enumerate(labels):
            groups.setdefault(label, []).append(row_index)
        classes = tuple(tuple(members) for members in groups.values())
        if key_of_row is None:
            keys: tuple[Hashable, ...] = tuple(groups.keys())
        else:
            keys = tuple(key_of_row(members[0]) for members in classes)
        instance = cls.__new__(cls)
        instance._init_from_groups(classes, len(labels), keys)
        return instance

    def _init_from_groups(
        self,
        classes: tuple[tuple[int, ...], ...],
        row_count: int,
        keys: tuple[Hashable, ...],
    ) -> None:
        self._classes = classes
        self._keys = keys
        class_of = [0] * row_count
        for class_index, members in enumerate(classes):
            for row_index in members:
                class_of[row_index] = class_index
        self._class_of: tuple[int, ...] = tuple(class_of)
        self._sizes: list[int] | None = None
        self._class_sizes: list[int] | None = None
        self._minimum: int | None = None
        # Per-column histogram memo: id(column) -> (column ref, histograms).
        # The column reference is stored so its id cannot be recycled.
        self._histogram_cache: dict[int, tuple[Sequence[Any], list[dict[Any, int]]]] = {}

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self._classes)

    def __getitem__(self, class_index: int) -> tuple[int, ...]:
        return self._classes[class_index]

    @property
    def row_count(self) -> int:
        """Number of rows in the partitioned data set."""
        return len(self._class_of)

    def key_of_class(self, class_index: int) -> Hashable:
        """The shared generalized QI tuple of a class."""
        return self._keys[class_index]

    def class_of(self, row_index: int) -> int:
        """Index of the class containing the row."""
        return self._class_of[row_index]

    def members_of(self, row_index: int) -> tuple[int, ...]:
        """All rows in the same class as ``row_index`` (including itself)."""
        return self._classes[self._class_of[row_index]]

    def size_of(self, row_index: int) -> int:
        """Size of the class containing the row."""
        return len(self.members_of(row_index))

    def sizes(self) -> list[int]:
        """Per-row class sizes, in row order — the paper's equivalence class
        size property vector."""
        if self._sizes is None:
            per_class = self.class_sizes()
            self._sizes = [per_class[c] for c in self._class_of]
        return list(self._sizes)

    def class_sizes(self) -> list[int]:
        """Per-class sizes, in class order."""
        if self._class_sizes is None:
            self._class_sizes = [len(members) for members in self._classes]
        return list(self._class_sizes)

    def minimum_size(self) -> int:
        """The k of k-anonymity: size of the smallest class."""
        if not self._classes:
            return 0
        if self._minimum is None:
            self._minimum = min(self.class_sizes())
        return self._minimum

    def value_counts(
        self, values: Sequence[Any]
    ) -> list[dict[Any, int]]:
        """Per-class histograms of a column's values (for diversity models).

        ``values`` is the full column in row order; returns one value->count
        dict per class, in class order.  Histograms are memoized per column
        *identity* (``Dataset.column`` returns a memoized tuple, so every
        consumer of the same release shares one grouping pass); the dicts
        are shared — callers must not mutate them.
        """
        if len(values) != self.row_count:
            raise ValueError(
                f"expected {self.row_count} values, got {len(values)}"
            )
        cached = self._histogram_cache.get(id(values))
        if cached is not None and cached[0] is values:
            return cached[1]
        histograms = self._kernel_histograms(values)
        if histograms is None:
            histograms = []
            for members in self._classes:
                counts: dict[Any, int] = {}
                for row_index in members:
                    value = values[row_index]
                    counts[value] = counts.get(value, 0) + 1
                histograms.append(counts)
        self._histogram_cache[id(values)] = (values, histograms)
        return histograms

    def _kernel_histograms(
        self, values: Sequence[Any]
    ) -> list[dict[Any, int]] | None:
        """Vectorized histogram pass, when the kernel backend offers one.

        Interns the column once, then groups ``(class, code)`` pairs in a
        single kernel pass.  Pairs come back in first-occurrence-within-
        class order — the same dict insertion order the row loop above
        produces, which order-sensitive float consumers (entropy
        l-diversity iterates ``histogram.values()``) rely on.  Returns
        ``None`` when the backend declines (pure-python backend, or a
        column outside the vectorizable dtypes).
        """
        from ..kernels import active as active_kernels

        kernels = active_kernels()
        interned = kernels.intern(tuple(values) if not isinstance(values, tuple) else values)
        if interned is None:
            return None
        codes, decode = interned
        class_of = kernels.asarray(self._class_of)
        grouped = kernels.grouped_value_counts(
            class_of, len(self._classes), kernels.from_code_buffer(codes)
        )
        return [
            {decode[code]: count for code, count in per_class}
            for per_class in grouped
        ]

    def sensitive_value_counts(self, values: Sequence[Any]) -> list[int]:
        """Per-row count of the row's own sensitive value within its class —
        the property underlying l-diversity in Section 3 of the paper."""
        histograms = self.value_counts(values)
        return [
            histograms[self._class_of[row_index]][values[row_index]]
            for row_index in range(self.row_count)
        ]
