"""Release provenance: persisting what an anonymization did.

A released CSV alone does not record *how* it was produced.  The sidecar
written here captures the provenance needed to audit or reproduce a
release: producing algorithm label, full-domain levels (when applicable),
suppressed row indices, achieved k, and basic shape — as JSON next to the
data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..datasets.dataset import Dataset
from ..datasets.io import read_csv, write_csv
from .engine import Anonymization, AnonymizationError


def provenance_record(anonymization: Anonymization) -> dict[str, Any]:
    """The JSON-compatible provenance dict of a release."""
    return {
        "name": anonymization.name,
        "rows": len(anonymization),
        "quasi_identifiers": list(
            anonymization.original.schema.quasi_identifier_names
        ),
        "levels": anonymization.levels,
        "suppressed": sorted(anonymization.suppressed),
        "k_achieved": anonymization.k(),
        "suppression_fraction": anonymization.suppression_fraction(),
    }


def write_release(
    anonymization: Anonymization, data_path: str | Path
) -> Path:
    """Write the released table as CSV plus a ``.provenance.json`` sidecar.

    Returns the sidecar path.
    """
    # Late import: this module loads from the anonymize package init, and
    # repro.utility's package init re-enters the engine's import chain.
    from ..utility.atomic import atomic_writer

    data_path = Path(data_path)
    write_csv(anonymization.released, data_path)
    sidecar = data_path.with_suffix(data_path.suffix + ".provenance.json")
    with atomic_writer(sidecar, "w", encoding="utf-8") as handle:
        json.dump(provenance_record(anonymization), handle, indent=2)
    return sidecar


def read_release(
    data_path: str | Path, original: Dataset
) -> Anonymization:
    """Rebuild an :class:`Anonymization` from a CSV + sidecar pair.

    ``original`` must be the raw table the release was produced from; the
    sidecar's shape and QI list are validated against it.
    """
    data_path = Path(data_path)
    sidecar = data_path.with_suffix(data_path.suffix + ".provenance.json")
    if not sidecar.exists():
        raise AnonymizationError(f"missing provenance sidecar {sidecar}")
    with open(sidecar) as handle:
        record = json.load(handle)
    released = read_csv(data_path, original.schema)
    if record["rows"] != len(original):
        raise AnonymizationError(
            f"provenance records {record['rows']} rows, original has "
            f"{len(original)}"
        )
    expected_qi = list(original.schema.quasi_identifier_names)
    if record["quasi_identifiers"] != expected_qi:
        raise AnonymizationError(
            f"provenance QI list {record['quasi_identifiers']} does not "
            f"match schema {expected_qi}"
        )
    return Anonymization(
        original,
        released,
        suppressed=record["suppressed"],
        levels=record["levels"],
        name=record["name"],
    )
