"""Anonymization engine, equivalence classes and disclosure control algorithms."""

from .engine import (
    Anonymization,
    AnonymizationError,
    recode,
    recode_node,
    released_with_local_cells,
)
from .equivalence import EquivalenceClasses
from .provenance import provenance_record, read_release, write_release

__all__ = [
    "Anonymization",
    "AnonymizationError",
    "recode",
    "recode_node",
    "released_with_local_cells",
    "EquivalenceClasses",
    "provenance_record",
    "read_release",
    "write_release",
]
