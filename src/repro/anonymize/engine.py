"""Recoding engine and the :class:`Anonymization` result object.

Two recoding styles are supported:

* **full-domain recoding** — every value of an attribute is generalized to the
  same hierarchy level (Datafly, Samarati, Incognito, the optimal search, GA);
* **local recoding** — produced cell-by-cell by algorithms such as Mondrian;
  the engine accepts any released table whose rows align with the original.

Suppressed tuples are *retained* with all quasi-identifiers replaced by the
suppression token, per Section 3 of the paper ("we assume that they still
exist in the anonymized data set in an overly generalized form"), so original
and released data sets always have equal size and property vectors stay
index-aligned.

Since the columnar refactor, :func:`recode` runs on the columnar plane: each
QI column is interned once (:meth:`Dataset.columns`), generalization is a
gather through the per-(hierarchy, column) level tables of
:mod:`repro.hierarchy.codes`, and the equivalence-class partition is grouped
by mixed-radix-packed integer codes instead of tuple keys.  Suppression goes
through the same path — a suppressed row's per-column code is the gather to
the suppression token's code at the level (:meth:`LevelTable.
suppression_code`), so suppressed rows collide exactly with naturally
fully-generalized rows and ``suppression_fraction`` / class sizes agree
between planes.  :func:`recode_rowwise` keeps the original row-at-a-time
implementation as the reference facade; both produce byte-identical results
(pinned by ``tests/test_golden_plane.py`` and the Hypothesis equivalence
tests).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from ..datasets.dataset import Dataset
from ..hierarchy.base import SUPPRESSED, Hierarchy
from ..hierarchy.codes import Level, LevelTable, level_table
from ..kernels import active as active_kernels
from ..lint.api import ensure_valid_hierarchies
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from .equivalence import EquivalenceClasses

Levels = Mapping[str, int]


class AnonymizationError(ValueError):
    """Raised for inconsistent anonymization inputs."""


class Anonymization:
    """An anonymized release of a data set.

    Wraps the original and released tables (equal length, aligned rows) plus
    provenance: which rows were suppressed, which algorithm produced it, and —
    for full-domain recodings — the hierarchy level vector used.

    Parameters
    ----------
    original:
        The raw microdata.
    released:
        The generalized table; same schema shape and row count as the
        original, same values for non-QI columns.
    suppressed:
        Row indices whose QI values were fully suppressed.
    levels:
        Per-attribute hierarchy levels for full-domain recodings (``None``
        for local recodings).
    name:
        Label used in reports (e.g. ``"T3a"`` or ``"mondrian[k=5]"``).
    """

    def __init__(
        self,
        original: Dataset,
        released: Dataset,
        suppressed: Iterable[int] = (),
        levels: Levels | None = None,
        name: str = "anonymization",
    ):
        if len(original) != len(released):
            raise AnonymizationError(
                f"released table has {len(released)} rows, original has {len(original)}"
            )
        if original.schema.names != released.schema.names:
            raise AnonymizationError("released schema must match original schema")
        self.original = original
        self.released = released
        self.suppressed = frozenset(suppressed)
        out_of_range = [i for i in self.suppressed if not 0 <= i < len(original)]
        if out_of_range:
            raise AnonymizationError(f"suppressed indices out of range: {out_of_range}")
        self.levels = dict(levels) if levels is not None else None
        self.name = name
        self._classes: EquivalenceClasses | None = None
        # Optional columnar-plane partition factory, attached by recode();
        # consulted once by `equivalence_classes` instead of tuple grouping.
        self._classes_factory: Callable[[], EquivalenceClasses] | None = None

    def __len__(self) -> int:
        return len(self.original)

    def __getstate__(self) -> dict[str, Any]:
        # The columnar partition factory is a closure over level tables and
        # cannot cross process boundaries; drop it (and the classes it may
        # have produced, so both sides rebuild identically).  The row-plane
        # fallback in `equivalence_classes` yields the same partition.
        state = self.__dict__.copy()
        state["_classes"] = None
        state["_classes_factory"] = None
        return state

    def __repr__(self) -> str:
        return (
            f"Anonymization({self.name!r}, rows={len(self)}, "
            f"suppressed={len(self.suppressed)}, levels={self.levels})"
        )

    @property
    def equivalence_classes(self) -> EquivalenceClasses:
        """Row partition by released QI tuple (lazily computed, cached)."""
        if self._classes is None:
            if self._classes_factory is not None:
                self._classes = self._classes_factory()
            else:
                self._classes = EquivalenceClasses(
                    self.released.quasi_identifier_tuples()
                )
        return self._classes

    def k(self) -> int:
        """The k-anonymity level actually achieved (minimum class size)."""
        return self.equivalence_classes.minimum_size()

    def suppression_fraction(self) -> float:
        """Fraction of tuples suppressed."""
        if not len(self):
            return 0.0
        return len(self.suppressed) / len(self)

    def renamed(self, name: str) -> "Anonymization":
        """A shallow copy with a different report label."""
        clone = Anonymization(
            self.original, self.released, self.suppressed, self.levels, name
        )
        clone._classes = self._classes
        clone._classes_factory = self._classes_factory
        return clone


def resolve_sensitive_column(
    anonymization: Anonymization, attribute: str | None
) -> tuple[str, tuple[Any, ...]]:
    """Resolve a sensitive column (raw values, pre-anonymization).

    With ``attribute=None`` the schema must declare exactly one sensitive
    attribute; otherwise the named column is used.  Shared by the privacy
    models, property extractors, attacks and classification metric.
    """
    from ..datasets.schema import SchemaError

    schema = anonymization.original.schema
    if attribute is None:
        names = schema.sensitive_names
        if len(names) != 1:
            raise SchemaError(
                "dataset does not have exactly one sensitive attribute; "
                f"pass one of {schema.names} explicitly"
            )
        attribute = names[0]
    return attribute, anonymization.original.column(attribute)


def generalize_cell(
    hierarchy: Hierarchy, value: Any, level: int
) -> Any:
    """Generalize one cell; kept as a function hook for local recoders."""
    return hierarchy.generalize(value, level)


def _validate_recode(
    dataset: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    levels: Levels,
) -> tuple[str, ...]:
    """Shared input validation of both recoding planes; returns QI names."""
    schema = dataset.schema
    qi_names = schema.quasi_identifier_names
    if not qi_names:
        raise AnonymizationError("dataset has no quasi-identifier attributes")
    missing = set(qi_names) - set(hierarchies)
    if missing:
        raise AnonymizationError(f"missing hierarchies for {sorted(missing)}")
    missing_levels = set(qi_names) - set(levels)
    if missing_levels:
        raise AnonymizationError(f"missing levels for {sorted(missing_levels)}")
    # Static artifact gate: a hierarchy with a broken generalization chain
    # or non-monotone levels would recode *wrongly*, not loudly — refuse
    # up front (memoized per hierarchy object, so lattice searches pay
    # this once).  Raises repro.lint.LintError with the diagnostics.
    ensure_valid_hierarchies(
        {attribute: hierarchies[attribute] for attribute in qi_names}
    )
    for attribute in qi_names:
        hierarchies[attribute].check_level(levels[attribute])
    return qi_names


def packed_group_labels(
    columns: Sequence[tuple[Any, Level, LevelTable, int]],
    suppressed_rows: Any = None,
) -> Any:
    """Per-row group labels from per-column code gathers (mixed-radix).

    ``columns`` holds ``(base_codes, level_tables_level, table, level)`` per
    QI attribute; each column contributes ``gather[base]`` (with suppressed
    rows redirected to the level's suppression code), packed into one
    integer per row.  The running product is re-densified after every
    column so the packing can never overflow ``int64``.  All array work
    runs on the active kernel backend (:mod:`repro.kernels`); the returned
    labels are a kernel array.
    """
    kernels = active_kernels()
    combined: Any = None
    for base_codes, built, table, level in columns:
        codes = kernels.gather(built.gather, base_codes)
        if suppressed_rows is not None and len(suppressed_rows):
            suppression_code, radix = table.suppression_code(level)
            kernels.scatter_fill(codes, suppressed_rows, suppression_code)
        else:
            radix = built.count
        if combined is None:
            combined = codes
        else:
            combined = kernels.pack(combined, radix, codes)
    if combined is None:
        raise AnonymizationError("grouping requires at least one attribute")
    return combined


def recode(
    dataset: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    levels: Levels,
    suppress: Iterable[int] = (),
    name: str | None = None,
) -> Anonymization:
    """Apply a full-domain recoding (columnar plane).

    Parameters
    ----------
    dataset:
        The table to anonymize.
    hierarchies:
        Hierarchy per quasi-identifier attribute name; every QI of the schema
        must be covered.
    levels:
        Generalization level per QI attribute.
    suppress:
        Row indices to fully suppress (all QI cells become ``"*"``).
    name:
        Optional label; defaults to a description of the level vector.
    """
    schema = dataset.schema
    qi_names = _validate_recode(dataset, hierarchies, levels)
    suppressed = frozenset(suppress)
    obs_metrics().inc("engine.recode.calls")
    obs_metrics().inc("engine.recode.rows", len(dataset))

    with obs_tracer().span(
        "recode",
        category="engine",
        rows=len(dataset),
        attributes=len(qi_names),
        suppressed=len(suppressed),
    ):
        kernels = active_kernels()
        view = dataset.columns()
        per_attribute: list[tuple[Any, Level, LevelTable, int]] = []
        released_columns: dict[str, list[Any]] = {}
        for attribute in qi_names:
            column = view.column(attribute)
            table = level_table(column, hierarchies[attribute])
            level = levels[attribute]
            built = table.level(level)
            base_codes = kernels.from_code_buffer(column.codes)
            per_attribute.append((base_codes, built, table, level))
            values = built.values
            released_columns[attribute] = [values[code] for code in column.codes]

        # Assemble released rows column-wise; non-QI columns pass through.
        source_columns: list[Sequence[Any]] = [
            released_columns[attribute]
            if attribute in released_columns
            else dataset.column(attribute)
            for attribute in schema.names
        ]
        released_rows = list(zip(*source_columns)) if len(dataset) else []
        if suppressed:
            qi_positions = [schema.index_of(attribute) for attribute in qi_names]
            for row_index in sorted(suppressed):
                if not 0 <= row_index < len(released_rows):
                    continue  # Anonymization() rejects out-of-range indices
                cells = list(released_rows[row_index])
                for position in qi_positions:
                    cells[position] = SUPPRESSED
                released_rows[row_index] = tuple(cells)

        label = name or "recode[" + ",".join(
            f"{attribute}={levels[attribute]}" for attribute in qi_names
        ) + "]"
        anonymization = Anonymization(
            dataset,
            dataset.replace_rows(released_rows),
            suppressed=suppressed,
            levels={attribute: levels[attribute] for attribute in qi_names},
            name=label,
        )

    released = anonymization.released
    suppressed_rows = kernels.asarray(sorted(suppressed)) if suppressed else None

    def build_classes() -> EquivalenceClasses:
        labels = packed_group_labels(per_attribute, suppressed_rows)
        return EquivalenceClasses.from_labels(
            kernels.tolist(labels), released.quasi_identifier_tuple
        )

    anonymization._classes_factory = build_classes
    return anonymization


def recode_rowwise(
    dataset: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    levels: Levels,
    suppress: Iterable[int] = (),
    name: str | None = None,
) -> Anonymization:
    """The reference row-plane recoding (cell-at-a-time hierarchy walks).

    Kept as the executable specification of :func:`recode`: the columnar
    plane must produce byte-identical releases and partitions.  Used by the
    golden/property tests and the recode benchmark's baseline; production
    callers should use :func:`recode`.
    """
    schema = dataset.schema
    qi_names = _validate_recode(dataset, hierarchies, levels)

    suppressed = frozenset(suppress)
    qi_positions = {name: schema.index_of(name) for name in qi_names}
    released_rows: list[tuple[Any, ...]] = []
    for row_index, row in enumerate(dataset):
        cells = list(row)
        for attribute in qi_names:
            position = qi_positions[attribute]
            if row_index in suppressed:
                cells[position] = SUPPRESSED
            else:
                cells[position] = hierarchies[attribute].generalize(
                    row[position], levels[attribute]
                )
        released_rows.append(tuple(cells))

    label = name or "recode[" + ",".join(
        f"{attribute}={levels[attribute]}" for attribute in qi_names
    ) + "]"
    return Anonymization(
        dataset,
        dataset.replace_rows(released_rows),
        suppressed=suppressed,
        levels={attribute: levels[attribute] for attribute in qi_names},
        name=label,
    )


def recode_node(
    dataset: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    node: Sequence[int],
    suppress: Iterable[int] = (),
    name: str | None = None,
) -> Anonymization:
    """Apply a lattice node (level vector in QI schema order)."""
    qi_names = dataset.schema.quasi_identifier_names
    if len(node) != len(qi_names):
        raise AnonymizationError(
            f"node {tuple(node)!r} has {len(node)} levels, expected {len(qi_names)}"
        )
    levels = dict(zip(qi_names, node))
    return recode(dataset, hierarchies, levels, suppress=suppress, name=name)


def released_with_local_cells(
    dataset: Dataset,
    qi_cells: Sequence[Mapping[str, Any]],
    suppressed: Iterable[int] = (),
    name: str = "local-recoding",
) -> Anonymization:
    """Build an anonymization from per-row generalized QI cells.

    ``qi_cells[i]`` maps QI attribute names to the released value for row
    ``i``.  Used by local recoders (Mondrian) that do not share one level
    vector across the table.
    """
    schema = dataset.schema
    qi_names = set(schema.quasi_identifier_names)
    released_rows = []
    for row_index, row in enumerate(dataset):
        cells = list(row)
        row_map = qi_cells[row_index]
        extra = set(row_map) - qi_names
        if extra:
            raise AnonymizationError(
                f"row {row_index} recodes non-QI attributes {sorted(extra)}"
            )
        missing = qi_names - set(row_map)
        if missing:
            raise AnonymizationError(
                f"row {row_index} missing recoded values for {sorted(missing)}"
            )
        for attribute, value in row_map.items():
            cells[schema.index_of(attribute)] = value
        released_rows.append(tuple(cells))
    return Anonymization(
        dataset,
        dataset.replace_rows(released_rows),
        suppressed=suppressed,
        levels=None,
        name=name,
    )
