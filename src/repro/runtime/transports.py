"""Pluggable worker transports for the study scheduler.

The scheduler half of :class:`~repro.runtime.executor.StudyExecutor`
owns the DAG frontier, cache, retries, timeouts and event log; *where*
a task attempt physically runs is delegated to a
:class:`WorkerTransport`:

* :class:`InlineTransport` — the coordinating process itself.  Marked
  ``synchronous``: the scheduler runs the op in its own loop,
  byte-for-byte the old ``jobs=1`` behavior (same spans, same clock
  reads, same event order).
* :class:`PoolTransport` — a ``multiprocessing`` pool.  Timeouts are
  enforced by tearing the pool down and rebuilding it (a stuck worker
  cannot be interrupted cooperatively); innocent in-flight tasks are
  reported back so the scheduler can resubmit them at no retry cost.
* :class:`SocketTransport` — standalone worker processes
  (``repro worker --connect HOST:PORT``) speaking the length-prefixed
  pickle protocol of :mod:`repro.runtime.worker`.  Only ops whose
  ``lint/op_certificates.json`` verdict is ``certified`` may be
  submitted; ``inline-only``/uncertified ops are refused at submission
  time (:class:`TransportRefused`) and the scheduler runs them in the
  coordinator instead.

Transports are single-run objects: the scheduler calls ``start()``
before the first submission and ``stop()`` in a ``finally`` block.
A transport never interprets results — it moves payloads and result
tuples, nothing else, which is what keeps the three paths bit-identical.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import selectors
import signal
import socket
import subprocess
import sys
from typing import Any, Mapping

from .certify import OpCertificates, default_certificates
from .worker import extract_frames, pool_entry, send_frame

#: Transport registry names accepted by ``repro study --transport``.
TRANSPORT_NAMES = ("inline", "pool", "socket")


class TransportError(RuntimeError):
    """A transport-level fault (not a task failure)."""


class TransportRefused(TransportError):
    """Raised at submission time for ops the transport will not ship."""


@dataclasses.dataclass(frozen=True)
class TaskPayload:
    """One task attempt, as shipped to a worker."""

    task_id: str
    op: str
    params: Mapping[str, Any]
    deps: dict[str, Any]
    seed: int
    observe: bool

    def as_tuple(self) -> tuple[str, str, Mapping[str, Any], dict[str, Any], int, bool]:
        """The positional form consumed by the worker-side runner."""
        return (self.task_id, self.op, self.params, self.deps, self.seed, self.observe)


@dataclasses.dataclass(frozen=True)
class TaskResult:
    """One task attempt's outcome, as shipped back from a worker."""

    task_id: str
    ok: bool
    value: Any
    error: str | None
    duration: float
    spans: tuple[Any, ...] = ()
    snapshot: dict[str, Any] | None = None

    @classmethod
    def from_tuple(cls, raw: tuple[Any, ...]) -> "TaskResult":
        """Rehydrate from the worker-side runner's result tuple."""
        task_id, ok, value, error, duration, spans, snapshot = raw
        return cls(task_id, ok, value, error, duration, tuple(spans), snapshot)


class WorkerTransport:
    """Interface between the scheduler and a task-execution substrate."""

    #: Registry name (``inline`` / ``pool`` / ``socket``).
    name = "abstract"
    #: ``True`` when the scheduler should execute tasks itself, inline.
    synchronous = False

    def allows(self, op_name: str) -> bool:
        """May this op be submitted?  (Refused ops run in the coordinator.)"""
        return True

    def start(self) -> None:
        """Bring up workers; called once before the first submission."""

    def submit(self, payload: TaskPayload) -> None:
        """Queue one task attempt (raises :class:`TransportRefused`)."""
        raise NotImplementedError

    def poll(self) -> list[TaskResult]:
        """Collect every finished attempt without blocking."""
        return []

    def abandon(self, task_ids: set[str]) -> list[str]:
        """Forcibly drop timed-out in-flight attempts.

        Returns the ids of *innocent* attempts that were lost as
        collateral (e.g. a pool rebuild) and must be resubmitted by the
        scheduler without consuming their retry budget.
        """
        return []

    def stop(self) -> None:
        """Tear everything down; called in a ``finally`` block."""


class InlineTransport(WorkerTransport):
    """Run tasks in the coordinating process (the scheduler's own loop)."""

    name = "inline"
    synchronous = True


class PoolTransport(WorkerTransport):
    """The ``multiprocessing`` pool path of the original executor."""

    name = "pool"

    def __init__(self, processes: int):
        if processes < 1:
            raise ValueError(f"pool transport needs >= 1 process, got {processes}")
        self.processes = processes
        self._context = multiprocessing.get_context()
        self._pool: Any = None
        self._handles: dict[str, Any] = {}

    def start(self) -> None:
        self._pool = self._context.Pool(processes=self.processes)

    def submit(self, payload: TaskPayload) -> None:
        if self._pool is None:
            raise TransportError("pool transport not started")
        handle = self._pool.apply_async(pool_entry, (payload.as_tuple(),))
        self._handles[payload.task_id] = handle

    def poll(self) -> list[TaskResult]:
        results: list[TaskResult] = []
        for task_id in [t for t, h in self._handles.items() if h.ready()]:
            handle = self._handles.pop(task_id)
            try:
                results.append(TaskResult.from_tuple(handle.get()))
            except Exception as exc:  # noqa: BLE001 — pool-level fault
                results.append(
                    TaskResult(task_id, False, None, _describe(exc), 0.0)
                )
        return results

    def abandon(self, task_ids: set[str]) -> list[str]:
        # A stuck pool worker cannot be interrupted cooperatively: the
        # whole pool is torn down and rebuilt, and in-flight tasks that
        # merely shared it are reported back as innocents.
        survivors = [t for t in self._handles if t not in task_ids]
        self._handles.clear()
        self._pool.terminate()
        self._pool.join()
        self._pool = self._context.Pool(processes=self.processes)
        return survivors

    def stop(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


class _Connection:
    """Per-worker connection state on the coordinator side."""

    __slots__ = ("sock", "buffer", "task", "pid", "ready")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.buffer = bytearray()
        self.task: TaskPayload | None = None
        self.pid: int | None = None
        self.ready = False


class SocketTransport(WorkerTransport):
    """Standalone worker processes over a length-prefixed socket protocol.

    The coordinator listens on ``host:port`` (port ``0`` picks a free
    one) and, by default, spawns ``workers`` local
    ``repro worker --connect`` subprocesses pointed back at itself —
    the same protocol serves workers started by hand on other hosts.
    Submission is gated on the op certificates: an op whose verdict is
    not ``certified`` raises :class:`TransportRefused` instead of being
    shipped.

    A connection that drops mid-task surfaces as a failed attempt
    (``worker connection lost``) consuming the task's retry budget; the
    transport respawns a replacement worker (bounded by
    ``respawn_limit``) so the run keeps its capacity.
    """

    name = "socket"

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        certificates: OpCertificates | None = None,
        spawn_workers: bool = True,
        worker_imports: tuple[str, ...] = (),
        env: Mapping[str, str] | None = None,
        respawn_limit: int | None = None,
    ):
        if workers < 1:
            raise ValueError(f"socket transport needs >= 1 worker, got {workers}")
        self.workers = workers
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self.worker_imports = tuple(worker_imports)
        self._certificates = certificates
        self._spawn_workers = spawn_workers
        self._env = dict(env) if env is not None else None
        self._respawn_limit = (
            respawn_limit if respawn_limit is not None else workers * 4
        )
        self._spawned = 0
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._connections: dict[socket.socket, _Connection] = {}
        self._procs: list[subprocess.Popen] = []
        self._queue: list[TaskPayload] = []

    # -- certificate gate ----------------------------------------------------

    def _table(self) -> OpCertificates:
        if self._certificates is None:
            self._certificates = default_certificates()
        return self._certificates

    def allows(self, op_name: str) -> bool:
        return self._table().transport_allowed(op_name, self.name)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self._listener.listen()
        self._listener.setblocking(False)
        self.address = self._listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ)
        if self._spawn_workers:
            for _ in range(self.workers):
                self._spawn()

    def _spawn(self) -> None:
        if self._spawned >= self.workers + self._respawn_limit:
            return
        self._spawned += 1
        host, port = self.address  # type: ignore[misc]
        command = [
            sys.executable, "-m", "repro.cli", "worker",
            "--connect", f"{host}:{port}",
        ]
        for module in self.worker_imports:
            command.extend(["--import", module])
        proc = subprocess.Popen(
            command, env=self._env, stdout=subprocess.DEVNULL
        )
        self._procs.append(proc)

    # -- scheduling ----------------------------------------------------------

    def submit(self, payload: TaskPayload) -> None:
        if self._selector is None:
            raise TransportError("socket transport not started")
        if not self.allows(payload.op):
            raise TransportRefused(
                f"op {payload.op!r} is not certified for the socket transport "
                "(see lint/op_certificates.json)"
            )
        self._queue.append(payload)
        self._pump()

    def _pump(self) -> None:
        """Hand queued payloads to idle, hello'd workers."""
        if not self._queue:
            return
        for connection in list(self._connections.values()):
            if not self._queue:
                break
            if not connection.ready or connection.task is not None:
                continue
            payload = self._queue.pop(0)
            try:
                send_frame(
                    connection.sock,
                    {"type": "task", **_task_message(payload)},
                )
            except OSError:
                self._queue.insert(0, payload)
                self._drop(connection, None)
                continue
            connection.task = payload

    def poll(self) -> list[TaskResult]:
        if self._selector is None:
            return []
        results: list[TaskResult] = []
        for key, _ in self._selector.select(timeout=0):
            sock = key.fileobj
            if sock is self._listener:
                self._accept()
                continue
            connection = self._connections.get(sock)  # type: ignore[arg-type]
            if connection is None:
                continue
            try:
                data = sock.recv(1 << 16)  # type: ignore[union-attr]
            except OSError:
                data = b""
            if not data:
                self._drop(connection, results)
                continue
            connection.buffer.extend(data)
            for message in extract_frames(connection.buffer):
                kind = message.get("type")
                if kind == "hello":
                    connection.pid = message.get("pid")
                    connection.ready = True
                elif kind == "result":
                    results.append(TaskResult.from_tuple(message["payload"]))
                    connection.task = None
        self._pump()
        return results

    def _accept(self) -> None:
        assert self._listener is not None and self._selector is not None
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            self._selector.register(sock, selectors.EVENT_READ)
            self._connections[sock] = _Connection(sock)

    def _drop(self, connection: _Connection, results: list[TaskResult] | None) -> None:
        """Close a dead connection; surface its in-flight task as failed."""
        self._connections.pop(connection.sock, None)
        try:
            self._selector.unregister(connection.sock)  # type: ignore[union-attr]
        except (KeyError, ValueError):
            pass
        connection.sock.close()
        if connection.task is not None and results is not None:
            results.append(
                TaskResult(
                    connection.task.task_id,
                    False,
                    None,
                    "worker connection lost (worker process died?)",
                    0.0,
                )
            )
        if self._spawn_workers and len(self._connections) < self.workers:
            self._spawn()

    def abandon(self, task_ids: set[str]) -> list[str]:
        # Unlike the pool, only the stuck workers are killed; every other
        # in-flight attempt keeps running, so there are no innocents.
        for task_id in task_ids:
            self._queue = [p for p in self._queue if p.task_id != task_id]
        own_pids = {proc.pid for proc in self._procs}
        for connection in list(self._connections.values()):
            if connection.task is None or connection.task.task_id not in task_ids:
                continue
            if connection.pid in own_pids:
                try:
                    os.kill(connection.pid, signal.SIGKILL)
                except (OSError, TypeError):
                    pass
            connection.task = None  # the attempt is charged by the scheduler
            self._drop(connection, None)
        return []

    def stop(self) -> None:
        for connection in list(self._connections.values()):
            try:
                send_frame(connection.sock, {"type": "shutdown"})
            except OSError:
                pass
            connection.sock.close()
        self._connections.clear()
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs.clear()


def _task_message(payload: TaskPayload) -> dict[str, Any]:
    return {
        "task_id": payload.task_id,
        "op": payload.op,
        "params": payload.params,
        "deps": payload.deps,
        "seed": payload.seed,
        "observe": payload.observe,
    }


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def create_transport(
    name: str,
    jobs: int,
    certificates: OpCertificates | None = None,
    worker_imports: tuple[str, ...] = (),
) -> WorkerTransport:
    """Build a transport by registry name (``repro study --transport``)."""
    if name == "inline":
        return InlineTransport()
    if name == "pool":
        return PoolTransport(processes=max(jobs, 1))
    if name == "socket":
        return SocketTransport(
            workers=max(jobs, 1),
            certificates=certificates,
            worker_imports=worker_imports,
        )
    raise ValueError(f"unknown transport {name!r}; choose from {TRANSPORT_NAMES}")
