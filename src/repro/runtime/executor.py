"""Transport-agnostic scheduling with memoization, retries and leases.

:class:`StudyExecutor` is split into two halves:

* a **scheduler** (this module) that owns the DAG frontier, cache
  lookup/store, retry budgets, timeouts, failure isolation and event
  logging; and
* a pluggable :class:`~repro.runtime.transports.WorkerTransport` that
  decides *where* a task attempt physically runs — ``inline`` (the
  coordinating process, byte-for-byte the old ``jobs=1`` loop), ``pool``
  (a ``multiprocessing`` pool with timeout-via-rebuild and innocent-task
  resubmission), or ``socket`` (standalone ``repro worker`` processes,
  gated on the lint op certificates).

Before a task executes its content-addressed cache key is consulted, so
finished work is never repeated — this is also the resume mechanism: a
killed run re-launched over the same store skips its completed prefix.

Failure isolation: a task that raises is retried up to its budget, then
marked ``failed``; its transitive dependents are marked ``blocked`` and
every independent branch of the graph keeps running.  A task that
exceeds its timeout is abandoned through the transport (the pool is torn
down and rebuilt; a socket worker is killed), and innocent in-flight
tasks are resubmitted without consuming their retry budget.

Cooperative execution: with ``cooperate=True`` several executors pointed
at one :class:`~repro.runtime.cache.ResultCache` claim tasks through
file-lock leases (:mod:`repro.runtime.leases`) keyed by cache digest.  A
task leased by a live peer is *deferred* — the scheduler polls the cache
until the peer's result lands — while an expired lease (dead executor)
is stolen and the task re-run locally.  The cache's atomic key-verified
writes make the duplicate-execution race safe.

Seeds: each task receives ``derive_seed(study_seed, task_id)`` — derived
by ``hashlib`` splitting, never from worker-local RNG state — so results
are independent of transport, worker count and scheduling order.
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from typing import Any

from ..obs import Observation, current as current_observation, observing
from ..obs.export import write_chrome_trace, write_metrics_snapshot
from ..obs.trace import TASK_CATEGORY
from .cache import MISS, ResultCache
from .certify import OpCertificates
from .events import METRICS_FILENAME, TRACE_FILENAME, RunLog
from .leases import DEFAULT_TTL, LeaseBoard
from .task import TaskGraph, TaskSpec, derive_seed, op_is_inline_only, resolve_op
from .transports import (
    TaskPayload,
    WorkerTransport,
    create_transport,
)
from .worker import pool_entry as _pool_execute  # noqa: F401 — back-compat alias


class ExecutionError(RuntimeError):
    """Raised by :meth:`ExecutionReport.raise_on_failure` on failed tasks."""


@dataclasses.dataclass
class TaskOutcome:
    """Terminal state of one task in one run."""

    task_id: str
    status: str  # "done" | "failed" | "blocked"
    value: Any = None
    error: str | None = None
    attempts: int = 0
    cached: bool = False
    duration: float = 0.0


class ExecutionReport:
    """Outcome map plus run-level tallies for one executor run."""

    def __init__(self, outcomes: dict[str, TaskOutcome], wall_seconds: float):
        self.outcomes = outcomes
        self.wall_seconds = wall_seconds

    def value(self, task_id: str) -> Any:
        """The result value of a completed task."""
        outcome = self.outcomes[task_id]
        if outcome.status != "done":
            raise ExecutionError(
                f"task {task_id!r} did not complete "
                f"(status {outcome.status!r}: {outcome.error})"
            )
        return outcome.value

    @property
    def completed(self) -> int:
        """Tasks that finished (executed or served from cache)."""
        return sum(1 for o in self.outcomes.values() if o.status == "done")

    @property
    def cache_hits(self) -> int:
        """Tasks served entirely from the content-addressed store."""
        return sum(1 for o in self.outcomes.values() if o.cached)

    @property
    def executed(self) -> int:
        """Tasks that actually ran (completed without a cache hit)."""
        return sum(
            1 for o in self.outcomes.values() if o.status == "done" and not o.cached
        )

    @property
    def failed(self) -> int:
        """Tasks that exhausted their retry budget."""
        return sum(1 for o in self.outcomes.values() if o.status == "failed")

    @property
    def blocked(self) -> int:
        """Tasks skipped because a dependency failed."""
        return sum(1 for o in self.outcomes.values() if o.status == "blocked")

    @property
    def retries(self) -> int:
        """Total retry attempts across all tasks."""
        return sum(max(0, o.attempts - 1) for o in self.outcomes.values())

    def cache_hit_rate(self) -> float:
        """Fraction of tasks served from cache (0.0 on an empty run)."""
        if not self.outcomes:
            return 0.0
        return self.cache_hits / len(self.outcomes)

    def summary(self) -> dict[str, Any]:
        """Run tallies as a plain dict (manifests, reports, CI checks)."""
        return {
            "tasks": len(self.outcomes),
            "completed": self.completed,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failed": self.failed,
            "blocked": self.blocked,
            "retries": self.retries,
            "wall_seconds": self.wall_seconds,
        }

    def raise_on_failure(self) -> None:
        """Raise :class:`ExecutionError` if any task failed or was blocked."""
        broken = [
            outcome
            for outcome in self.outcomes.values()
            if outcome.status != "done"
        ]
        if broken:
            first = broken[0]
            raise ExecutionError(
                f"{len(broken)} task(s) did not complete; first: "
                f"{first.task_id!r} ({first.status}: {first.error})"
            )


def _format_error(exc: BaseException) -> str:
    """A compact, picklable rendering of a worker-side exception."""
    trace = traceback.format_exc(limit=8)
    return f"{type(exc).__name__}: {exc}\n{trace}"


class StudyExecutor:
    """Runs task graphs with memoization, parallelism and retry policy.

    Parameters
    ----------
    jobs:
        Worker count for the chosen transport; ``1`` with the default
        transport executes inline in the calling process (no
        subprocesses, identical to a plain serial loop).
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache` for
        content-addressed memoization and resume.
    log:
        Optional :class:`~repro.runtime.events.RunLog` receiving one event
        per task transition plus the run manifest.
    study_seed:
        Root seed; per-task seeds are split off it by task id.
    default_timeout:
        Fallback per-attempt timeout for specs that set none.
    default_retries:
        Fallback retry budget for specs that set none (spec value wins).
    poll_interval:
        Scheduler poll period in seconds (asynchronous transports and
        cooperative waits).
    obs:
        Optional :class:`repro.obs.Observation` receiving spans and
        metrics.  Defaults to the process-current observation
        (:func:`repro.obs.current`), which is the shared no-op unless a
        caller installed a live one — the untraced path records nothing
        and allocates nothing.
    transport:
        ``"inline"`` / ``"pool"`` / ``"socket"``, or a ready
        :class:`~repro.runtime.transports.WorkerTransport` instance.
        Defaults to ``inline`` when ``jobs == 1`` and ``pool`` otherwise
        (the historical behavior).
    cooperate:
        Claim tasks through file-lock leases under the cache root so
        several executors can share one study (requires ``cache``).
    lease_ttl:
        Lease expiry in seconds; a peer may steal a lease this stale.
        Must exceed the longest expected task attempt.
    certificates:
        Optional :class:`~repro.runtime.certify.OpCertificates` override
        for transports that gate on op certification.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        log: RunLog | None = None,
        study_seed: int = 0,
        default_timeout: float | None = None,
        default_retries: int = 0,
        poll_interval: float = 0.02,
        obs: Observation | None = None,
        transport: str | WorkerTransport | None = None,
        cooperate: bool = False,
        lease_ttl: float = DEFAULT_TTL,
        certificates: OpCertificates | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.log = log
        self.study_seed = study_seed
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        self.poll_interval = poll_interval
        self.obs = obs
        self.transport = transport
        self.cooperate = cooperate
        self.lease_ttl = lease_ttl
        self.certificates = certificates

    # -- shared helpers ------------------------------------------------------

    def _make_transport(self) -> WorkerTransport:
        if isinstance(self.transport, WorkerTransport):
            return self.transport
        name = self.transport
        if name is None:
            name = "inline" if self.jobs == 1 else "pool"
        return create_transport(name, self.jobs, certificates=self.certificates)

    def _event(self, kind: str, task_id: str | None = None, **fields: Any) -> None:
        if self.log is not None:
            self.log.event(kind, task_id=task_id, **fields)

    def _timeout_for(self, spec: TaskSpec) -> float | None:
        return spec.timeout if spec.timeout is not None else self.default_timeout

    def _retries_for(self, spec: TaskSpec) -> int:
        return spec.retries if spec.retries else self.default_retries

    def _cache_lookup(self, spec: TaskSpec) -> Any:
        if self.cache is None or spec.key is None:
            return MISS
        return self.cache.get(spec.key)

    def _cache_store(self, spec: TaskSpec, value: Any) -> None:
        if self.cache is not None and spec.key is not None:
            self.cache.put(spec.key, value)

    def _block_dependents(
        self,
        graph: TaskGraph,
        failed_id: str,
        outcomes: dict[str, TaskOutcome],
    ) -> None:
        """Mark every transitive dependent of a failed task as blocked."""
        frontier = [failed_id]
        while frontier:
            current = frontier.pop()
            for dependent in graph.dependents(current):
                if dependent in outcomes:
                    continue
                outcomes[dependent] = TaskOutcome(
                    dependent, "blocked", error=f"dependency {current!r} failed"
                )
                self._event("blocked", dependent, cause=current)
                frontier.append(dependent)

    def _start_manifest(self, graph: TaskGraph, transport: WorkerTransport) -> None:
        if self.log is None:
            return
        manifest = {
            "status": "running",
            "tasks": len(graph),
            "task_ids": list(graph.task_ids),
            "jobs": self.jobs,
            "transport": transport.name,
            "study_seed": self.study_seed,
            "started_at": time.time(),
        }
        writer = getattr(self.log, "writer_id", None)
        if writer is not None:
            manifest["writer"] = writer
        self.log.write_manifest(manifest)

    def _finish_manifest(
        self,
        graph: TaskGraph,
        report: ExecutionReport,
        transport: WorkerTransport,
        cache_mark: dict[str, int] | None,
        observation: Any,
        obs_mark: dict[str, Any],
    ) -> None:
        if self.log is None:
            return
        manifest = {
            "status": "completed" if report.failed == 0 and report.blocked == 0 else "failed",
            "tasks": len(graph),
            "task_ids": list(graph.task_ids),
            "jobs": self.jobs,
            "transport": transport.name,
            "study_seed": self.study_seed,
            "finished_at": time.time(),
            **report.summary(),
        }
        writer = getattr(self.log, "writer_id", None)
        if writer is not None:
            manifest["writer"] = writer
        if self.cache is not None:
            # Report this run's delta, not the cache object's lifetime
            # totals: a long-lived cache shared by sequential studies must
            # not leak the first run's hits into the second run's manifest.
            stats = self.cache.stats.snapshot()
            if cache_mark is not None:
                stats = {name: stats[name] - cache_mark.get(name, 0) for name in stats}
            manifest["cache"] = stats
        if observation.enabled:
            manifest["obs"] = observation.metrics.delta_since(obs_mark)
        self.log.write_manifest(manifest)

    # -- local (coordinator-side) execution ----------------------------------

    def _run_local(
        self,
        graph: TaskGraph,
        spec: TaskSpec,
        values: dict[str, Any],
        outcomes: dict[str, TaskOutcome],
        completed: set[str],
        attempts: dict[str, int],
        observation: Any,
    ) -> None:
        """Execute one task to a terminal state in the calling process.

        This is byte-for-byte the body of the historical serial loop —
        same spans, same clock reads, same event order — so the inline
        transport (and inline fallbacks of remote transports) preserve
        the pinned observability goldens.
        """
        tracer = observation.trace
        metrics = observation.metrics
        deps = {dep: values[dep] for dep in spec.deps}
        budget = self._retries_for(spec)
        attempt = attempts.get(spec.task_id, 0)
        while True:
            attempt += 1
            attempts[spec.task_id] = attempt
            self._event("submitted", spec.task_id, attempt=attempt)
            start = time.perf_counter()
            span = tracer.span(
                spec.task_id, category=TASK_CATEGORY, op=spec.op, attempt=attempt
            )
            try:
                with span:
                    value = resolve_op(spec.op)(
                        spec.params,
                        deps,
                        derive_seed(self.study_seed, spec.task_id),
                    )
            except Exception as exc:  # noqa: BLE001 — retry policy boundary
                error = _format_error(exc)
                if attempt <= budget:
                    self._event("retry", spec.task_id, attempt=attempt)
                    metrics.inc("task.retry")
                    continue
                outcomes[spec.task_id] = TaskOutcome(
                    spec.task_id,
                    "failed",
                    error=error,
                    attempts=attempt,
                    duration=time.perf_counter() - start,
                )
                self._event("failed", spec.task_id, attempts=attempt)
                metrics.inc("executor.tasks.failed")
                self._block_dependents(graph, spec.task_id, outcomes)
                return
            duration = time.perf_counter() - start
            self._cache_store(spec, value)
            outcomes[spec.task_id] = TaskOutcome(
                spec.task_id,
                "done",
                value=value,
                attempts=attempt,
                duration=duration,
            )
            values[spec.task_id] = value
            completed.add(spec.task_id)
            self._event("finished", spec.task_id, seconds=round(duration, 6))
            metrics.inc("executor.tasks.executed")
            metrics.observe("task.exec_seconds", span.duration)
            metrics.observe(f"task.exec_seconds.{spec.op}", span.duration)
            return

    # -- the scheduler -------------------------------------------------------

    def _run_scheduled(
        self,
        graph: TaskGraph,
        observation: Any,
        transport: WorkerTransport,
        board: LeaseBoard | None,
    ) -> dict[str, TaskOutcome]:
        tracer = observation.trace
        metrics = observation.metrics
        outcomes: dict[str, TaskOutcome] = {}
        values: dict[str, Any] = {}
        completed: set[str] = set()
        scheduled: set[str] = set()
        attempts: dict[str, int] = {}
        in_flight: set[str] = set()
        # task_id -> absolute deadline (asynchronous transports only).
        deadlines: dict[str, float] = {}
        # task_id -> submission instant, for queue-latency histograms
        # (tracked only under observation; the untraced path pays nothing).
        submitted_at: dict[str, float] = {}
        # Cooperative state: tasks a live peer holds / digests we hold.
        deferred: dict[str, str] = {}
        held: dict[str, str] = {}
        last_refresh = time.monotonic()

        def settle_cached(spec: TaskSpec, value: Any) -> None:
            outcomes[spec.task_id] = TaskOutcome(
                spec.task_id, "done", value=value, cached=True
            )
            values[spec.task_id] = value
            completed.add(spec.task_id)
            self._event("cache-hit", spec.task_id)
            with tracer.span(spec.task_id, category="cache-hit", op=spec.op):
                pass
            metrics.inc("executor.tasks.cached")

        def complete(spec: TaskSpec, value: Any, duration: float) -> None:
            self._cache_store(spec, value)
            outcomes[spec.task_id] = TaskOutcome(
                spec.task_id,
                "done",
                value=value,
                attempts=attempts.get(spec.task_id, 0),
                duration=duration,
            )
            values[spec.task_id] = value
            completed.add(spec.task_id)
            self._event("finished", spec.task_id, seconds=round(duration, 6))
            metrics.inc("executor.tasks.executed")

        def fail(spec: TaskSpec, error: str) -> None:
            outcomes[spec.task_id] = TaskOutcome(
                spec.task_id,
                "failed",
                error=error,
                attempts=attempts.get(spec.task_id, 0),
            )
            self._event("failed", spec.task_id, attempts=attempts.get(spec.task_id, 0))
            metrics.inc("executor.tasks.failed")
            self._block_dependents(graph, spec.task_id, outcomes)

        def release_lease(task_id: str) -> None:
            if board is not None and task_id in held:
                board.release(held.pop(task_id))

        def submit_remote(spec: TaskSpec) -> None:
            attempts[spec.task_id] = attempts.get(spec.task_id, 0) + 1
            payload = TaskPayload(
                spec.task_id,
                spec.op,
                spec.params,
                {dep: values[dep] for dep in spec.deps},
                derive_seed(self.study_seed, spec.task_id),
                observation.enabled,
            )
            transport.submit(payload)
            in_flight.add(spec.task_id)
            timeout = self._timeout_for(spec)
            if timeout is not None:
                deadlines[spec.task_id] = time.monotonic() + timeout
            if observation.enabled:
                submitted_at[spec.task_id] = time.monotonic()
            self._event("submitted", spec.task_id, attempt=attempts[spec.task_id])

        def dispatch(spec: TaskSpec) -> None:
            if not transport.synchronous:
                if op_is_inline_only(spec.op):
                    # Parameters may hold arbitrary callables; run in the
                    # coordinating process.
                    self._event("inline-fallback", spec.task_id, reason="inline-only")
                elif not transport.allows(spec.op):
                    self._event("inline-fallback", spec.task_id, reason="uncertified")
                    metrics.inc("executor.tasks.refused")
                else:
                    submit_remote(spec)
                    return
            self._run_local(
                graph, spec, values, outcomes, completed, attempts, observation
            )
            release_lease(spec.task_id)

        def try_lease(spec: TaskSpec) -> bool:
            """Try to lease a task; ``False`` defers it to a live peer."""
            if board is None or spec.key is None:
                return True
            digest = spec.key.digest()
            grant = board.claim(digest)
            if grant is None:
                deferred[spec.task_id] = digest
                self._event("lease-wait", spec.task_id)
                metrics.inc("executor.lease.deferred")
                return False
            held[spec.task_id] = digest
            if grant == "stolen":
                self._event("lease-steal", spec.task_id)
                metrics.inc("executor.lease.stolen")
            return True

        while len(outcomes) < len(graph):
            progressed = False

            # Schedule everything whose dependencies are satisfied.
            excluded = scheduled | set(outcomes) | set(deferred)
            for spec in graph.ready(completed, excluded):
                cached = self._cache_lookup(spec)
                if cached is not MISS:
                    settle_cached(spec, cached)
                    progressed = True
                    continue
                if not try_lease(spec):
                    continue
                if board is not None:
                    # A peer may have stored the result and released its
                    # lease between our miss above and the claim (peers
                    # always store before releasing), so a fresh claim
                    # must re-check the cache before executing — this
                    # closes the duplicate-execution race.
                    cached = self._cache_lookup(spec)
                    if cached is not MISS:
                        release_lease(spec.task_id)
                        settle_cached(spec, cached)
                        progressed = True
                        continue
                scheduled.add(spec.task_id)
                dispatch(spec)
                progressed = True

            if not transport.synchronous:
                # Collect finished attempts.
                for result in transport.poll():
                    progressed = True
                    task_id = result.task_id
                    in_flight.discard(task_id)
                    deadlines.pop(task_id, None)
                    spec = graph.task(task_id)
                    if result.spans:
                        # Worker clocks have their own epoch; shift the
                        # shipped spans so the latest one ends "now" on the
                        # coordinator's axis, then adopt them under the
                        # current (run) span.
                        shift = tracer.now() - max(span.end for span in result.spans)
                        tracer.graft(result.spans, shift=shift)
                    if result.snapshot is not None:
                        metrics.merge(result.snapshot)
                    if observation.enabled and task_id in submitted_at:
                        waited = time.monotonic() - submitted_at.pop(task_id)
                        metrics.observe(
                            "task.queue_seconds", max(waited - result.duration, 0.0)
                        )
                    if result.ok:
                        complete(spec, result.value, result.duration)
                        release_lease(task_id)
                    elif attempts[task_id] <= self._retries_for(spec):
                        self._event("retry", task_id, attempt=attempts[task_id])
                        metrics.inc("task.retry")
                        submit_remote(spec)
                    else:
                        fail(spec, result.error or "unknown worker failure")
                        release_lease(task_id)

                # Enforce deadlines through the transport; innocents lost
                # as collateral (a pool rebuild) are resubmitted free.
                if deadlines:
                    now = time.monotonic()
                    expired = [t for t, d in deadlines.items() if now > d]
                    if expired:
                        progressed = True
                        innocents = transport.abandon(set(expired))
                        for task_id in expired:
                            in_flight.discard(task_id)
                            deadlines.pop(task_id, None)
                            submitted_at.pop(task_id, None)
                            spec = graph.task(task_id)
                            self._event("timeout", task_id, attempt=attempts[task_id])
                            metrics.inc("task.timeout")
                            if attempts[task_id] <= self._retries_for(spec):
                                self._event("retry", task_id, attempt=attempts[task_id])
                                metrics.inc("task.retry")
                                submit_remote(spec)
                            else:
                                fail(
                                    spec,
                                    f"timed out after {self._timeout_for(spec)}s "
                                    f"({attempts[task_id]} attempt(s))",
                                )
                                release_lease(task_id)
                        for task_id in innocents:
                            attempts[task_id] -= 1
                            in_flight.discard(task_id)
                            deadlines.pop(task_id, None)
                            submitted_at.pop(task_id, None)
                            submit_remote(graph.task(task_id))

            if board is not None:
                # Re-check tasks a peer holds: settle them from the cache
                # when the peer's result lands, or steal an expired lease.
                for task_id, digest in list(deferred.items()):
                    spec = graph.task(task_id)
                    cached = self._cache_lookup(spec)
                    if cached is not MISS:
                        del deferred[task_id]
                        settle_cached(spec, cached)
                        progressed = True
                        continue
                    grant = board.claim(digest)
                    if grant is not None:
                        del deferred[task_id]
                        held[task_id] = digest
                        if grant == "stolen":
                            self._event("lease-steal", task_id)
                            metrics.inc("executor.lease.stolen")
                        # Same store-then-release race as above: the peer
                        # may have finished between our cache miss and
                        # this successful claim.
                        cached = self._cache_lookup(spec)
                        if cached is not MISS:
                            release_lease(task_id)
                            settle_cached(spec, cached)
                            progressed = True
                            continue
                        scheduled.add(task_id)
                        dispatch(spec)
                        progressed = True
                if held and time.monotonic() - last_refresh > board.ttl / 3.0:
                    board.refresh(list(held.values()))
                    last_refresh = time.monotonic()

            if progressed:
                continue
            if not in_flight and not deferred:
                if len(outcomes) < len(graph) and not graph.ready(
                    completed, scheduled | set(outcomes)
                ):
                    # Nothing running, nothing ready: the remainder is
                    # unreachable (should be covered by blocking, but
                    # never spin forever).
                    for spec in graph:
                        if spec.task_id not in outcomes:
                            outcomes[spec.task_id] = TaskOutcome(
                                spec.task_id, "blocked", error="unreachable"
                            )
                continue
            time.sleep(self.poll_interval)

        return outcomes

    # -- entry point ---------------------------------------------------------

    def run(self, graph: TaskGraph) -> ExecutionReport:
        """Execute the graph and return the per-task outcome report.

        The run is bracketed by per-run marks on the cache counters and the
        metrics registry, so manifests always report *this run's* deltas —
        never lifetime totals of a reused cache or observation.  With an
        enabled observation and a run log, the recorded spans and the metric
        delta are also exported as ``trace.json`` / ``metrics.json`` next to
        the manifest.
        """
        observation = self.obs if self.obs is not None else current_observation()
        transport = self._make_transport()
        board = None
        if self.cooperate:
            if self.cache is None:
                raise ValueError("cooperative execution requires a ResultCache")
            board = LeaseBoard(self.cache.root, ttl=self.lease_ttl)
        with observing(observation):
            tracer = observation.trace
            metrics = observation.metrics
            cache_mark = None if self.cache is None else self.cache.stats.snapshot()
            obs_mark = metrics.mark()
            span_mark = len(tracer.spans)
            started = time.perf_counter()
            self._event(
                "run-start", tasks=len(graph), jobs=self.jobs,
                transport=transport.name,
            )
            self._start_manifest(graph, transport)
            transport.start()
            try:
                with tracer.span(
                    "run", category="executor", tasks=len(graph), jobs=self.jobs
                ):
                    outcomes = self._run_scheduled(
                        graph, observation, transport, board
                    )
            finally:
                transport.stop()
            report = ExecutionReport(outcomes, time.perf_counter() - started)
            self._event("run-finish", **report.summary())
            self._finish_manifest(
                graph, report, transport, cache_mark, observation, obs_mark
            )
            if observation.enabled and self.log is not None:
                write_chrome_trace(
                    tracer.spans[span_mark:],
                    self.log.artifact_path(TRACE_FILENAME),
                )
                write_metrics_snapshot(
                    metrics.delta_since(obs_mark),
                    self.log.artifact_path(METRICS_FILENAME),
                )
            if self.log is not None:
                self.log.finish()
            return report
