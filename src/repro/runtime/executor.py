"""Pool scheduling with memoization, timeouts, retries and failure isolation.

:class:`StudyExecutor` walks a :class:`~repro.runtime.task.TaskGraph` and
runs every ready task, either inline (``jobs=1`` — byte-for-byte the
behavior of a plain serial loop) or on a ``multiprocessing`` pool
(``jobs>1``).  Before a task executes its content-addressed cache key is
consulted, so finished work is never repeated — this is also the resume
mechanism: a killed run re-launched over the same store skips its completed
prefix.

Failure isolation: a task that raises is retried up to its budget, then
marked ``failed``; its transitive dependents are marked ``blocked`` and
every independent branch of the graph keeps running.  A task that exceeds
its timeout is treated as a failure; because a stuck worker cannot be
interrupted cooperatively, the pool is torn down and rebuilt (public
``Pool.terminate``), and innocent in-flight tasks are resubmitted without
consuming their retry budget.

Seeds: each task receives ``derive_seed(study_seed, task_id)`` — derived by
``hashlib`` splitting, never from worker-local RNG state — so results are
independent of worker count and scheduling order.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
import traceback
from typing import Any, Mapping

from ..obs import Observation, current as current_observation, observing
from ..obs.export import write_chrome_trace, write_metrics_snapshot
from ..obs.trace import TASK_CATEGORY
from .cache import MISS, ResultCache
from .events import METRICS_FILENAME, TRACE_FILENAME, RunLog
from .task import TaskGraph, TaskSpec, derive_seed, op_is_inline_only, resolve_op


class ExecutionError(RuntimeError):
    """Raised by :meth:`ExecutionReport.raise_on_failure` on failed tasks."""


@dataclasses.dataclass
class TaskOutcome:
    """Terminal state of one task in one run."""

    task_id: str
    status: str  # "done" | "failed" | "blocked"
    value: Any = None
    error: str | None = None
    attempts: int = 0
    cached: bool = False
    duration: float = 0.0


class ExecutionReport:
    """Outcome map plus run-level tallies for one executor run."""

    def __init__(self, outcomes: dict[str, TaskOutcome], wall_seconds: float):
        self.outcomes = outcomes
        self.wall_seconds = wall_seconds

    def value(self, task_id: str) -> Any:
        """The result value of a completed task."""
        outcome = self.outcomes[task_id]
        if outcome.status != "done":
            raise ExecutionError(
                f"task {task_id!r} did not complete "
                f"(status {outcome.status!r}: {outcome.error})"
            )
        return outcome.value

    @property
    def completed(self) -> int:
        """Tasks that finished (executed or served from cache)."""
        return sum(1 for o in self.outcomes.values() if o.status == "done")

    @property
    def cache_hits(self) -> int:
        """Tasks served entirely from the content-addressed store."""
        return sum(1 for o in self.outcomes.values() if o.cached)

    @property
    def executed(self) -> int:
        """Tasks that actually ran (completed without a cache hit)."""
        return sum(
            1 for o in self.outcomes.values() if o.status == "done" and not o.cached
        )

    @property
    def failed(self) -> int:
        """Tasks that exhausted their retry budget."""
        return sum(1 for o in self.outcomes.values() if o.status == "failed")

    @property
    def blocked(self) -> int:
        """Tasks skipped because a dependency failed."""
        return sum(1 for o in self.outcomes.values() if o.status == "blocked")

    @property
    def retries(self) -> int:
        """Total retry attempts across all tasks."""
        return sum(max(0, o.attempts - 1) for o in self.outcomes.values())

    def cache_hit_rate(self) -> float:
        """Fraction of tasks served from cache (0.0 on an empty run)."""
        if not self.outcomes:
            return 0.0
        return self.cache_hits / len(self.outcomes)

    def summary(self) -> dict[str, Any]:
        """Run tallies as a plain dict (manifests, reports, CI checks)."""
        return {
            "tasks": len(self.outcomes),
            "completed": self.completed,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failed": self.failed,
            "blocked": self.blocked,
            "retries": self.retries,
            "wall_seconds": self.wall_seconds,
        }

    def raise_on_failure(self) -> None:
        """Raise :class:`ExecutionError` if any task failed or was blocked."""
        broken = [
            outcome
            for outcome in self.outcomes.values()
            if outcome.status != "done"
        ]
        if broken:
            first = broken[0]
            raise ExecutionError(
                f"{len(broken)} task(s) did not complete; first: "
                f"{first.task_id!r} ({first.status}: {first.error})"
            )


def _format_error(exc: BaseException) -> str:
    """A compact, picklable rendering of a worker-side exception."""
    trace = traceback.format_exc(limit=8)
    return f"{type(exc).__name__}: {exc}\n{trace}"


def _pool_execute(
    payload: tuple[str, str, Mapping[str, Any], dict[str, Any], int, bool],
) -> tuple[str, bool, Any, str | None, float, tuple[Any, ...], dict[str, Any] | None]:
    """Worker-side task runner; never raises (failure isolation).

    When the coordinator requests observation, the worker installs a fresh
    process-local :class:`Observation` around the task, wraps the operation
    in a task span, and ships the recorded spans plus a metrics snapshot
    back in the result tuple; the coordinator grafts the spans into its own
    trace and merges the counters.  Untraced runs ship nothing.
    """
    task_id, op_name, params, deps, seed, observe = payload
    start = time.perf_counter()
    if not observe:
        try:
            # Under a spawn start method a fresh worker has an empty
            # registry; importing the study module registers the standard
            # operations.
            from . import study as _study  # noqa: F401

            value = resolve_op(op_name)(params, deps, seed)
            return (task_id, True, value, None, time.perf_counter() - start, (), None)
        except BaseException as exc:  # noqa: BLE001 — isolate *any* worker fault
            return (
                task_id, False, None, _format_error(exc),
                time.perf_counter() - start, (), None,
            )
    observation = Observation()
    ok, value, error = True, None, None
    with observing(observation):
        span = observation.trace.span(task_id, category=TASK_CATEGORY, op=op_name)
        try:
            with span:
                from . import study as _study  # noqa: F401

                value = resolve_op(op_name)(params, deps, seed)
        except BaseException as exc:  # noqa: BLE001 — isolate *any* worker fault
            ok, error = False, _format_error(exc)
    observation.metrics.observe("task.exec_seconds", span.duration)
    observation.metrics.observe(f"task.exec_seconds.{op_name}", span.duration)
    return (
        task_id,
        ok,
        value,
        error,
        time.perf_counter() - start,
        tuple(observation.trace.spans),
        observation.metrics.snapshot(),
    )


class StudyExecutor:
    """Runs task graphs with memoization, parallelism and retry policy.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` executes inline in the calling process
        (no subprocesses, identical to a plain serial loop).
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache` for
        content-addressed memoization and resume.
    log:
        Optional :class:`~repro.runtime.events.RunLog` receiving one event
        per task transition plus the run manifest.
    study_seed:
        Root seed; per-task seeds are split off it by task id.
    default_timeout:
        Fallback per-attempt timeout for specs that set none.
    default_retries:
        Fallback retry budget for specs that set none (spec value wins).
    poll_interval:
        Scheduler poll period in seconds (parallel mode).
    obs:
        Optional :class:`repro.obs.Observation` receiving spans and
        metrics.  Defaults to the process-current observation
        (:func:`repro.obs.current`), which is the shared no-op unless a
        caller installed a live one — the untraced path records nothing
        and allocates nothing.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        log: RunLog | None = None,
        study_seed: int = 0,
        default_timeout: float | None = None,
        default_retries: int = 0,
        poll_interval: float = 0.02,
        obs: Observation | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.log = log
        self.study_seed = study_seed
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        self.poll_interval = poll_interval
        self.obs = obs

    # -- shared helpers ------------------------------------------------------

    def _event(self, kind: str, task_id: str | None = None, **fields: Any) -> None:
        if self.log is not None:
            self.log.event(kind, task_id=task_id, **fields)

    def _timeout_for(self, spec: TaskSpec) -> float | None:
        return spec.timeout if spec.timeout is not None else self.default_timeout

    def _retries_for(self, spec: TaskSpec) -> int:
        return spec.retries if spec.retries else self.default_retries

    def _cache_lookup(self, spec: TaskSpec) -> Any:
        if self.cache is None or spec.key is None:
            return MISS
        return self.cache.get(spec.key)

    def _cache_store(self, spec: TaskSpec, value: Any) -> None:
        if self.cache is not None and spec.key is not None:
            self.cache.put(spec.key, value)

    def _block_dependents(
        self,
        graph: TaskGraph,
        failed_id: str,
        outcomes: dict[str, TaskOutcome],
    ) -> None:
        """Mark every transitive dependent of a failed task as blocked."""
        frontier = [failed_id]
        while frontier:
            current = frontier.pop()
            for dependent in graph.dependents(current):
                if dependent in outcomes:
                    continue
                outcomes[dependent] = TaskOutcome(
                    dependent, "blocked", error=f"dependency {current!r} failed"
                )
                self._event("blocked", dependent, cause=current)
                frontier.append(dependent)

    def _start_manifest(self, graph: TaskGraph) -> None:
        if self.log is None:
            return
        self.log.write_manifest(
            {
                "status": "running",
                "tasks": len(graph),
                "task_ids": list(graph.task_ids),
                "jobs": self.jobs,
                "study_seed": self.study_seed,
                "started_at": time.time(),
            }
        )

    def _finish_manifest(
        self,
        graph: TaskGraph,
        report: ExecutionReport,
        cache_mark: dict[str, int] | None,
        observation: Any,
        obs_mark: dict[str, Any],
    ) -> None:
        if self.log is None:
            return
        manifest = {
            "status": "completed" if report.failed == 0 and report.blocked == 0 else "failed",
            "tasks": len(graph),
            "task_ids": list(graph.task_ids),
            "jobs": self.jobs,
            "study_seed": self.study_seed,
            "finished_at": time.time(),
            **report.summary(),
        }
        if self.cache is not None:
            # Report this run's delta, not the cache object's lifetime
            # totals: a long-lived cache shared by sequential studies must
            # not leak the first run's hits into the second run's manifest.
            stats = self.cache.stats.snapshot()
            if cache_mark is not None:
                stats = {name: stats[name] - cache_mark.get(name, 0) for name in stats}
            manifest["cache"] = stats
        if observation.enabled:
            manifest["obs"] = observation.metrics.delta_since(obs_mark)
        self.log.write_manifest(manifest)

    # -- serial path ---------------------------------------------------------

    def _run_serial(
        self, graph: TaskGraph, observation: Any
    ) -> dict[str, TaskOutcome]:
        tracer = observation.trace
        metrics = observation.metrics
        outcomes: dict[str, TaskOutcome] = {}
        values: dict[str, Any] = {}
        for spec in graph:  # insertion order is topological
            if spec.task_id in outcomes:  # already blocked by a failure
                continue
            cached = self._cache_lookup(spec)
            if cached is not MISS:
                outcomes[spec.task_id] = TaskOutcome(
                    spec.task_id, "done", value=cached, cached=True
                )
                values[spec.task_id] = cached
                self._event("cache-hit", spec.task_id)
                with tracer.span(spec.task_id, category="cache-hit", op=spec.op):
                    pass
                metrics.inc("executor.tasks.cached")
                continue
            deps = {dep: values[dep] for dep in spec.deps}
            budget = self._retries_for(spec)
            attempt = 0
            while True:
                attempt += 1
                self._event("submitted", spec.task_id, attempt=attempt)
                start = time.perf_counter()
                span = tracer.span(
                    spec.task_id, category=TASK_CATEGORY, op=spec.op, attempt=attempt
                )
                try:
                    with span:
                        value = resolve_op(spec.op)(
                            spec.params,
                            deps,
                            derive_seed(self.study_seed, spec.task_id),
                        )
                except Exception as exc:  # noqa: BLE001 — retry policy boundary
                    error = _format_error(exc)
                    if attempt <= budget:
                        self._event("retry", spec.task_id, attempt=attempt)
                        metrics.inc("task.retry")
                        continue
                    outcomes[spec.task_id] = TaskOutcome(
                        spec.task_id,
                        "failed",
                        error=error,
                        attempts=attempt,
                        duration=time.perf_counter() - start,
                    )
                    self._event("failed", spec.task_id, attempts=attempt)
                    metrics.inc("executor.tasks.failed")
                    self._block_dependents(graph, spec.task_id, outcomes)
                    break
                duration = time.perf_counter() - start
                self._cache_store(spec, value)
                outcomes[spec.task_id] = TaskOutcome(
                    spec.task_id,
                    "done",
                    value=value,
                    attempts=attempt,
                    duration=duration,
                )
                values[spec.task_id] = value
                self._event("finished", spec.task_id, seconds=round(duration, 6))
                metrics.inc("executor.tasks.executed")
                metrics.observe("task.exec_seconds", span.duration)
                metrics.observe(f"task.exec_seconds.{spec.op}", span.duration)
                break
        return outcomes

    # -- parallel path -------------------------------------------------------

    def _run_parallel(
        self, graph: TaskGraph, observation: Any
    ) -> dict[str, TaskOutcome]:
        tracer = observation.trace
        metrics = observation.metrics
        context = multiprocessing.get_context()
        outcomes: dict[str, TaskOutcome] = {}
        values: dict[str, Any] = {}
        completed: set[str] = set()
        scheduled: set[str] = set()
        attempts: dict[str, int] = {}
        # task_id -> (AsyncResult, absolute deadline or None)
        in_flight: dict[str, tuple[Any, float | None]] = {}
        # task_id -> submission instant, for queue-latency histograms
        # (tracked only under observation; the untraced path pays nothing).
        submitted_at: dict[str, float] = {}

        def submit(spec: TaskSpec) -> None:
            attempts[spec.task_id] = attempts.get(spec.task_id, 0) + 1
            deps = {dep: values[dep] for dep in spec.deps}
            payload = (
                spec.task_id,
                spec.op,
                spec.params,
                deps,
                derive_seed(self.study_seed, spec.task_id),
                observation.enabled,
            )
            handle = pool.apply_async(_pool_execute, (payload,))
            timeout = self._timeout_for(spec)
            deadline = None if timeout is None else time.monotonic() + timeout
            in_flight[spec.task_id] = (handle, deadline)
            if observation.enabled:
                submitted_at[spec.task_id] = time.monotonic()
            self._event("submitted", spec.task_id, attempt=attempts[spec.task_id])

        def resubmit_inflight(survivors: list[str]) -> None:
            """Re-queue innocent in-flight tasks after a pool restart
            (their attempt count is rolled back — they did not fail)."""
            for task_id in survivors:
                attempts[task_id] -= 1
                submit(graph.task(task_id))

        def complete(spec: TaskSpec, value: Any, cached: bool, duration: float) -> None:
            outcomes[spec.task_id] = TaskOutcome(
                spec.task_id,
                "done",
                value=value,
                attempts=attempts.get(spec.task_id, 0),
                cached=cached,
                duration=duration,
            )
            values[spec.task_id] = value
            completed.add(spec.task_id)

        def fail(spec: TaskSpec, error: str) -> None:
            outcomes[spec.task_id] = TaskOutcome(
                spec.task_id,
                "failed",
                error=error,
                attempts=attempts.get(spec.task_id, 0),
            )
            self._event("failed", spec.task_id, attempts=attempts.get(spec.task_id, 0))
            metrics.inc("executor.tasks.failed")
            self._block_dependents(graph, spec.task_id, outcomes)

        # Acquired immediately before the try so no raising statement can
        # run while the pool exists unprotected (lint Layer 5, REP305).
        pool = context.Pool(processes=self.jobs)
        try:
            while len(outcomes) < len(graph):
                # Schedule everything whose dependencies are satisfied.
                excluded = scheduled | set(outcomes)
                for spec in graph.ready(completed, excluded):
                    scheduled.add(spec.task_id)
                    cached = self._cache_lookup(spec)
                    if cached is not MISS:
                        complete(spec, cached, cached=True, duration=0.0)
                        self._event("cache-hit", spec.task_id)
                        with tracer.span(
                            spec.task_id, category="cache-hit", op=spec.op
                        ):
                            pass
                        metrics.inc("executor.tasks.cached")
                    elif op_is_inline_only(spec.op):
                        # Parameters may hold arbitrary callables; run in
                        # the coordinating process.
                        start = time.perf_counter()
                        attempts[spec.task_id] = attempts.get(spec.task_id, 0) + 1
                        span = tracer.span(
                            spec.task_id, category=TASK_CATEGORY, op=spec.op,
                            attempt=attempts[spec.task_id],
                        )
                        try:
                            with span:
                                value = resolve_op(spec.op)(
                                    spec.params,
                                    {dep: values[dep] for dep in spec.deps},
                                    derive_seed(self.study_seed, spec.task_id),
                                )
                        except Exception as exc:  # noqa: BLE001
                            fail(spec, _format_error(exc))
                        else:
                            duration = time.perf_counter() - start
                            self._cache_store(spec, value)
                            complete(spec, value, cached=False, duration=duration)
                            self._event(
                                "finished", spec.task_id, seconds=round(duration, 6)
                            )
                            metrics.inc("executor.tasks.executed")
                            metrics.observe("task.exec_seconds", span.duration)
                            metrics.observe(
                                f"task.exec_seconds.{spec.op}", span.duration
                            )
                    else:
                        submit(spec)

                if not in_flight:
                    if len(outcomes) < len(graph) and not graph.ready(
                        completed, scheduled | set(outcomes)
                    ):
                        # Nothing running, nothing ready: the remainder is
                        # unreachable (should be covered by blocking, but
                        # never spin forever).
                        for spec in graph:
                            if spec.task_id not in outcomes:
                                outcomes[spec.task_id] = TaskOutcome(
                                    spec.task_id, "blocked", error="unreachable"
                                )
                    continue

                time.sleep(self.poll_interval)
                now = time.monotonic()

                # Collect finished futures.
                for task_id in [t for t, (h, _) in in_flight.items() if h.ready()]:
                    handle, _ = in_flight.pop(task_id)
                    spec = graph.task(task_id)
                    try:
                        _, ok, value, error, duration, spans, snapshot = handle.get()
                    except Exception as exc:  # noqa: BLE001 — pool-level fault
                        ok, value, error, duration = False, None, _format_error(exc), 0.0
                        spans, snapshot = (), None
                    if spans:
                        # Worker clocks have their own epoch; shift the
                        # shipped spans so the latest one ends "now" on the
                        # coordinator's axis, then adopt them under the
                        # current (run) span.
                        shift = tracer.now() - max(span.end for span in spans)
                        tracer.graft(spans, shift=shift)
                    if snapshot is not None:
                        metrics.merge(snapshot)
                    if observation.enabled and task_id in submitted_at:
                        waited = time.monotonic() - submitted_at.pop(task_id)
                        metrics.observe(
                            "task.queue_seconds", max(waited - duration, 0.0)
                        )
                    if ok:
                        self._cache_store(spec, value)
                        complete(spec, value, cached=False, duration=duration)
                        self._event("finished", task_id, seconds=round(duration, 6))
                        metrics.inc("executor.tasks.executed")
                    elif attempts[task_id] <= self._retries_for(spec):
                        self._event("retry", task_id, attempt=attempts[task_id])
                        metrics.inc("task.retry")
                        submit(spec)
                    else:
                        fail(spec, error or "unknown worker failure")

                # Enforce deadlines.  A stuck worker cannot be interrupted
                # cooperatively, so the whole pool is torn down and rebuilt;
                # innocent in-flight tasks are resubmitted free of charge.
                expired = [
                    task_id
                    for task_id, (_, deadline) in in_flight.items()
                    if deadline is not None and now > deadline
                ]
                if expired:
                    survivors = [t for t in in_flight if t not in expired]
                    in_flight.clear()
                    pool.terminate()
                    pool.join()
                    pool = context.Pool(processes=self.jobs)
                    for task_id in expired:
                        spec = graph.task(task_id)
                        self._event("timeout", task_id, attempt=attempts[task_id])
                        metrics.inc("task.timeout")
                        submitted_at.pop(task_id, None)
                        if attempts[task_id] <= self._retries_for(spec):
                            self._event("retry", task_id, attempt=attempts[task_id])
                            metrics.inc("task.retry")
                            submit(spec)
                        else:
                            fail(
                                spec,
                                f"timed out after {self._timeout_for(spec)}s "
                                f"({attempts[task_id]} attempt(s))",
                            )
                    resubmit_inflight(survivors)
        finally:
            pool.terminate()
            pool.join()
        return outcomes

    # -- entry point ---------------------------------------------------------

    def run(self, graph: TaskGraph) -> ExecutionReport:
        """Execute the graph and return the per-task outcome report.

        The run is bracketed by per-run marks on the cache counters and the
        metrics registry, so manifests always report *this run's* deltas —
        never lifetime totals of a reused cache or observation.  With an
        enabled observation and a run log, the recorded spans and the metric
        delta are also exported as ``trace.json`` / ``metrics.json`` next to
        the manifest.
        """
        observation = self.obs if self.obs is not None else current_observation()
        with observing(observation):
            tracer = observation.trace
            metrics = observation.metrics
            cache_mark = None if self.cache is None else self.cache.stats.snapshot()
            obs_mark = metrics.mark()
            span_mark = len(tracer.spans)
            started = time.perf_counter()
            self._event("run-start", tasks=len(graph), jobs=self.jobs)
            self._start_manifest(graph)
            with tracer.span(
                "run", category="executor", tasks=len(graph), jobs=self.jobs
            ):
                if self.jobs == 1:
                    outcomes = self._run_serial(graph, observation)
                else:
                    outcomes = self._run_parallel(graph, observation)
            report = ExecutionReport(outcomes, time.perf_counter() - started)
            self._event("run-finish", **report.summary())
            self._finish_manifest(graph, report, cache_mark, observation, obs_mark)
            if observation.enabled and self.log is not None:
                write_chrome_trace(
                    tracer.spans[span_mark:], self.log.run_dir / TRACE_FILENAME
                )
                write_metrics_snapshot(
                    metrics.delta_since(obs_mark),
                    self.log.run_dir / METRICS_FILENAME,
                )
            return report
