"""Worker-side task execution, shared by every remote transport.

:func:`execute_task` is the single worker-side runner: it resolves the
op through the registry, executes it under failure isolation (never
raises), and — when the coordinator requested observation — records the
task in a fresh process-local :class:`~repro.obs.Observation`, shipping
the spans plus a metrics snapshot back with the result.  The
``multiprocessing`` pool transport calls it through :func:`pool_entry`;
the socket transport's standalone workers call it from
:func:`serve_worker`.

The socket wire protocol is deliberately boring: each frame is an
8-byte big-endian length prefix followed by a pickled payload dict.
Messages:

* worker → coordinator ``{"type": "hello", "pid": ...}`` on connect;
* coordinator → worker ``{"type": "task", "task_id", "op", "params",
  "deps", "seed", "observe"}``;
* worker → coordinator ``{"type": "result", "payload": <result tuple>}``;
* coordinator → worker ``{"type": "shutdown"}``.

``repro worker --connect HOST:PORT`` runs :func:`serve_worker` until the
coordinator shuts it down or the connection drops.  ``--import MODULE``
(repeatable) imports extra op-registry modules before serving — the
standard study ops are always registered.
"""

from __future__ import annotations

import importlib
import os
import pickle
import socket
import struct
import time
from typing import Any, Mapping

from ..obs import Observation, observing
from ..obs.trace import TASK_CATEGORY
from .task import resolve_op

_LENGTH = struct.Struct(">Q")

#: Refuse frames beyond this size — a corrupt length prefix must not
#: trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 31


class ProtocolError(RuntimeError):
    """Raised on a malformed frame (bad length, oversized payload)."""


def _format_error(exc: BaseException) -> str:
    """A compact, picklable rendering of a worker-side exception."""
    import traceback

    trace = traceback.format_exc(limit=8)
    return f"{type(exc).__name__}: {exc}\n{trace}"


def execute_task(
    task_id: str,
    op_name: str,
    params: Mapping[str, Any],
    deps: dict[str, Any],
    seed: int,
    observe: bool,
) -> tuple[str, bool, Any, str | None, float, tuple[Any, ...], dict[str, Any] | None]:
    """Run one task attempt; never raises (failure isolation).

    Returns ``(task_id, ok, value, error, duration, spans, snapshot)``.
    ``spans``/``snapshot`` are empty unless ``observe`` is set, in which
    case the coordinator grafts the spans into its own trace and merges
    the counters.
    """
    start = time.perf_counter()
    if not observe:
        try:
            # Under a spawn start method a fresh worker has an empty
            # registry; importing the study module registers the standard
            # operations.
            from . import study as _study  # noqa: F401

            value = resolve_op(op_name)(params, deps, seed)
            return (task_id, True, value, None, time.perf_counter() - start, (), None)
        except BaseException as exc:  # noqa: BLE001 — isolate *any* worker fault
            return (
                task_id, False, None, _format_error(exc),
                time.perf_counter() - start, (), None,
            )
    observation = Observation()
    ok, value, error = True, None, None
    with observing(observation):
        span = observation.trace.span(task_id, category=TASK_CATEGORY, op=op_name)
        try:
            with span:
                from . import study as _study  # noqa: F401

                value = resolve_op(op_name)(params, deps, seed)
        except BaseException as exc:  # noqa: BLE001 — isolate *any* worker fault
            ok, error = False, _format_error(exc)
    observation.metrics.observe("task.exec_seconds", span.duration)
    observation.metrics.observe(f"task.exec_seconds.{op_name}", span.duration)
    return (
        task_id,
        ok,
        value,
        error,
        time.perf_counter() - start,
        tuple(observation.trace.spans),
        observation.metrics.snapshot(),
    )


def pool_entry(
    payload: tuple[str, str, Mapping[str, Any], dict[str, Any], int, bool],
) -> tuple[str, bool, Any, str | None, float, tuple[Any, ...], dict[str, Any] | None]:
    """``multiprocessing`` pool entry point over :func:`execute_task`."""
    return execute_task(*payload)


# -- frame protocol ----------------------------------------------------------


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Pickle ``message`` and send it as one length-prefixed frame."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a cleanly closed connection."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    message = pickle.loads(body)
    if not isinstance(message, dict):
        raise ProtocolError(f"frame payload is {type(message).__name__}, not dict")
    return message


def extract_frames(buffer: bytearray) -> list[dict[str, Any]]:
    """Pop every complete frame off a receive buffer (non-blocking side)."""
    messages: list[dict[str, Any]] = []
    while len(buffer) >= _LENGTH.size:
        (length,) = _LENGTH.unpack(bytes(buffer[: _LENGTH.size]))
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
        end = _LENGTH.size + length
        if len(buffer) < end:
            break
        message = pickle.loads(bytes(buffer[_LENGTH.size : end]))
        del buffer[:end]
        if not isinstance(message, dict):
            raise ProtocolError(
                f"frame payload is {type(message).__name__}, not dict"
            )
        messages.append(message)
    return messages


# -- standalone socket worker ------------------------------------------------


def parse_address(address: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (the host may be omitted: ``:9000``)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return (host or "127.0.0.1", int(port))


def serve_worker(address: str, imports: tuple[str, ...] = ()) -> int:
    """Connect to a coordinator and execute tasks until shutdown.

    Exit codes: 0 on coordinator-initiated shutdown or clean EOF, 1 when
    the connection drops mid-protocol.
    """
    for module in imports:
        importlib.import_module(module)
    from . import study as _study  # noqa: F401 — register the standard ops

    host, port = parse_address(address)
    sock = socket.create_connection((host, port))
    try:
        send_frame(sock, {"type": "hello", "pid": os.getpid()})
        while True:
            message = recv_frame(sock)
            if message is None or message.get("type") == "shutdown":
                return 0
            if message.get("type") != "task":
                continue
            result = execute_task(
                message["task_id"],
                message["op"],
                message["params"],
                message["deps"],
                message["seed"],
                message.get("observe", False),
            )
            send_frame(sock, {"type": "result", "payload": result})
    except (ConnectionError, BrokenPipeError, OSError):
        return 1
    finally:
        sock.close()
