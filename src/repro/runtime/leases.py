"""File-lock task leases for cooperative multi-executor runs.

Several :class:`~repro.runtime.executor.StudyExecutor` processes pointed
at one :class:`~repro.runtime.cache.ResultCache` directory coordinate
through small JSON lease files under ``<cache root>/leases/`` — one
``<digest>.lock`` per cacheable task, keyed by the task's content
address.  The protocol:

* **acquire** — write the claim payload to a private temp file, then
  ``os.link`` it to the lease path; hardlink creation is atomic and fails
  for everyone but one winner, and the payload is fully visible the
  instant the lease exists (no torn-read window).  The losers defer the
  task and poll the cache for the winner's result instead of recomputing
  it.
* **refresh** — the holder periodically rewrites its lease (atomic
  replace) pushing ``expires_at`` forward while the task is in flight.
* **steal** — a lease whose ``expires_at`` has passed (or whose payload
  is unreadable) belongs to a dead or wedged executor; any peer may
  atomically overwrite it with its own claim and run the task itself.
* **release** — the holder deletes the lease after the result has been
  stored in the cache (or after a terminal failure, so peers may retry).

Leases are an *efficiency* device, not a correctness one: the cache's
atomic, key-verified writes already make duplicate execution safe (last
write wins with identical bytes).  A stolen-but-alive task therefore
costs duplicated work, never a wrong result.  The expiry TTL should
exceed the longest expected task attempt; the executor refreshes held
leases at ``ttl / 3`` cadence while polling.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Iterable

from ..utility.atomic import atomic_write_text

#: Subdirectory of the cache root holding the lease files.
LEASES_DIRNAME = "leases"

#: Default lease time-to-live in seconds.
DEFAULT_TTL = 30.0

# Distinguishes executors that share a pid (e.g. threads in tests).
_OWNER_COUNTER = itertools.count()


class LeaseBoard:
    """Claims task digests through lease files under one store root."""

    def __init__(
        self,
        root: str | Path,
        owner: str | None = None,
        ttl: float = DEFAULT_TTL,
    ):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.root = Path(root)
        self.dir = self.root / LEASES_DIRNAME
        self.ttl = ttl
        self.owner = owner or f"pid{os.getpid()}-{next(_OWNER_COUNTER)}"

    # -- helpers -------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.dir / f"{digest}.lock"

    def _payload(self) -> str:
        now = time.time()
        return json.dumps(
            {
                "owner": self.owner,
                "pid": os.getpid(),
                "acquired_at": now,
                "expires_at": now + self.ttl,
            },
            sort_keys=True,
        )

    def holder(self, digest: str) -> dict[str, Any] | None:
        """The current lease payload, or ``None`` if absent/unreadable."""
        try:
            text = self._path(digest).read_text(encoding="utf-8")
            info = json.loads(text)
        except (OSError, ValueError):
            return None
        return info if isinstance(info, dict) else None

    # -- protocol ------------------------------------------------------------

    def claim(self, digest: str) -> str | None:
        """Try to claim a digest.

        Returns ``"acquired"`` on a fresh claim, ``"stolen"`` when an
        expired (or corrupt) peer lease was taken over, and ``None`` when
        a live peer holds the lease.
        """
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(digest)
        payload = self._payload()
        # Write the payload to a private temp file first, then hardlink it
        # to the lease path: link creation is atomic (exactly one winner)
        # and the payload is complete the instant the lease is visible, so
        # a racing reader can never observe a torn claim.
        tmp = self.dir / f".claim-{self.owner}.tmp"
        fd = os.open(tmp, os.O_CREAT | os.O_TRUNC | os.O_WRONLY)
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        try:
            os.link(tmp, path)
            return "acquired"
        except FileExistsError:
            info = self.holder(digest)
            expires = info.get("expires_at") if info else None
            if isinstance(expires, (int, float)) and expires > time.time():
                return None
            # Expired (dead executor) or unreadable: take it over.  Two
            # peers may both steal concurrently — that only duplicates
            # work; the cache's atomic writes absorb both results.
            atomic_write_text(path, payload)
            return "stolen"
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    def refresh(self, digests: Iterable[str]) -> None:
        """Push ``expires_at`` forward on every lease we still hold."""
        for digest in digests:
            info = self.holder(digest)
            if info is not None and info.get("owner") == self.owner:
                atomic_write_text(self._path(digest), self._payload())

    def release(self, digest: str) -> None:
        """Drop a lease we hold (no-op if a peer stole it meanwhile)."""
        info = self.holder(digest)
        if info is None or info.get("owner") == self.owner:
            try:
                self._path(digest).unlink()
            except FileNotFoundError:
                pass

    def outstanding(self) -> list[str]:
        """Digests with a lease file on disk (held by anyone)."""
        if not self.dir.exists():
            return []
        return sorted(p.stem for p in self.dir.glob("*.lock"))
