"""Run logs and manifests (single-writer and cooperative multi-writer).

A run directory holds two artifacts:

* ``events.jsonl`` — an append-only JSON-lines log, one event per task
  state transition (``cache-hit``, ``submitted``, ``finished``, ``failed``,
  ``timeout``, ``retry``, ``blocked``, plus the cooperative-scheduling
  kinds ``lease-wait``, ``lease-steal``, ``inline-fallback``) and
  run-level ``run-start`` / ``run-finish`` records.  Appending is
  crash-safe: a killed run leaves a readable prefix, never a torn file
  (at worst one truncated final line, which readers skip).
* ``manifest.json`` — the run's identity and final tallies, written
  atomically at start (``status: "running"``) and rewritten at the end, so
  an interrupted run is recognizable by its stale ``running`` status.

**Multi-writer runs.**  Two executors appending to one ``events.jsonl``
could interleave partial lines (plain ``open("a")`` is only atomic per
``write`` on most filesystems, and even then only up to ``PIPE_BUF``).
A :class:`RunLog` constructed with a ``writer_id`` therefore appends to
its *own* ``events.<writer_id>.jsonl`` (each record stamped with the
writer and a per-writer monotonic ``seq``) and writes its manifest to
``manifest.<writer_id>.json``.  :func:`merge_run_dir` — called from
:meth:`RunLog.finish` and by ``repro runs merge`` — stably merges every
per-writer log (ordered by ``ts``, then writer, then ``seq``) into the
canonical ``events.jsonl`` and derives one combined ``manifest.json``
whose tallies count each task's terminal state exactly once, so the
``ART009`` contract (``cache_hits + executed == completed``,
``completed + failed + blocked == tasks``) holds over the merged view.
The merged manifest additionally records ``writers`` and the raw
``cache_hit_events`` count (several cooperating executors may each
settle the same task from cache).

A run executed under an enabled observation (``repro study --trace``)
additionally drops ``trace.json`` (Chrome-trace spans) and ``metrics.json``
next to the manifest — suffixed per writer in cooperative runs.

These artifacts are plain data and are validated by the lint layer
(``ART009`` for the log/manifest, ``ART011`` for trace/metrics) like every
other checkable object in the pipeline.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Any, Iterable

from ..utility.atomic import atomic_writer

EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "manifest.json"
#: Written next to the manifest by a run under an enabled observation
#: (see :mod:`repro.obs`): a Chrome-trace span file and a flat metrics
#: snapshot, both covering exactly that run (validated by lint ART011).
TRACE_FILENAME = "trace.json"
METRICS_FILENAME = "metrics.json"

#: Event kinds the executor emits (ART009 validates against this set).
EVENT_KINDS = frozenset(
    {
        "run-start",
        "run-finish",
        "cache-hit",
        "submitted",
        "finished",
        "failed",
        "timeout",
        "retry",
        "blocked",
        "lease-wait",
        "lease-steal",
        "inline-fallback",
    }
)

_WRITER_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_WRITER_EVENTS = re.compile(r"^events\.(?P<writer>[A-Za-z0-9][A-Za-z0-9._-]*)\.jsonl$")


class RunLog:
    """Appends task events to ``events.jsonl`` inside one run directory.

    With a ``writer_id`` (cooperative runs) events go to a per-writer
    ``events.<writer_id>.jsonl`` instead, and :meth:`finish` merges every
    writer's log into the canonical ``events.jsonl``.
    """

    def __init__(self, run_dir: str | Path, writer_id: str | None = None):
        if writer_id is not None and not _WRITER_ID.match(writer_id):
            raise ValueError(
                f"writer_id {writer_id!r} must match {_WRITER_ID.pattern}"
            )
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.writer_id = writer_id
        self._seq = 0
        if writer_id is None:
            self._events_path = self.run_dir / EVENTS_FILENAME
            self._manifest_path = self.run_dir / MANIFEST_FILENAME
        else:
            self._events_path = self.run_dir / f"events.{writer_id}.jsonl"
            self._manifest_path = self.run_dir / f"manifest.{writer_id}.json"

    @property
    def events_path(self) -> Path:
        """Path of this writer's JSONL event log."""
        return self._events_path

    def artifact_path(self, name: str) -> Path:
        """Run-dir path for an export, suffixed per writer when shared.

        ``trace.json`` becomes ``trace.<writer_id>.json`` in a
        cooperative run so two executors never clobber each other.
        """
        if self.writer_id is None:
            return self.run_dir / name
        stem, dot, suffix = name.rpartition(".")
        if not dot:
            return self.run_dir / f"{name}.{self.writer_id}"
        return self.run_dir / f"{stem}.{self.writer_id}.{suffix}"

    def event(self, kind: str, task_id: str | None = None, **fields: Any) -> None:
        """Append one event record (flushed immediately)."""
        record: dict[str, Any] = {"ts": time.time(), "event": kind}
        if task_id is not None:
            record["task"] = task_id
        if self.writer_id is not None:
            record["writer"] = self.writer_id
            record["seq"] = self._seq
            self._seq += 1
        record.update(fields)
        with self._events_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")

    def write_manifest(self, manifest: dict[str, Any]) -> Path:
        """Atomically (re)write this writer's manifest; returns its path."""
        path = self._manifest_path
        with atomic_writer(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path

    def finish(self) -> Path:
        """Merge per-writer artifacts into the canonical run view.

        A no-op for single-writer logs.  Cooperative writers each call
        this as their run ends; the merge is recomputed from whatever is
        on disk, so the *last* finisher produces the complete view (and
        ``repro runs merge`` can always redo it deterministically).
        """
        if self.writer_id is None:
            return self._events_path
        return merge_run_dir(self.run_dir)


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse an ``events.jsonl`` file, skipping a torn trailing line."""
    records: list[dict[str, Any]] = []
    events_path = Path(path)
    if not events_path.exists():
        return records
    with events_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # A run killed mid-write leaves at most one torn final
                # line; everything before it is still valid history.
                continue
    return records


def read_manifest(run_dir: str | Path) -> dict[str, Any]:
    """Load ``manifest.json`` from a run directory."""
    with (Path(run_dir) / MANIFEST_FILENAME).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def summarize_events(events: Iterable[dict[str, Any]]) -> dict[str, int]:
    """Event-kind counts over an event stream (for reports and checks)."""
    counts: dict[str, int] = {}
    for record in events:
        kind = record.get("event", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts


# -- multi-writer merge ------------------------------------------------------


def run_dir_writers(run_dir: str | Path) -> list[str]:
    """Writer ids with a per-writer event log in a run directory."""
    writers = []
    for path in Path(run_dir).iterdir():
        match = _WRITER_EVENTS.match(path.name)
        if match:
            writers.append(match.group("writer"))
    return sorted(writers)


def merge_run_dir(run_dir: str | Path) -> Path:
    """Merge per-writer logs/manifests into ``events.jsonl``/``manifest.json``.

    Stable order: ``(ts, writer, seq)`` — per-writer streams keep their
    monotonic sequence, concurrent writers interleave by timestamp.  The
    merge is idempotent and side-effect-free on the per-writer files, so
    it can be re-run (``repro runs merge``) after every cooperating
    executor has exited to produce the deterministic final view.
    """
    run_path = Path(run_dir)
    writers = run_dir_writers(run_path)
    if not writers:
        return run_path / EVENTS_FILENAME
    records: list[dict[str, Any]] = []
    for writer in writers:
        records.extend(read_events(run_path / f"events.{writer}.jsonl"))
    records.sort(
        key=lambda r: (r.get("ts", 0.0), str(r.get("writer", "")), r.get("seq", 0))
    )
    events_path = run_path / EVENTS_FILENAME
    with atomic_writer(events_path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")

    manifests: dict[str, dict[str, Any]] = {}
    for writer in writers:
        manifest_path = run_path / f"manifest.{writer}.json"
        if not manifest_path.exists():
            continue
        try:
            with manifest_path.open("r", encoding="utf-8") as handle:
                manifests[writer] = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
    merged = _merged_manifest(writers, manifests, records)
    manifest_path = run_path / MANIFEST_FILENAME
    with atomic_writer(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return events_path


def _merged_manifest(
    writers: list[str],
    manifests: dict[str, dict[str, Any]],
    records: list[dict[str, Any]],
) -> dict[str, Any]:
    """One manifest over all writers, counting each task exactly once.

    Tallies are recomputed from the merged event stream rather than
    summed across per-writer manifests: two executors may both settle
    the same task (one executes, a peer takes the cache hit), and naive
    sums would double-count.  ``executed`` counts tasks with at least
    one ``finished`` event; every other completed task was a cache hit
    somewhere, so ``cache_hits = completed - executed`` and the ART009
    equations hold.  The raw per-writer hit count is preserved under
    ``cache_hit_events`` (which ART009 checks instead for merged logs).
    """
    base: dict[str, Any] = {}
    for writer in writers:
        if writer in manifests:
            base = manifests[writer]
            break
    finished_tasks: set[str] = set()
    hit_tasks: set[str] = set()
    failed_tasks: set[str] = set()
    blocked_tasks: set[str] = set()
    retry_events = 0
    hit_events = 0
    for record in records:
        kind = record.get("event")
        task = record.get("task")
        if kind == "retry":
            retry_events += 1
        if kind == "cache-hit":
            hit_events += 1
        if not isinstance(task, str):
            continue
        if kind == "finished":
            finished_tasks.add(task)
        elif kind == "cache-hit":
            hit_tasks.add(task)
        elif kind == "failed":
            failed_tasks.add(task)
        elif kind == "blocked":
            blocked_tasks.add(task)
    done = finished_tasks | hit_tasks
    failed = failed_tasks - done
    blocked = blocked_tasks - done - failed
    statuses = [manifests.get(writer, {}).get("status") for writer in writers]
    if any(status in (None, "running") for status in statuses):
        status = "running"
    elif failed or blocked or any(status == "failed" for status in statuses):
        status = "failed"
    else:
        status = "completed"
    merged = {
        key: base[key]
        for key in ("tasks", "task_ids", "study_seed", "jobs", "transport")
        if key in base
    }
    merged.update(
        {
            "status": status,
            "writers": writers,
            "completed": len(done),
            "executed": len(finished_tasks),
            "cache_hits": len(done) - len(finished_tasks),
            "failed": len(failed),
            "blocked": len(blocked),
            "retries": retry_events,
            "cache_hit_events": hit_events,
        }
    )
    started = [
        m.get("started_at") for m in manifests.values()
        if isinstance(m.get("started_at"), (int, float))
    ]
    finished = [
        m.get("finished_at") for m in manifests.values()
        if isinstance(m.get("finished_at"), (int, float))
    ]
    if started:
        merged["started_at"] = min(started)
    if finished:
        merged["finished_at"] = max(finished)
    walls = [
        m.get("wall_seconds") for m in manifests.values()
        if isinstance(m.get("wall_seconds"), (int, float))
    ]
    if walls:
        merged["wall_seconds"] = max(walls)
    return merged
