"""Run logs and manifests.

A run directory holds two artifacts:

* ``events.jsonl`` — an append-only JSON-lines log, one event per task
  state transition (``cache-hit``, ``submitted``, ``finished``, ``failed``,
  ``timeout``, ``retry``, ``blocked``) plus run-level ``run-start`` /
  ``run-finish`` records.  Appending is crash-safe: a killed run leaves a
  readable prefix, never a torn file (at worst one truncated final line,
  which readers skip).
* ``manifest.json`` — the run's identity and final tallies, written
  atomically at start (``status: "running"``) and rewritten at the end, so
  an interrupted run is recognizable by its stale ``running`` status.

A run executed under an enabled observation (``repro study --trace``)
additionally drops ``trace.json`` (Chrome-trace spans) and ``metrics.json``
(a flat counter/histogram snapshot) next to the manifest.

These artifacts are plain data and are validated by the lint layer
(``ART009`` for the log/manifest, ``ART011`` for trace/metrics) like every
other checkable object in the pipeline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable

from ..utility.atomic import atomic_writer

EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "manifest.json"
#: Written next to the manifest by a run under an enabled observation
#: (see :mod:`repro.obs`): a Chrome-trace span file and a flat metrics
#: snapshot, both covering exactly that run (validated by lint ART011).
TRACE_FILENAME = "trace.json"
METRICS_FILENAME = "metrics.json"

#: Event kinds the executor emits (ART009 validates against this set).
EVENT_KINDS = frozenset(
    {
        "run-start",
        "run-finish",
        "cache-hit",
        "submitted",
        "finished",
        "failed",
        "timeout",
        "retry",
        "blocked",
    }
)


class RunLog:
    """Appends task events to ``events.jsonl`` inside one run directory."""

    def __init__(self, run_dir: str | Path):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._events_path = self.run_dir / EVENTS_FILENAME

    @property
    def events_path(self) -> Path:
        """Path of the JSONL event log."""
        return self._events_path

    def event(self, kind: str, task_id: str | None = None, **fields: Any) -> None:
        """Append one event record (flushed immediately)."""
        record: dict[str, Any] = {"ts": time.time(), "event": kind}
        if task_id is not None:
            record["task"] = task_id
        record.update(fields)
        with self._events_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")

    def write_manifest(self, manifest: dict[str, Any]) -> Path:
        """Atomically (re)write ``manifest.json``; returns its path."""
        path = self.run_dir / MANIFEST_FILENAME
        with atomic_writer(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse an ``events.jsonl`` file, skipping a torn trailing line."""
    records: list[dict[str, Any]] = []
    events_path = Path(path)
    if not events_path.exists():
        return records
    with events_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # A run killed mid-write leaves at most one torn final
                # line; everything before it is still valid history.
                continue
    return records


def read_manifest(run_dir: str | Path) -> dict[str, Any]:
    """Load ``manifest.json`` from a run directory."""
    with (Path(run_dir) / MANIFEST_FILENAME).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def summarize_events(events: Iterable[dict[str, Any]]) -> dict[str, int]:
    """Event-kind counts over an event stream (for reports and checks)."""
    counts: dict[str, int] = {}
    for record in events:
        kind = record.get("event", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
