"""repro.runtime — parallel, content-addressed, resumable study execution.

The execution engine behind every grid-shaped evaluation in the package: a
study (algorithm × dataset × parameters) compiles to a DAG of tasks
(anonymize → measure property vectors → compare), ready tasks run on a
process pool with per-task timeout/retry and ``hashlib``-split seed
propagation, and results are memoized in a content-addressed on-disk store
keyed by ``(dataset fingerprint, algorithm name+params, metric id, code
epoch)``.  Re-running an unchanged grid is pure cache hits; an interrupted
run resumes from its completed prefix.

Quick start::

    from repro.runtime import (
        AlgorithmSpec, DatasetSpec, ResultCache, StudySpec, run_study,
    )

    spec = StudySpec(
        dataset=DatasetSpec.of("adult", rows=300, seed=42),
        algorithms=tuple(
            AlgorithmSpec.of(name, k=k)
            for name in ("datafly", "mondrian", "samarati")
            for k in (2, 5, 10)
        ),
    )
    result = run_study(spec, jobs=4, cache=ResultCache(".repro-cache"))
    print(result.grid_rows())
"""

from .cache import MISS, CacheError, CacheStats, ResultCache
from .certify import (
    CertificateError,
    OpCertificates,
    default_certificates,
    ensure_transport_allowed,
    transport_allowed,
)
from .events import (
    EVENT_KINDS,
    RunLog,
    merge_run_dir,
    read_events,
    read_manifest,
    run_dir_writers,
    summarize_events,
)
from .executor import (
    ExecutionError,
    ExecutionReport,
    StudyExecutor,
    TaskOutcome,
)
from .leases import LeaseBoard
from .transports import (
    TRANSPORT_NAMES,
    InlineTransport,
    PoolTransport,
    SocketTransport,
    TaskPayload,
    TaskResult,
    TransportError,
    TransportRefused,
    WorkerTransport,
    create_transport,
)
from .study import (
    ALGORITHM_FACTORIES,
    DATASET_PROVIDERS,
    SCALAR_MEASURES,
    VECTOR_PROPERTIES,
    AlgorithmSpec,
    DatasetSpec,
    StudyError,
    StudyResult,
    StudySpec,
    build_study,
    format_study_grid,
    run_release_grid,
    run_study,
)
from .task import (
    CODE_EPOCH,
    CacheKey,
    TaskError,
    TaskGraph,
    TaskSpec,
    canonical_json,
    derive_seed,
    register_op,
    registered_ops,
    resolve_op,
)

__all__ = [
    "ALGORITHM_FACTORIES",
    "AlgorithmSpec",
    "CacheError",
    "CacheKey",
    "CacheStats",
    "CertificateError",
    "CODE_EPOCH",
    "DATASET_PROVIDERS",
    "DatasetSpec",
    "EVENT_KINDS",
    "ExecutionError",
    "ExecutionReport",
    "InlineTransport",
    "LeaseBoard",
    "MISS",
    "OpCertificates",
    "PoolTransport",
    "ResultCache",
    "RunLog",
    "SCALAR_MEASURES",
    "SocketTransport",
    "StudyError",
    "StudyExecutor",
    "StudyResult",
    "StudySpec",
    "TaskError",
    "TaskGraph",
    "TaskOutcome",
    "TaskPayload",
    "TaskResult",
    "TaskSpec",
    "TRANSPORT_NAMES",
    "TransportError",
    "TransportRefused",
    "VECTOR_PROPERTIES",
    "WorkerTransport",
    "build_study",
    "canonical_json",
    "create_transport",
    "default_certificates",
    "derive_seed",
    "ensure_transport_allowed",
    "format_study_grid",
    "merge_run_dir",
    "read_events",
    "read_manifest",
    "register_op",
    "registered_ops",
    "resolve_op",
    "run_dir_writers",
    "run_release_grid",
    "run_study",
    "summarize_events",
    "transport_allowed",
]
