"""The ``repro study`` subcommand.

Runs an algorithm × k grid through the study runtime: parallel execution
(``--jobs``), content-addressed memoization (``--cache-dir``), JSONL run
logs (``--run-dir``), per-task timeout/retry, and a ``--expect-cached``
assertion for CI warm-cache checks (exit code 3 when anything executed).
``--trace FILE`` / ``--metrics FILE`` enable the observability plane
(:mod:`repro.obs`) and export a Chrome-trace span file and a flat metrics
snapshot for the whole invocation.
"""

from __future__ import annotations

import argparse

from ..obs import Observation
from ..obs.export import write_chrome_trace, write_metrics_snapshot
from .cache import ResultCache
from .certify import CertificateError
from .events import RunLog, merge_run_dir, read_manifest, summarize_events
from .executor import ExecutionError
from .transports import TRANSPORT_NAMES
from .study import (
    ALGORITHM_FACTORIES,
    DATASET_PROVIDERS,
    SCALAR_MEASURES,
    VECTOR_PROPERTIES,
    AlgorithmSpec,
    DatasetSpec,
    StudySpec,
    format_study_grid,
    run_study,
)

#: Exit code for a failed ``--expect-cached`` assertion.
EXIT_NOT_CACHED = 3


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro study`` arguments to a subcommand parser."""
    parser.add_argument(
        "--algorithms",
        nargs="+",
        choices=sorted(ALGORITHM_FACTORIES),
        default=["datafly", "mondrian", "samarati"],
        help="grid rows: one cell per algorithm per k",
    )
    parser.add_argument(
        "--ks",
        type=int,
        nargs="+",
        default=[2, 5, 10],
        help="grid columns: k values (default: 2 5 10)",
    )
    parser.add_argument(
        "--dataset",
        choices=sorted(DATASET_PROVIDERS),
        default="adult",
        help="workload provider (default: adult)",
    )
    parser.add_argument("--rows", type=int, default=300)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in-process, the default)",
    )
    parser.add_argument(
        "--transport",
        choices=list(TRANSPORT_NAMES),
        default=None,
        help="where task attempts run: inline (coordinator loop), pool "
        "(multiprocessing), socket (repro worker subprocesses); default "
        "inline for --jobs 1, pool otherwise",
    )
    parser.add_argument(
        "--strict-ops",
        action="store_true",
        help="fail fast when the study graph contains an op the "
        "lint certificates refuse for the chosen transport",
    )
    parser.add_argument(
        "--cooperate",
        action="store_true",
        help="claim tasks through file-lock leases under the cache root "
        "so several `repro study` processes can share this study",
    )
    parser.add_argument(
        "--writer-id",
        default=None,
        help="log events to events.<id>.jsonl (required when several "
        "cooperating executors share one --run-dir)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="cooperative lease expiry in seconds (default 30; must "
        "exceed the longest expected task attempt)",
    )
    parser.add_argument(
        "--measures",
        nargs="+",
        choices=sorted(SCALAR_MEASURES),
        default=["k_achieved", "suppressed", "lm", "dm"],
        help="scalar measures reported per cell",
    )
    parser.add_argument(
        "--properties",
        nargs="+",
        choices=sorted(VECTOR_PROPERTIES),
        default=["equivalence-class-size"],
        help="per-tuple property vectors induced per cell",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="content-addressed result store (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable memoization entirely",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=int,
        default=None,
        help="evict least-recently-used cache entries beyond this size",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="write events.jsonl + manifest.json into this directory",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (parallel mode)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="retry budget per task (default: 0)",
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the pairwise dominance comparison tasks",
    )
    parser.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail (exit 3) unless every task was a cache hit",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable span tracing and write a Chrome-trace JSON file",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="enable metric collection and write a JSON snapshot file",
    )


def run(args: argparse.Namespace) -> int:
    """Execute ``repro study`` and return the process exit code."""
    dataset = DatasetSpec.of(args.dataset, rows=args.rows, seed=args.seed)
    cells = tuple(
        AlgorithmSpec.of(algorithm, k=k)
        for algorithm in args.algorithms
        for k in args.ks
    )
    spec = StudySpec(
        dataset=dataset,
        algorithms=cells,
        scalar_measures=tuple(args.measures),
        vector_properties=tuple(args.properties),
        compare=not args.no_compare,
        seed=args.seed,
    )
    cache = None
    if not args.no_cache:
        max_bytes = None if args.cache_max_mb is None else args.cache_max_mb * 1024 * 1024
        cache = ResultCache(args.cache_dir, max_bytes=max_bytes)
    if args.cooperate and cache is None:
        print("--cooperate requires a cache (drop --no-cache)")
        return 2
    log = RunLog(args.run_dir, writer_id=args.writer_id) if args.run_dir else None
    observation = Observation() if (args.trace or args.metrics) else None

    try:
        result = run_study(
            spec,
            jobs=args.jobs,
            cache=cache,
            log=log,
            timeout=args.timeout,
            retries=args.retries,
            obs=observation,
            transport=args.transport,
            cooperate=args.cooperate,
            lease_ttl=args.lease_ttl,
            strict_ops=args.strict_ops,
        )
    except CertificateError as exc:
        print(f"--strict-ops: {exc}")
        return 2
    except ExecutionError as exc:
        print(f"study failed: {exc}")
        return 1

    if observation is not None:
        if args.trace:
            path = write_chrome_trace(observation.trace.spans, args.trace)
            print(f"trace: {len(observation.trace.spans)} span(s) -> {path}")
        if args.metrics:
            path = write_metrics_snapshot(observation.metrics.snapshot(), args.metrics)
            print(f"metrics: snapshot -> {path}")

    print(
        f"study: {len(args.algorithms)} algorithm(s) x {len(args.ks)} k value(s) "
        f"on {args.dataset}[rows={args.rows},seed={args.seed}]"
    )
    print(format_study_grid(result))
    for prop, comparison in result.comparisons.items():
        wins = comparison["wins"]
        ranked = ", ".join(
            f"{name}({count})"
            for name, count in sorted(wins.items(), key=lambda kv: -kv[1])
        )
        print(f"dominance wins [{prop}]: {ranked}")

    summary = result.report.summary()
    rate = result.report.cache_hit_rate() * 100.0
    print(
        f"tasks: {summary['tasks']}  executed: {summary['executed']}  "
        f"cache hits: {summary['cache_hits']} ({rate:.1f}%)  "
        f"failed: {summary['failed']}  retries: {summary['retries']}  "
        f"wall: {summary['wall_seconds']:.2f}s  jobs: {args.jobs}"
    )
    if args.expect_cached and result.report.executed > 0:
        print(
            f"--expect-cached: {result.report.executed} task(s) executed; "
            "the store was not warm"
        )
        return EXIT_NOT_CACHED
    return 0


def configure_worker_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro worker`` arguments to a subcommand parser."""
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address announced by the socket transport",
    )
    parser.add_argument(
        "--import",
        dest="imports",
        action="append",
        default=[],
        metavar="MODULE",
        help="import an extra op-registry module before serving "
        "(repeatable; the standard study ops are always registered)",
    )


def run_worker(args: argparse.Namespace) -> int:
    """Execute ``repro worker``: serve tasks until the coordinator stops."""
    from .worker import serve_worker

    return serve_worker(args.connect, imports=tuple(args.imports))


def configure_runs_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro runs`` arguments to a subcommand parser."""
    actions = parser.add_subparsers(dest="runs_command", required=True)
    merge = actions.add_parser(
        "merge",
        help="merge per-writer events/manifests of a cooperative run "
        "into the canonical events.jsonl + manifest.json",
    )
    merge.add_argument("run_dir", help="run directory shared by the writers")


def run_runs(args: argparse.Namespace) -> int:
    """Execute ``repro runs`` maintenance actions."""
    if args.runs_command == "merge":
        from .events import read_events, run_dir_writers

        writers = run_dir_writers(args.run_dir)
        events_path = merge_run_dir(args.run_dir)
        events = read_events(events_path)
        try:
            manifest = read_manifest(args.run_dir)
        except (OSError, ValueError):
            manifest = {}
        counts = summarize_events(events)
        ordered = ", ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))
        print(
            f"merged {len(writers)} writer(s) ({', '.join(writers) or 'none'}) "
            f"-> {events_path} ({len(events)} event(s))"
        )
        print(f"events: {ordered}")
        print(
            f"status: {manifest.get('status')}  tasks: {manifest.get('tasks')}  "
            f"completed: {manifest.get('completed')}  "
            f"executed: {manifest.get('executed')}  "
            f"cache hits: {manifest.get('cache_hits')}  "
            f"failed: {manifest.get('failed')}"
        )
        return 0
    return 2
