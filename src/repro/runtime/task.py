"""Task specifications and the study DAG.

A study is a directed acyclic graph of :class:`TaskSpec` nodes.  Each task
names an *operation* from the process-safe registry (operations are resolved
by name, so a spec is picklable and can cross a worker-process boundary),
carries a JSON-able parameter mapping, and optionally a :class:`CacheKey`
under which its result is memoized by the content-addressed store.

Seed propagation is split off the study seed with :func:`derive_seed` — a
``hashlib``-based splitter (no ``numpy``, no global RNG state) so a task's
seed depends only on ``(study seed, task id)``, never on scheduling order.
Parallel runs are therefore bit-identical to serial runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

#: Bumped whenever the semantics of an operation change in a way that
#: invalidates previously cached results.  Part of every cache key.
#: "2": measurement moved to the columnar plane (interned codes, level
#: tables, incremental partitions) — outputs are pinned bit-identical to
#: the row plane, but row-plane-era cache entries must not satisfy
#: columnar-era lookups.
#: "3": generators rebuilt on the counter PRNG (byte-identical with and
#: without numpy) and stochastic algorithms moved to ``random.Random`` —
#: datasets and seeded algorithm outputs changed, so epoch-2 cache
#: entries must not satisfy epoch-3 lookups.
CODE_EPOCH = "3"


class TaskError(ValueError):
    """Raised for malformed task specs or graphs."""


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for cache-key digests.

    Keys are sorted and separators fixed so the same logical payload always
    produces the same byte string regardless of dict construction order.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def derive_seed(study_seed: int, task_id: str) -> int:
    """Split a per-task seed off the study seed.

    Pure ``hashlib`` (sha256 over ``"<study seed>:<task id>"``), so the
    result is deterministic across processes and independent of execution
    order — the property that makes parallel runs bit-identical to serial
    ones.  Returns a non-negative 63-bit integer, valid for both
    ``random.seed`` and ``numpy.random.default_rng``.
    """
    digest = hashlib.sha256(f"{study_seed}:{task_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class CacheKey:
    """The content address of one task result.

    The four components the runtime keys results by: the dataset
    fingerprint (:meth:`repro.datasets.dataset.Dataset.fingerprint`), the
    algorithm name + canonical parameters, the metric id (empty for
    anonymization tasks) and the code epoch.
    """

    dataset: str
    algorithm: str
    metric: str = ""
    epoch: str = CODE_EPOCH

    def digest(self) -> str:
        """The sha256 content address of this key."""
        payload = canonical_json(
            {
                "dataset": self.dataset,
                "algorithm": self.algorithm,
                "metric": self.metric,
                "epoch": self.epoch,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- operation registry ------------------------------------------------------

#: name -> (callable, inline_only).  Operations run as
#: ``fn(params, deps, seed)`` where ``deps`` maps dependency task id to the
#: dependency's result value.
_OPERATIONS: dict[str, tuple[Callable[[Mapping[str, Any], Mapping[str, Any], int], Any], bool]] = {}


def register_op(
    name: str, inline_only: bool = False
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register an operation under ``name`` (decorator).

    ``inline_only`` marks operations whose parameters may hold arbitrary
    Python callables (and therefore cannot cross a process boundary); the
    executor always runs those in the coordinating process.  Re-registering
    a name replaces the previous operation — convenient for tests.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        _OPERATIONS[name] = (fn, inline_only)
        return fn

    return decorate


def resolve_op(name: str) -> Callable[[Mapping[str, Any], Mapping[str, Any], int], Any]:
    """The operation registered under ``name``."""
    try:
        return _OPERATIONS[name][0]
    except KeyError:
        raise TaskError(f"unknown operation {name!r}") from None


def registered_ops() -> dict[str, bool]:
    """``name -> inline_only`` for every registered operation, sorted.

    The dynamic counterpart of the static op discovery in
    :mod:`repro.lint.callgraph`; the two are compared in tests so the
    certifier can never silently miss an operation.
    """
    return {name: inline for name, (_, inline) in sorted(_OPERATIONS.items())}


def op_is_inline_only(name: str) -> bool:
    """Whether the named operation must run in the coordinating process."""
    try:
        return _OPERATIONS[name][1]
    except KeyError:
        raise TaskError(f"unknown operation {name!r}") from None


@dataclass(frozen=True)
class TaskSpec:
    """One node of a study DAG.

    Parameters
    ----------
    task_id:
        Unique, stable identifier within the graph.
    op:
        Name of a registered operation (see :func:`register_op`).
    params:
        Operation parameters.  Must be picklable; JSON-able whenever the
        task may run in a worker process.
    deps:
        Ids of tasks whose results this task consumes.
    key:
        Content-address for memoization; ``None`` disables caching.
    timeout:
        Per-attempt wall-clock limit in seconds (enforced in parallel
        mode); ``None`` means unlimited.
    retries:
        How many times a failed or timed-out attempt is retried.
    """

    task_id: str
    op: str
    params: Mapping[str, Any] = field(default_factory=dict)
    deps: tuple[str, ...] = ()
    key: CacheKey | None = None
    timeout: float | None = None
    retries: int = 0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise TaskError("task_id must be non-empty")
        if self.retries < 0:
            raise TaskError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise TaskError(f"timeout must be positive, got {self.timeout}")


class TaskGraph:
    """An insertion-ordered DAG of :class:`TaskSpec` nodes.

    Tasks must be added after all of their dependencies, which makes cycles
    unrepresentable and gives :meth:`__iter__` a valid topological order
    for free.
    """

    def __init__(self) -> None:
        self._tasks: dict[str, TaskSpec] = {}

    def add(self, spec: TaskSpec) -> TaskSpec:
        """Add one task; its dependencies must already be present."""
        if spec.task_id in self._tasks:
            raise TaskError(f"duplicate task id {spec.task_id!r}")
        missing = [dep for dep in spec.deps if dep not in self._tasks]
        if missing:
            raise TaskError(
                f"task {spec.task_id!r} depends on unknown tasks {missing}; "
                "add dependencies first (cycles are unrepresentable)"
            )
        # Resolve eagerly so an unregistered operation fails at build time,
        # not halfway through a grid.
        resolve_op(spec.op)
        self._tasks[spec.task_id] = spec
        return spec

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self._tasks.values())

    def __contains__(self, task_id: object) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> TaskSpec:
        """The spec with the given id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskError(f"unknown task {task_id!r}") from None

    @property
    def task_ids(self) -> tuple[str, ...]:
        """All task ids, in topological (insertion) order."""
        return tuple(self._tasks)

    def dependents(self, task_id: str) -> tuple[str, ...]:
        """Ids of tasks that consume ``task_id``'s result (direct only)."""
        return tuple(
            spec.task_id for spec in self._tasks.values() if task_id in spec.deps
        )

    def ready(self, completed: set[str], excluded: set[str]) -> list[TaskSpec]:
        """Tasks whose dependencies are all completed, in insertion order.

        ``excluded`` holds ids that must not be scheduled (already running,
        finished, or transitively blocked by a failure).
        """
        return [
            spec
            for spec in self._tasks.values()
            if spec.task_id not in completed
            and spec.task_id not in excluded
            and all(dep in completed for dep in spec.deps)
        ]
