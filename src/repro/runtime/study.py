"""High-level study builder: algorithm × parameter × dataset grids.

A *study* is the paper's experimental unit: run a family of disclosure
control algorithms over a workload, induce property vectors on every
release, and compare them pairwise (Sections 4–5).  This module turns a
declarative :class:`StudySpec` into a task DAG — one ``anonymize`` task per
grid cell, ``measure`` tasks per (cell, metric), and ``compare`` tasks per
property — and runs it on the :class:`~repro.runtime.executor.StudyExecutor`
with content-addressed memoization.

Everything is referenced by *name* through registries (dataset providers,
algorithm factories, scalar measures, vector properties), so task specs stay
picklable and JSON-able: exactly what the cache keys and worker processes
need.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Any, Callable, Mapping, Sequence

from ..anonymize.algorithms import (
    BottomUpGeneralization,
    Datafly,
    GeneticAnonymizer,
    Incognito,
    KMemberClustering,
    Mondrian,
    MuArgus,
    OptimalLattice,
    RandomRecoding,
    Samarati,
    TopDownSpecialization,
)
from ..anonymize.engine import Anonymization
from ..core import properties as props
from ..core.indices.unary import GiniIndex
from ..datasets.adult import adult_dataset, adult_hierarchies
from ..datasets.dataset import Dataset
from ..datasets.hospital import hospital_dataset, hospital_hierarchies
from ..hierarchy.base import Hierarchy
from ..utility.discernibility import discernibility
from ..utility.loss_metric import general_loss
from .cache import ResultCache
from .events import RunLog
from .executor import ExecutionReport, StudyExecutor
from .task import CacheKey, TaskGraph, TaskSpec, canonical_json, derive_seed, register_op


class StudyError(ValueError):
    """Raised for malformed study specifications."""


# -- registries --------------------------------------------------------------

#: provider name -> builder(**params) returning (dataset, hierarchies).
DATASET_PROVIDERS: dict[str, Callable[..., tuple[Dataset, dict[str, Hierarchy]]]] = {
    "adult": lambda rows=500, seed=42: (
        adult_dataset(rows, seed=seed),
        adult_hierarchies(),
    ),
    "hospital": lambda rows=500, seed=0: (
        hospital_dataset(rows, seed=seed),
        hospital_hierarchies(),
    ),
}

#: algorithm name -> Anonymizer factory (constructor kwargs = spec params).
ALGORITHM_FACTORIES: dict[str, Callable[..., Any]] = {
    "datafly": Datafly,
    "samarati": Samarati,
    "mondrian": Mondrian,
    "optimal": OptimalLattice,
    "muargus": MuArgus,
    "incognito": Incognito,
    "topdown": TopDownSpecialization,
    "bottomup": BottomUpGeneralization,
    "clustering": KMemberClustering,
    "genetic": GeneticAnonymizer,
    "random-recoding": RandomRecoding,
}

_GINI = GiniIndex()

#: scalar measure id -> fn(release, hierarchies) -> float.  The ids match
#: the columns of :func:`repro.analysis.sweep.default_measures`.
SCALAR_MEASURES: dict[str, Callable[[Anonymization, Mapping[str, Hierarchy]], float]] = {
    "k_achieved": lambda release, _h: float(release.k()),
    "suppressed": lambda release, _h: float(len(release.suppressed)),
    "class_gini": lambda release, _h: _GINI.value(
        props.equivalence_class_size(release)
    ),
    "lm": lambda release, hierarchies: general_loss(release, hierarchies),
    "dm": lambda release, _h: float(discernibility(release)),
}

#: vector property id -> fn(release, hierarchies) -> PropertyVector.
VECTOR_PROPERTIES: dict[str, Callable[[Anonymization, Mapping[str, Hierarchy]], Any]] = {
    "equivalence-class-size": lambda release, _h: props.equivalence_class_size(release),
    "breach-probability": lambda release, _h: props.breach_probability(release),
    "sensitive-value-count": lambda release, _h: props.sensitive_value_count(release),
    "tuple-utility": lambda release, hierarchies: props.tuple_utility(
        release, hierarchies
    ),
    "discernibility-penalty": lambda release, _h: props.discernibility_penalty(release),
}


# -- specifications ----------------------------------------------------------

def _canonical_items(params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """A dataset named by provider + parameters (not by object identity)."""

    provider: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, provider: str, **params: Any) -> "DatasetSpec":
        """Build a spec from keyword parameters."""
        if provider not in DATASET_PROVIDERS:
            raise StudyError(
                f"unknown dataset provider {provider!r}; "
                f"choose from {sorted(DATASET_PROVIDERS)}"
            )
        return cls(provider, _canonical_items(params))

    def as_payload(self) -> dict[str, Any]:
        """The JSON-able task-parameter form of this spec."""
        return {"provider": self.provider, "params": dict(self.params)}

    def materialize(self) -> tuple[Dataset, dict[str, Hierarchy]]:
        """Build the dataset and its hierarchies."""
        return _materialize_dataset(self.provider, self.params)


@dataclasses.dataclass(frozen=True)
class AlgorithmSpec:
    """One grid cell: an algorithm name plus constructor parameters."""

    algorithm: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, algorithm: str, **params: Any) -> "AlgorithmSpec":
        """Build a spec from keyword parameters."""
        if algorithm not in ALGORITHM_FACTORIES:
            raise StudyError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {sorted(ALGORITHM_FACTORIES)}"
            )
        return cls(algorithm, _canonical_items(params))

    @property
    def label(self) -> str:
        """Human-readable cell label, e.g. ``datafly[k=5]``."""
        rendered = ",".join(f"{name}={value}" for name, value in self.params)
        return f"{self.algorithm}[{rendered}]" if rendered else self.algorithm

    def as_payload(self) -> dict[str, Any]:
        """The JSON-able task-parameter form of this spec."""
        return {"algorithm": self.algorithm, "params": dict(self.params)}

    def build(self) -> Any:
        """Construct the configured :class:`Anonymizer`."""
        factory = ALGORITHM_FACTORIES[self.algorithm]
        return factory(**dict(self.params))

    def with_seed(self, study_seed: int) -> "AlgorithmSpec":
        """Inject an explicit derived seed when the factory accepts one.

        Seeds become part of the spec (and therefore of the cache key)
        rather than being resolved implicitly at run time.
        """
        params = dict(self.params)
        if "seed" in params:
            return self
        factory = ALGORITHM_FACTORIES[self.algorithm]
        try:
            accepts_seed = "seed" in inspect.signature(factory).parameters
        except (TypeError, ValueError):
            accepts_seed = False
        if not accepts_seed:
            return self
        params["seed"] = derive_seed(study_seed, f"algorithm:{self.label}")
        return AlgorithmSpec(self.algorithm, _canonical_items(params))


@dataclasses.dataclass(frozen=True)
class StudySpec:
    """A declarative study: dataset × algorithms × metrics.

    Parameters
    ----------
    dataset:
        The workload every algorithm anonymizes.
    algorithms:
        The grid cells, in report order.
    scalar_measures:
        Ids from :data:`SCALAR_MEASURES` evaluated per cell.
    vector_properties:
        Ids from :data:`VECTOR_PROPERTIES` inducing per-tuple property
        vectors per cell (Definition 1).
    compare:
        Whether to add pairwise ▶-dominance comparison tasks per property.
    seed:
        Study seed; per-task seeds are derived from it by ``hashlib``
        splitting.
    """

    dataset: DatasetSpec
    algorithms: tuple[AlgorithmSpec, ...]
    scalar_measures: tuple[str, ...] = ("k_achieved", "suppressed", "lm", "dm")
    vector_properties: tuple[str, ...] = ("equivalence-class-size",)
    compare: bool = True
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise StudyError("study requires at least one algorithm cell")
        unknown = [m for m in self.scalar_measures if m not in SCALAR_MEASURES]
        unknown += [p for p in self.vector_properties if p not in VECTOR_PROPERTIES]
        if unknown:
            raise StudyError(f"unknown measure/property ids: {unknown}")


# -- worker-side materialization ---------------------------------------------

_DATASET_MEMO: dict[tuple[str, tuple[tuple[str, Any], ...]], tuple[Dataset, dict[str, Hierarchy]]] = {}


def _materialize_dataset(
    provider: str, params: tuple[tuple[str, Any], ...]
) -> tuple[Dataset, dict[str, Hierarchy]]:
    """Build (dataset, hierarchies), memoized per process.

    Workers regenerate the workload from its spec instead of receiving a
    pickled copy per task; providers are deterministic, so every process
    sees the identical table.
    """
    key = (provider, params)
    if key not in _DATASET_MEMO:
        try:
            builder = DATASET_PROVIDERS[provider]
        except KeyError:
            raise StudyError(f"unknown dataset provider {provider!r}") from None
        _DATASET_MEMO[key] = builder(**dict(params))  # lint: disable=REP201 -- idempotent per-process memo of a deterministic provider; every worker converges to the identical value
    return _DATASET_MEMO[key]


def _dataset_from_payload(payload: Mapping[str, Any]) -> tuple[Dataset, dict[str, Hierarchy]]:
    return _materialize_dataset(
        payload["provider"], _canonical_items(payload["params"])
    )


# -- operations --------------------------------------------------------------

@register_op("anonymize")
def _op_anonymize(params: Mapping[str, Any], deps: Mapping[str, Any], seed: int) -> Anonymization:
    """Anonymize the spec'd dataset with the spec'd algorithm."""
    dataset, hierarchies = _dataset_from_payload(params["dataset"])
    spec = AlgorithmSpec(
        params["algorithm"]["algorithm"],
        _canonical_items(params["algorithm"]["params"]),
    )
    return spec.build().anonymize(dataset, hierarchies)


@register_op("measure")
def _op_measure(params: Mapping[str, Any], deps: Mapping[str, Any], seed: int) -> Any:
    """Evaluate one registered measure on an upstream release."""
    release = deps[params["release_task"]]
    _, hierarchies = _dataset_from_payload(params["dataset"])
    metric = params["metric"]
    if params["kind"] == "scalar":
        return SCALAR_MEASURES[metric](release, hierarchies)
    return VECTOR_PROPERTIES[metric](release, hierarchies)


@register_op("compare")
def _op_compare(params: Mapping[str, Any], deps: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Pairwise strict-dominance comparison of upstream property vectors."""
    # Late import: repro.analysis imports the runtime for its own
    # parallel paths; binding at call time keeps the layering acyclic.
    from ..analysis.matrix import relation_matrix_serial, win_counts

    labels: Mapping[str, str] = params["labels"]
    vectors = {labels[task_id]: deps[task_id] for task_id in params["order"]}
    matrix = relation_matrix_serial(vectors)
    return {
        "property": params["property"],
        "relations": {pair: relation for pair, relation in matrix.items()},
        "wins": win_counts(matrix),
    }


# -- graph construction ------------------------------------------------------

def _algorithm_key(spec: AlgorithmSpec) -> str:
    return canonical_json(spec.as_payload())


def build_study(
    spec: StudySpec,
    dataset_fingerprint: str | None = None,
    timeout: float | None = None,
    retries: int = 0,
) -> TaskGraph:
    """Compile a study spec into its task DAG.

    ``dataset_fingerprint`` is the content identity used in cache keys; when
    omitted the dataset is materialized here once to compute it.  Every
    task id is stable across runs, so resume and memoization line up.
    """
    if dataset_fingerprint is None:
        dataset, _ = spec.dataset.materialize()
        dataset_fingerprint = dataset.fingerprint()
    graph = TaskGraph()
    dataset_payload = spec.dataset.as_payload()
    seeded = [cell.with_seed(spec.seed) for cell in spec.algorithms]

    seen_labels: dict[str, int] = {}
    cell_ids: list[str] = []
    for cell in seeded:
        count = seen_labels.get(cell.label, 0)
        seen_labels[cell.label] = count + 1
        suffix = f"#{count}" if count else ""
        cell_id = f"anonymize:{cell.label}{suffix}"
        cell_ids.append(cell_id)
        graph.add(
            TaskSpec(
                task_id=cell_id,
                op="anonymize",
                params={"dataset": dataset_payload, "algorithm": cell.as_payload()},
                key=CacheKey(
                    dataset=dataset_fingerprint, algorithm=_algorithm_key(cell)
                ),
                timeout=timeout,
                retries=retries,
            )
        )

    measure_plan = [("scalar", m) for m in spec.scalar_measures]
    measure_plan += [("vector", p) for p in spec.vector_properties]
    vector_tasks: dict[str, list[tuple[str, str]]] = {}
    for cell, cell_id in zip(seeded, cell_ids):
        for kind, metric in measure_plan:
            task_id = f"measure:{metric}:{cell_id.removeprefix('anonymize:')}"
            graph.add(
                TaskSpec(
                    task_id=task_id,
                    op="measure",
                    params={
                        "dataset": dataset_payload,
                        "release_task": cell_id,
                        "kind": kind,
                        "metric": metric,
                    },
                    deps=(cell_id,),
                    key=CacheKey(
                        dataset=dataset_fingerprint,
                        algorithm=_algorithm_key(cell),
                        metric=metric,
                    ),
                    timeout=timeout,
                    retries=retries,
                )
            )
            if kind == "vector":
                vector_tasks.setdefault(metric, []).append((task_id, cell.label))

    if spec.compare and len(seeded) > 1:
        family_key = canonical_json([c.as_payload() for c in seeded])
        for metric, members in vector_tasks.items():
            graph.add(
                TaskSpec(
                    task_id=f"compare:{metric}",
                    op="compare",
                    params={
                        "property": metric,
                        "order": [task_id for task_id, _ in members],
                        "labels": {task_id: label for task_id, label in members},
                    },
                    deps=tuple(task_id for task_id, _ in members),
                    key=CacheKey(
                        dataset=dataset_fingerprint,
                        algorithm=family_key,
                        metric=f"compare:{metric}",
                    ),
                    timeout=timeout,
                    retries=retries,
                )
            )
    return graph


# -- results -----------------------------------------------------------------

@dataclasses.dataclass
class StudyResult:
    """Materialized outputs of one study run."""

    spec: StudySpec
    report: ExecutionReport
    releases: dict[str, Anonymization]
    scalars: dict[str, dict[str, float]]
    vectors: dict[str, dict[str, Any]]
    comparisons: dict[str, dict[str, Any]]

    @property
    def labels(self) -> tuple[str, ...]:
        """Cell labels in grid order."""
        return tuple(self.releases)

    def grid_rows(self) -> list[dict[str, Any]]:
        """One row dict per cell: label plus every scalar measure."""
        return [
            {"cell": label, **self.scalars.get(label, {})}
            for label in self.labels
        ]


def format_study_grid(result: StudyResult) -> str:
    """Fixed-width table of the study's scalar measures, one row per cell."""
    rows = result.grid_rows()
    if not rows:
        return "(empty study)"
    measures = [c for c in rows[0] if c != "cell"]
    label_width = max(len("cell"), *(len(str(row["cell"])) for row in rows))
    widths = {m: max(len(m), 10) for m in measures}
    header = "cell".ljust(label_width) + "  " + "  ".join(
        m.rjust(widths[m]) for m in measures
    )
    lines = [header]
    for row in rows:
        cells = [str(row["cell"]).ljust(label_width)]
        cells += [f"{row[m]:>{widths[m]}.4g}" for m in measures]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def run_study(
    spec: StudySpec,
    jobs: int = 1,
    cache: ResultCache | None = None,
    log: RunLog | None = None,
    timeout: float | None = None,
    retries: int = 0,
    obs: Any | None = None,
    transport: Any | None = None,
    cooperate: bool = False,
    lease_ttl: float | None = None,
    strict_ops: bool = False,
    certificates: Any | None = None,
) -> StudyResult:
    """Build and execute a study, assembling the materialized result.

    ``obs`` is an optional :class:`repro.obs.Observation` enabling span
    tracing and metric collection for this run; the default keeps the
    zero-overhead null observation.  ``transport`` selects where task
    attempts run (``"inline"``/``"pool"``/``"socket"`` or a
    :class:`~repro.runtime.transports.WorkerTransport` instance);
    ``cooperate`` claims tasks through file-lock leases under the cache
    root so several executors can share the study; ``strict_ops`` fails
    fast (:class:`~repro.runtime.certify.CertificateError`) when the
    graph contains an op the certificate table refuses for the chosen
    transport, instead of silently falling back to the coordinator.

    Raises :class:`~repro.runtime.executor.ExecutionError` if any task
    failed; partial results are never silently returned.
    """
    graph = build_study(spec, timeout=timeout, retries=retries)
    if strict_ops:
        from .certify import ensure_transport_allowed

        transport_name = (
            transport if isinstance(transport, str)
            else getattr(transport, "name", None)
        )
        if transport_name is None:
            transport_name = "inline" if jobs == 1 else "pool"
        ensure_transport_allowed(
            {task.op for task in graph}, transport_name, certificates
        )
    executor_options: dict[str, Any] = {}
    if lease_ttl is not None:
        executor_options["lease_ttl"] = lease_ttl
    executor = StudyExecutor(
        jobs=jobs,
        cache=cache,
        log=log,
        study_seed=spec.seed,
        default_timeout=timeout,
        default_retries=retries,
        obs=obs,
        transport=transport,
        cooperate=cooperate,
        certificates=certificates,
        **executor_options,
    )
    report = executor.run(graph)
    report.raise_on_failure()

    releases: dict[str, Anonymization] = {}
    scalars: dict[str, dict[str, float]] = {}
    vectors: dict[str, dict[str, Any]] = {}
    comparisons: dict[str, dict[str, Any]] = {}
    seeded = [cell.with_seed(spec.seed) for cell in spec.algorithms]
    seen_labels: dict[str, int] = {}
    for cell in seeded:
        count = seen_labels.get(cell.label, 0)
        seen_labels[cell.label] = count + 1
        suffix = f"#{count}" if count else ""
        cell_key = f"{cell.label}{suffix}"
        cell_id = f"anonymize:{cell_key}"
        releases[cell_key] = report.value(cell_id)
        scalars[cell_key] = {
            metric: float(report.value(f"measure:{metric}:{cell_key}"))
            for metric in spec.scalar_measures
        }
        for prop in spec.vector_properties:
            vectors.setdefault(prop, {})[cell_key] = report.value(
                f"measure:{prop}:{cell_key}"
            )
    if spec.compare and len(seeded) > 1:
        for prop in spec.vector_properties:
            task_id = f"compare:{prop}"
            if task_id in {o for o in report.outcomes}:
                comparisons[prop] = report.value(task_id)
    return StudyResult(
        spec=spec,
        report=report,
        releases=releases,
        scalars=scalars,
        vectors=vectors,
        comparisons=comparisons,
    )


def run_release_grid(
    algorithms: Sequence[AlgorithmSpec],
    dataset: DatasetSpec,
    jobs: int = 1,
    cache: ResultCache | None = None,
    seed: int = 42,
) -> list[Anonymization]:
    """Anonymize one dataset with several algorithms, in order.

    The parallel backend of ``repro compare --jobs N``: only ``anonymize``
    tasks, results returned in input order, identical to the serial loop.
    """
    spec = StudySpec(
        dataset=dataset,
        algorithms=tuple(algorithms),
        scalar_measures=(),
        vector_properties=(),
        compare=False,
        seed=seed,
    )
    graph = build_study(spec)
    report = StudyExecutor(jobs=jobs, cache=cache, study_seed=seed).run(graph)
    report.raise_on_failure()
    releases = []
    seen_labels: dict[str, int] = {}
    for cell in (c.with_seed(seed) for c in algorithms):
        count = seen_labels.get(cell.label, 0)
        seen_labels[cell.label] = count + 1
        suffix = f"#{count}" if count else ""
        releases.append(report.value(f"anonymize:{cell.label}{suffix}"))
    return releases
