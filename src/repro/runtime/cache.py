"""Content-addressed on-disk result store.

Task results are memoized under the sha256 digest of their
:class:`~repro.runtime.task.CacheKey` — ``(dataset fingerprint, algorithm
name+params, metric id, code epoch)`` — so a re-run of an unchanged grid is
pure cache hits and an interrupted run resumes from its completed prefix.

Layout::

    <root>/objects/<first two hex chars>/<digest>.pkl

Each entry is a pickle of ``{"key": <key components>, "value": <result>}``;
the stored key components are verified on read so a digest collision or a
foreign file can never masquerade as a hit.  Writes are atomic (temp file in
the same directory + ``os.replace``) so a killed run leaves no torn entries.
Corrupt entries (truncated pickles, unreadable files) are deleted on sight
and reported as misses.  The store is size-bounded: when ``max_bytes`` is
exceeded after a write, least-recently-used entries (by access time, falling
back to modification time) are evicted until the store fits.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from pathlib import Path
from typing import Any, Iterator

from ..obs import metrics as obs_metrics
from ..utility.atomic import atomic_writer
from .task import CacheKey

#: Sentinel distinguishing "miss" from a cached ``None`` value.
MISS = object()


class CacheError(ValueError):
    """Raised for invalid cache configurations."""


@dataclasses.dataclass
class CacheStats:
    """Counters accumulated by one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dict (for manifests and reports)."""
        return dataclasses.asdict(self)


class ResultCache:
    """A content-addressed, size-bounded pickle store for task results.

    Parameters
    ----------
    root:
        Directory holding the store (created on demand).
    max_bytes:
        Soft size bound; ``None`` disables eviction.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._objects = self.root / "objects"

    # -- path helpers --------------------------------------------------------

    def path_for(self, key: CacheKey) -> Path:
        """The on-disk path addressing ``key``."""
        digest = key.digest()
        return self._objects / digest[:2] / f"{digest}.pkl"

    def _entries(self) -> Iterator[Path]:
        if not self._objects.is_dir():
            return iter(())
        return self._objects.glob("*/*.pkl")

    # -- store protocol ------------------------------------------------------

    def get(self, key: CacheKey) -> Any:
        """The value stored under ``key``, or :data:`MISS`.

        A corrupt or mismatched entry is deleted and reported as a miss —
        recomputing is always safe, serving a torn result never is.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            stored = entry["key"]
            if stored != dataclasses.asdict(key):
                raise ValueError(f"entry key mismatch: {stored!r}")
            value = entry["value"]
        except FileNotFoundError:
            self.stats.misses += 1
            obs_metrics().inc("cache.miss")
            return MISS
        except Exception:
            # Truncated pickle, unreadable file, foreign payload: recover
            # by dropping the entry.
            self.stats.corrupt += 1
            self.stats.misses += 1
            obs_metrics().inc("cache.corrupt_healed")
            obs_metrics().inc("cache.miss")
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.stats.hits += 1
        obs_metrics().inc("cache.hit")
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return value

    def put(self, key: CacheKey, value: Any) -> Path:
        """Store ``value`` under ``key`` atomically; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {"key": dataclasses.asdict(key), "value": value},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with atomic_writer(path, "wb") as handle:
            handle.write(payload)
        self.stats.writes += 1
        obs_metrics().inc("cache.write")
        if self.max_bytes is not None:
            self._evict(protect=path)
        return path

    def _evict(self, protect: Path | None = None) -> None:
        """Delete least-recently-used entries until the store fits."""
        entries = []
        total = 0
        for entry in self._entries():
            try:
                stat = entry.stat()
            except OSError:
                continue
            recency = max(stat.st_atime, stat.st_mtime)
            entries.append((recency, entry, stat.st_size))
            total += stat.st_size
        if self.max_bytes is None or total <= self.max_bytes:
            return
        for _, entry, size in sorted(entries, key=lambda item: item[0]):
            if protect is not None and entry == protect:
                continue
            try:
                entry.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            obs_metrics().inc("cache.evict")
            total -= size
            if total <= self.max_bytes:
                break

    # -- maintenance ---------------------------------------------------------

    def size_bytes(self) -> int:
        """Total bytes currently held by the store."""
        return sum(entry.stat().st_size for entry in self._entries())

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                continue
        return removed
