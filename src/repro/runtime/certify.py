"""Runtime consumption of the static op certificates.

Lint Layer 4/5 (``REP200``–``REP305``) certifies every registered task op
for distributed execution and commits the per-op verdicts to
``lint/op_certificates.json``.  This module is the *runtime* side of that
contract: it loads the certificate file once and answers
:func:`transport_allowed` — may this op be shipped over this transport?

Policy:

* the ``inline`` transport runs in the coordinating process and is always
  allowed — it is exactly the behavior certification exists to preserve;
* ``pool`` and ``socket`` transports require a ``certified`` verdict
  (``inline-only`` and ``uncertified`` ops stay in the coordinator);
* an op with no certificate at all (e.g. a test-only op registered after
  the lint sweep) is treated as uncertified;
* a missing or unreadable certificate file degrades every op to
  inline-only with a single logged warning — never a crash.  The
  scheduler then simply runs everything in the coordinating process.

The certificate file is located explicitly (``path=``), through the
``REPRO_OP_CERTIFICATES`` environment variable, or by walking up from
this package to the repository's ``lint/op_certificates.json``.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Mapping

#: Environment override for the certificate file location.
CERTIFICATES_ENV = "REPRO_OP_CERTIFICATES"

#: Repository-relative location of the committed certificate file.
CERTIFICATES_RELPATH = Path("lint") / "op_certificates.json"

#: Transports that execute in the coordinating process (always allowed).
INLINE_TRANSPORTS = frozenset({"inline"})

#: Transports that ship ops to other processes (require certification).
REMOTE_TRANSPORTS = frozenset({"pool", "socket"})


class CertificateError(RuntimeError):
    """Raised by :func:`ensure_transport_allowed` for refused ops."""


def _default_path() -> Path | None:
    env = os.environ.get(CERTIFICATES_ENV)
    if env:
        return Path(env)
    for ancestor in Path(__file__).resolve().parents:
        candidate = ancestor / CERTIFICATES_RELPATH
        if candidate.exists():
            return candidate
    candidate = Path.cwd() / CERTIFICATES_RELPATH
    if candidate.exists():
        return candidate
    return None


class OpCertificates:
    """Per-op transport verdicts, loaded once from the lint certificates.

    Construct directly from a ``{op_name: verdict}`` mapping (tests,
    embedders), or use :meth:`load` to read the committed JSON file.
    """

    def __init__(self, verdicts: Mapping[str, str], source: str | None = None):
        self._verdicts = dict(verdicts)
        self.source = source

    @classmethod
    def load(cls, path: str | Path | None = None) -> "OpCertificates":
        """Load the certificate file, degrading gracefully when absent."""
        located = Path(path) if path is not None else _default_path()
        if located is None or not located.exists():
            warnings.warn(
                "op certificate file not found; all ops degrade to "
                "inline-only execution (run `repro lint --select REP2` "
                "to regenerate lint/op_certificates.json)",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls({}, source=None)
        try:
            payload = json.loads(located.read_text(encoding="utf-8"))
            ops = payload["ops"]
            verdicts = {
                name: str(entry.get("verdict", "uncertified"))
                for name, entry in ops.items()
            }
        except (OSError, ValueError, KeyError, AttributeError) as exc:
            warnings.warn(
                f"op certificate file {located} is unreadable ({exc}); all "
                "ops degrade to inline-only execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls({}, source=str(located))
        return cls(verdicts, source=str(located))

    def verdict(self, op_name: str) -> str:
        """The recorded verdict for an op (``uncertified`` when unknown)."""
        return self._verdicts.get(op_name, "uncertified")

    def transport_allowed(self, op_name: str, transport: str) -> bool:
        """May ``op_name`` execute over ``transport``?"""
        if transport in INLINE_TRANSPORTS:
            return True
        return self.verdict(op_name) == "certified"

    def __len__(self) -> int:
        return len(self._verdicts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpCertificates({len(self._verdicts)} op(s), source={self.source!r})"


_DEFAULT: OpCertificates | None = None


def default_certificates() -> OpCertificates:
    """The lazily-loaded, process-wide certificate table."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = OpCertificates.load()
    return _DEFAULT


def transport_allowed(op_name: str, transport: str) -> bool:
    """Module-level convenience over :func:`default_certificates`."""
    return default_certificates().transport_allowed(op_name, transport)


def ensure_transport_allowed(
    op_names,
    transport: str,
    certificates: OpCertificates | None = None,
) -> None:
    """Raise :class:`CertificateError` unless every op may use ``transport``.

    This backs ``repro study --strict-ops``: instead of silently falling
    back to coordinator-side execution, a study whose graph contains an
    op the certificate table refuses for the chosen transport fails fast
    with the offending op names.
    """
    table = certificates if certificates is not None else default_certificates()
    refused = sorted(
        {name for name in op_names if not table.transport_allowed(name, transport)}
    )
    if refused:
        raise CertificateError(
            f"transport {transport!r} refuses uncertified op(s): "
            f"{', '.join(refused)} (certificates: {table.source or 'missing'})"
        )
