"""Pareto-dominance utilities over objective tuples.

The paper's Section 7 argues that with vector representations of privacy,
finding "good" anonymizations becomes a multi-objective problem — privacy
handled directly as an objective rather than a constraint.  This module
supplies the standard machinery: dominance on minimization objective
vectors, non-dominated filtering, fast non-dominated sorting and crowding
distance (Deb et al.), shared by the NSGA-II search and the analysis
benches.
"""

from __future__ import annotations

from typing import Sequence

Objectives = tuple[float, ...]


def dominates(first: Objectives, second: Objectives) -> bool:
    """Pareto dominance for minimization: no worse everywhere, better
    somewhere."""
    if len(first) != len(second):
        raise ValueError("objective vectors must have equal lengths")
    return all(a <= b for a, b in zip(first, second)) and any(
        a < b for a, b in zip(first, second)
    )


def non_dominated(points: Sequence[Objectives]) -> list[int]:
    """Indices of the non-dominated members of ``points``."""
    return [
        i
        for i, candidate in enumerate(points)
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(points)
            if j != i
        )
    ]


def fast_non_dominated_sort(points: Sequence[Objectives]) -> list[list[int]]:
    """Deb's fast non-dominated sort: indices grouped into fronts, best
    front first."""
    count = len(points)
    dominated_by: list[list[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts: list[list[int]] = [[]]
    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
            elif dominates(points[j], points[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        fronts.append(next_front)
        current += 1
    fronts.pop()
    return fronts


def crowding_distance(points: Sequence[Objectives], front: Sequence[int]) -> dict[int, float]:
    """Crowding distance of each front member (boundary members infinite)."""
    distances = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    objective_count = len(points[front[0]])
    for objective in range(objective_count):
        ordered = sorted(front, key=lambda i: points[i][objective])
        low = points[ordered[0]][objective]
        high = points[ordered[-1]][objective]
        distances[ordered[0]] = float("inf")
        distances[ordered[-1]] = float("inf")
        if high == low:
            continue
        for rank in range(1, len(ordered) - 1):
            gap = (
                points[ordered[rank + 1]][objective]
                - points[ordered[rank - 1]][objective]
            )
            distances[ordered[rank]] += gap / (high - low)
    return distances


def hypervolume_2d(
    points: Sequence[Objectives], reference: Objectives
) -> float:
    """Exact hypervolume indicator for 2-objective minimization fronts.

    ``reference`` must be dominated by every point (i.e. worse in both
    objectives); points at or beyond the reference contribute nothing.
    """
    if any(len(p) != 2 for p in points) or len(reference) != 2:
        raise ValueError("hypervolume_2d requires 2-objective points")
    kept = [p for p in points if p[0] < reference[0] and p[1] < reference[1]]
    if not kept:
        return 0.0
    front = [kept[i] for i in non_dominated(kept)]
    front.sort()
    volume = 0.0
    previous_y = reference[1]
    for x, y in front:
        if y < previous_y:
            volume += (reference[0] - x) * (previous_y - y)
            previous_y = y
    return volume


class ObjectiveMatrix(tuple):
    """Rows-of-tuples objective matrix with whole-matrix reductions."""

    def min(self) -> float:
        """Smallest entry of the matrix."""
        return min(min(row) for row in self)

    def max(self) -> float:
        """Largest entry of the matrix."""
        return max(max(row) for row in self)


def normalized(points: Sequence[Objectives]) -> ObjectiveMatrix:
    """Min-max normalization of an objective matrix (columns to [0,1]).

    Constant columns (zero span) normalize to 0.0 rather than dividing by
    zero, matching the convention of pinning their span to 1.
    """
    rows = [tuple(float(value) for value in point) for point in points]
    if not rows:
        return ObjectiveMatrix()
    dimensions = range(len(rows[0]))
    low = [min(row[d] for row in rows) for d in dimensions]
    span = [max(row[d] for row in rows) - low[d] for d in dimensions]
    span = [extent if extent != 0 else 1.0 for extent in span]
    return ObjectiveMatrix(
        tuple((row[d] - low[d]) / span[d] for d in dimensions) for row in rows
    )
