"""Multi-objective anonymization search (the paper's Section 7 extension)."""

from .archive import (
    EpsilonParetoArchive,
    ParetoArchive,
    knee_point,
)
from .nsga2 import (
    Nsga2Search,
    ParetoResult,
    privacy_rank_objective,
    utility_loss_objective,
    weighted_k_objective,
    weighted_sum_search,
)
from .pareto import (
    Objectives,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    hypervolume_2d,
    non_dominated,
    normalized,
)

__all__ = [
    "EpsilonParetoArchive",
    "ParetoArchive",
    "knee_point",
    "Nsga2Search",
    "ParetoResult",
    "privacy_rank_objective",
    "utility_loss_objective",
    "weighted_k_objective",
    "weighted_sum_search",
    "Objectives",
    "crowding_distance",
    "dominates",
    "fast_non_dominated_sort",
    "hypervolume_2d",
    "non_dominated",
    "normalized",
]
