"""Pareto archives and trade-off selection.

Practical companions to the multi-objective search:

* :class:`ParetoArchive` — an incremental non-dominated store (feed it
  anonymization candidates as they are generated, from any source);
* :class:`EpsilonParetoArchive` — the ε-dominance variant (Laumanns et
  al.): the objective space is gridded with cell size ε and at most one
  representative per box survives, bounding the archive while keeping an
  ε-approximate front;
* :func:`knee_point` — the archive member with the best worst-case
  normalized objective (minimax), the usual "balanced trade-off" pick
  when no preference information exists.
"""

from __future__ import annotations

import math
from typing import Generic, Hashable, Iterator, Sequence, TypeVar

from .pareto import Objectives, dominates, normalized

Payload = TypeVar("Payload", bound=Hashable)


class ParetoArchive(Generic[Payload]):
    """Incremental non-dominated archive of (payload, objectives) pairs.

    Minimization on all objectives.  Duplicated payloads update in place;
    dominated insertions are rejected; insertions that dominate existing
    members evict them.
    """

    def __init__(self):
        self._entries: dict[Payload, Objectives] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[Payload, Objectives]]:
        return iter(self._entries.items())

    def __contains__(self, payload: object) -> bool:
        return payload in self._entries

    @property
    def payloads(self) -> list[Payload]:
        """Archived payloads, in insertion order."""
        return list(self._entries)

    @property
    def objectives(self) -> list[Objectives]:
        """Objective vectors of the archived members."""
        return list(self._entries.values())

    def add(self, payload: Payload, objectives: Sequence[float]) -> bool:
        """Offer a candidate; returns True when it enters the archive."""
        candidate = tuple(float(v) for v in objectives)
        for existing in self._entries.values():
            if dominates(existing, candidate) or existing == candidate:
                return False
        evicted = [
            other
            for other, existing in self._entries.items()
            if dominates(candidate, existing)
        ]
        for other in evicted:
            del self._entries[other]
        self._entries[payload] = candidate
        return True


class EpsilonParetoArchive(ParetoArchive[Payload]):
    """ε-dominance archive: at most one member per ε-box of the objective
    space, so the archive size is bounded regardless of front density."""

    def __init__(self, epsilon: float):
        super().__init__()
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def _box(self, objectives: Objectives) -> tuple[int, ...]:
        return tuple(math.floor(v / self.epsilon) for v in objectives)

    def add(self, payload: Payload, objectives: Sequence[float]) -> bool:
        candidate = tuple(float(v) for v in objectives)
        candidate_box = self._box(candidate)
        for other, existing in list(self._entries.items()):
            existing_box = self._box(existing)
            if existing_box == candidate_box:
                # Same box: keep the one closer to the box corner.
                corner = tuple(b * self.epsilon for b in candidate_box)
                existing_distance = sum(
                    (e - c) ** 2 for e, c in zip(existing, corner)
                )
                candidate_distance = sum(
                    (v - c) ** 2 for v, c in zip(candidate, corner)
                )
                if candidate_distance < existing_distance:
                    del self._entries[other]
                    self._entries[payload] = candidate
                    return True
                return False
            if all(e <= c for e, c in zip(existing_box, candidate_box)):
                # Box-dominated by an existing member.
                return False
        evicted = [
            other
            for other, existing in self._entries.items()
            if all(c <= e for c, e in zip(candidate_box, self._box(existing)))
            and candidate_box != self._box(existing)
        ]
        for other in evicted:
            del self._entries[other]
        self._entries[payload] = candidate
        return True


def knee_point(
    archive: ParetoArchive[Payload] | Sequence[tuple[Payload, Objectives]]
) -> Payload:
    """The member minimizing the worst normalized objective (minimax).

    With objectives min-max normalized over the archive, the knee point is
    the candidate whose largest normalized objective is smallest — the
    standard no-preference compromise solution.
    """
    entries = list(archive)
    if not entries:
        raise ValueError("archive is empty")
    if len(entries) == 1:
        return entries[0][0]
    scaled = normalized([objectives for _, objectives in entries])
    worst = [max(row) for row in scaled]
    best = min(range(len(worst)), key=worst.__getitem__)
    return entries[best][0]
