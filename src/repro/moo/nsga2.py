"""NSGA-II search for privacy/utility trade-off anonymizations.

Implements the optimization framework the paper's conclusion sketches:
privacy is *not* a constraint but an objective derived from the privacy
property vector, optimized jointly with utility.  The search space is the
full-domain generalization lattice; objectives are, by default:

* privacy objective — the rank index ``||D - D_max||`` of the equivalence
  class size property vector (distance to the single-class ideal; lower is
  better, Section 5.1);
* utility objective — the total general loss metric (lower is better).

The weighted-sum baseline (:func:`weighted_sum_search`) scalarizes the same
two objectives, which is exactly the single-objective framework the paper
says must change; benches compare the Pareto front against it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..anonymize.algorithms.base import RecodingWorkspace
from ..anonymize.engine import Anonymization
from ..datasets.dataset import Dataset
from ..hierarchy.base import Hierarchy
from ..hierarchy.lattice import Node
from .pareto import (
    Objectives,
    crowding_distance,
    fast_non_dominated_sort,
    non_dominated,
    normalized,
)

#: Objective function over a lattice node: (workspace, node) -> value to minimize.
ObjectiveFn = Callable[[RecodingWorkspace, Node], float]


def privacy_rank_objective(workspace: RecodingWorkspace, node: Node) -> float:
    """Distance of the class-size property vector from the all-N ideal."""
    counts = workspace.group_sizes(node)
    total = len(workspace.dataset)
    # Per-tuple class sizes without materializing the release: each class of
    # size s contributes s tuples at distance (total - s).
    squared = sum(size * (total - size) ** 2 for size in counts.values())
    return math.sqrt(squared)


def utility_loss_objective(workspace: RecodingWorkspace, node: Node) -> float:
    """Total general loss of the recoding at ``node``."""
    return workspace.node_loss(node)


def weighted_k_objective(workspace: RecodingWorkspace, node: Node) -> float:
    """Negated *weighted k* (Dewri et al., ICDE 2008 [2]) — the mean
    per-tuple equivalence class size, i.e. the paper's ``P_s-avg`` on the
    class-size property vector.

    Unlike the minimum (plain k), the weighted k credits protection
    delivered to *every* tuple; negated so the framework minimizes it.
    """
    counts = workspace.group_sizes(node)
    total = len(workspace.dataset)
    if not total:
        return 0.0
    weighted_k = sum(size * size for size in counts.values()) / total
    return -weighted_k


@dataclass
class ParetoResult:
    """Outcome of a multi-objective anonymization search."""

    nodes: list[Node]
    objectives: list[Objectives]

    def __len__(self) -> int:
        return len(self.nodes)

    def materialize(
        self, workspace: RecodingWorkspace, k: int = 1
    ) -> list[Anonymization]:
        """Recode the front's nodes (suppressing classes < k if k > 1)."""
        return [
            workspace.apply(node, k, name=f"pareto{node}") for node in self.nodes
        ]


class Nsga2Search:
    """NSGA-II over the full-domain lattice.

    Parameters
    ----------
    objectives:
        Objective functions, all minimized (default: privacy rank +
        utility loss).
    population_size, generations:
        Search budget.
    mutation_rate:
        Per-attribute probability of a ±1 level step.
    seed:
        RNG seed; runs are deterministic per seed.
    """

    def __init__(
        self,
        objectives: Sequence[ObjectiveFn] = (
            privacy_rank_objective,
            utility_loss_objective,
        ),
        population_size: int = 32,
        generations: int = 30,
        mutation_rate: float = 0.2,
        seed: int = 0,
    ):
        if len(objectives) < 2:
            raise ValueError("multi-objective search needs >= 2 objectives")
        if population_size < 4 or population_size % 2:
            raise ValueError("population size must be even and >= 4")
        self.objectives = tuple(objectives)
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.seed = seed

    def _evaluate(self, workspace: RecodingWorkspace, node: Node) -> Objectives:
        return tuple(objective(workspace, node) for objective in self.objectives)

    def _random_node(
        self, workspace: RecodingWorkspace, rng: random.Random
    ) -> Node:
        return tuple(
            rng.randrange(height + 1) for height in workspace.lattice.heights
        )

    def _mutate(
        self, node: Node, workspace: RecodingWorkspace, rng: random.Random
    ) -> Node:
        levels = list(node)
        for position, height in enumerate(workspace.lattice.heights):
            if rng.random() < self.mutation_rate:
                step = 1 if rng.random() < 0.5 else -1
                levels[position] = min(max(levels[position] + step, 0), height)
        return tuple(levels)

    def _crossover(
        self, a: Node, b: Node, rng: random.Random
    ) -> Node:
        return tuple(
            a[i] if rng.random() < 0.5 else b[i] for i in range(len(a))
        )

    def search(
        self, dataset: Dataset, hierarchies: Mapping[str, Hierarchy]
    ) -> ParetoResult:
        """Run the search; returns the non-dominated front found."""
        workspace = RecodingWorkspace(dataset, hierarchies)
        rng = random.Random(self.seed)
        scores: dict[Node, Objectives] = {}

        def evaluate(node: Node) -> Objectives:
            if node not in scores:
                scores[node] = self._evaluate(workspace, node)
            return scores[node]

        population = list(
            dict.fromkeys(
                self._random_node(workspace, rng)
                for _ in range(self.population_size)
            )
        )
        while len(population) < self.population_size:
            population.append(self._random_node(workspace, rng))

        for _ in range(self.generations):
            points = [evaluate(node) for node in population]
            fronts = fast_non_dominated_sort(points)
            rank_of = {}
            crowd_of = {}
            for front_rank, front in enumerate(fronts):
                distances = crowding_distance(points, front)
                for member in front:
                    rank_of[member] = front_rank
                    crowd_of[member] = distances[member]

            def tournament() -> Node:
                i = rng.randrange(len(population))
                j = rng.randrange(len(population))
                if rank_of[i] != rank_of[j]:
                    return population[i if rank_of[i] < rank_of[j] else j]
                return population[i if crowd_of[i] >= crowd_of[j] else j]

            offspring = []
            while len(offspring) < self.population_size:
                child = self._crossover(tournament(), tournament(), rng)
                child = self._mutate(child, workspace, rng)
                offspring.append(child)

            # Environmental selection over parents + offspring.
            combined = population + offspring
            combined_points = [evaluate(node) for node in combined]
            combined_fronts = fast_non_dominated_sort(combined_points)
            survivors: list[int] = []
            for front in combined_fronts:
                if len(survivors) + len(front) <= self.population_size:
                    survivors.extend(front)
                else:
                    distances = crowding_distance(combined_points, front)
                    remaining = self.population_size - len(survivors)
                    ranked = sorted(front, key=lambda i: distances[i], reverse=True)
                    survivors.extend(ranked[:remaining])
                    break
            population = [combined[i] for i in survivors]

        final_points = [evaluate(node) for node in population]
        keep = non_dominated(final_points)
        unique: dict[Node, Objectives] = {}
        for index in keep:
            unique[population[index]] = final_points[index]
        nodes = sorted(unique)
        return ParetoResult(nodes=nodes, objectives=[unique[n] for n in nodes])


def weighted_sum_search(
    dataset: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    weight: float,
    objectives: Sequence[ObjectiveFn] = (
        privacy_rank_objective,
        utility_loss_objective,
    ),
) -> tuple[Node, Objectives]:
    """Exhaustive scalarized baseline: minimize
    ``weight·f1_norm + (1-weight)·f2_norm`` over the whole lattice.

    Objectives are min-max normalized over the lattice before weighting.
    Returns the winning node and its raw objective values.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must be in [0,1], got {weight}")
    workspace = RecodingWorkspace(dataset, hierarchies)
    nodes = list(workspace.lattice.nodes())
    raw = [
        tuple(objective(workspace, node) for objective in objectives)
        for node in nodes
    ]
    scaled = normalized(raw)
    dimensions = len(scaled[0])
    if dimensions == 2:
        weights: tuple[float, ...] = (weight, 1.0 - weight)
    else:
        weights = tuple(1.0 / dimensions for _ in range(dimensions))
    scores = [
        sum(value * w for value, w in zip(row, weights)) for row in scaled
    ]
    best = min(range(len(scores)), key=scores.__getitem__)
    return nodes[best], raw[best]
