"""Privacy model protocol.

A privacy model checks a scalar privacy *requirement* against an anonymized
release (the classical role: "is this release k-anonymous?") and, in this
library, also exposes the *per-tuple* measurement of its defining property —
the property vector the paper argues should be inspected instead of the
scalar alone.
"""

from __future__ import annotations

import abc

from ..anonymize.engine import Anonymization
from ..core.vector import PropertyVector


class PrivacyModelError(ValueError):
    """Raised for invalid model parameters."""


class PrivacyModel(abc.ABC):
    """A scalar privacy requirement with a per-tuple property view."""

    name: str = "privacy-model"

    @abc.abstractmethod
    def measure(self, anonymization: Anonymization) -> float:
        """The scalar level the release actually achieves (the model's
        aggregate quality index — e.g. the achieved k)."""

    @abc.abstractmethod
    def threshold(self) -> float:
        """The required level for :meth:`satisfied_by` to hold."""

    @abc.abstractmethod
    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        """Per-tuple measurement of the model's defining property."""

    def satisfied_by(self, anonymization: Anonymization) -> bool:
        """Whether the release meets the requirement."""
        return self.measure(anonymization) >= self.threshold()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
