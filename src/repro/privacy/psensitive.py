"""p-sensitive k-anonymity (Truta and Vinay)."""

from __future__ import annotations

from ..anonymize.engine import Anonymization
from ..core.properties import _sensitive_column
from ..core.vector import PropertyVector
from .base import PrivacyModel, PrivacyModelError
from .kanonymity import KAnonymity


class PSensitiveKAnonymity(PrivacyModel):
    """k-anonymity plus at least ``p`` distinct sensitive values per class.

    The scalar measure is ``min(achieved_k / k, achieved_p / p)`` so the
    requirement is met exactly when the measure reaches 1.  As the paper's
    related work notes, skewed sensitive distributions can make ``p``
    unattainable — :meth:`satisfied_by` then simply reports ``False``.
    """

    def __init__(self, p: int, k: int, sensitive_attribute: str | None = None):
        if p < 1:
            raise PrivacyModelError(f"p must be >= 1, got {p}")
        self.p = p
        self.k_model = KAnonymity(k)
        self.sensitive_attribute = sensitive_attribute
        self.name = f"{p}-sensitive-{k}-anonymity"

    @property
    def k(self) -> int:
        """The k of the embedded k-anonymity requirement."""
        return self.k_model.k

    def _achieved_p(self, anonymization: Anonymization) -> int:
        _, column = _sensitive_column(anonymization, self.sensitive_attribute)
        histograms = anonymization.equivalence_classes.value_counts(column)
        if not histograms:
            return 0
        return min(len(h) for h in histograms)

    def measure(self, anonymization: Anonymization) -> float:
        achieved_k = self.k_model.measure(anonymization)
        achieved_p = self._achieved_p(anonymization)
        return min(achieved_k / self.k, achieved_p / self.p)

    def threshold(self) -> float:
        return 1.0

    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        """Per-tuple ``min(size/k, distinct/p)`` margin (higher is better)."""
        _, column = _sensitive_column(anonymization, self.sensitive_attribute)
        classes = anonymization.equivalence_classes
        distinct = [len(h) for h in classes.value_counts(column)]
        sizes = classes.sizes()
        margins = [
            min(sizes[row_index] / self.k, distinct[classes.class_of(row_index)] / self.p)
            for row_index in range(len(anonymization))
        ]
        return PropertyVector(
            margins, name="p-sensitive-margin", higher_is_better=True
        )
