"""Personalized privacy via guarding nodes (Xiao and Tao).

Each individual chooses a *guarding node* in the sensitive attribute's
taxonomy; a release must keep the adversary's probability of inferring any
value at or below that node within a bound.  Section 2 of the paper points
out that even this personalized model carries anonymization bias: breach
probabilities need not be equal across tuples, only bounded — this module
exposes the per-tuple breach probabilities as a property vector so that the
bias is measurable.
"""

from __future__ import annotations

from typing import Sequence

from ..anonymize.engine import Anonymization
from ..core.properties import _sensitive_column
from ..core.vector import PropertyVector
from ..hierarchy.base import SUPPRESSED
from ..hierarchy.categorical import TaxonomyHierarchy
from .base import PrivacyModel, PrivacyModelError


class PersonalizedPrivacy(PrivacyModel):
    """Guarding-node privacy with a global breach probability bound.

    Parameters
    ----------
    taxonomy:
        The sensitive attribute's taxonomy (guarding nodes live here).
    guarding_nodes:
        One guarding node per row: a leaf (value itself must be hidden to
        the bound), an internal token (the whole subtree must be hidden),
        or the suppression token (the individual requires no protection).
    bound:
        Maximum acceptable breach probability.
    sensitive_attribute:
        Column to protect; defaults to the schema's sole sensitive attribute.
    """

    def __init__(
        self,
        taxonomy: TaxonomyHierarchy,
        guarding_nodes: Sequence[object],
        bound: float,
        sensitive_attribute: str | None = None,
    ):
        if not 0.0 < bound <= 1.0:
            raise PrivacyModelError(f"bound must be in (0,1], got {bound}")
        self.taxonomy = taxonomy
        self.guarding_nodes = tuple(guarding_nodes)
        self.bound = float(bound)
        self.sensitive_attribute = sensitive_attribute
        self.name = f"personalized[{bound}]"
        self._subtree_cache: dict[object, frozenset] = {}

    def _subtree_leaves(self, node: object) -> frozenset:
        """Leaves covered by a guarding node."""
        if node in self._subtree_cache:
            return self._subtree_cache[node]
        if node == SUPPRESSED:
            leaves = frozenset(self.taxonomy.leaves)
        elif node in self.taxonomy.leaves:
            leaves = frozenset([node])
        else:
            covered = frozenset(
                leaf
                for leaf in self.taxonomy.leaves
                if node in self.taxonomy.generalizations(leaf)
            )
            if not covered:
                raise PrivacyModelError(
                    f"guarding node {node!r} not found in taxonomy "
                    f"{self.taxonomy.name!r}"
                )
            leaves = covered
        self._subtree_cache[node] = leaves
        return leaves

    def breach_probabilities(self, anonymization: Anonymization) -> list[float]:
        """Per-tuple probability that the adversary links the tuple to a
        sensitive value inside its guarding subtree.

        Estimated as the fraction of the tuple's equivalence class whose
        sensitive value falls under the guarding node; 0 for individuals
        whose guarding node is the taxonomy root (no protection requested —
        the Xiao-Tao convention for "I don't mind disclosure").
        """
        if len(self.guarding_nodes) != len(anonymization):
            raise PrivacyModelError(
                f"expected {len(anonymization)} guarding nodes, "
                f"got {len(self.guarding_nodes)}"
            )
        _, column = _sensitive_column(anonymization, self.sensitive_attribute)
        classes = anonymization.equivalence_classes
        probabilities = []
        for row_index, node in enumerate(self.guarding_nodes):
            if node == SUPPRESSED:
                probabilities.append(0.0)
                continue
            subtree = self._subtree_leaves(node)
            members = classes.members_of(row_index)
            inside = sum(1 for member in members if column[member] in subtree)
            probabilities.append(inside / len(members))
        return probabilities

    def measure(self, anonymization: Anonymization) -> float:
        """``1 - max breach probability`` (larger is better)."""
        probabilities = self.breach_probabilities(anonymization)
        return 1.0 - max(probabilities) if probabilities else 1.0

    def threshold(self) -> float:
        return 1.0 - self.bound

    def satisfied_by(self, anonymization: Anonymization) -> bool:
        # The bound itself is acceptable (<=), so compare with tolerance.
        return self.measure(anonymization) >= self.threshold() - 1e-12

    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        """Per-tuple guarding-node breach probability (lower is better)."""
        return PropertyVector(
            self.breach_probabilities(anonymization),
            name="guarding-breach-probability",
            higher_is_better=False,
        )
