"""Privacy models: scalar requirements plus their per-tuple property views."""

from .base import PrivacyModel, PrivacyModelError
from .kanonymity import KAnonymity
from .ldiversity import DistinctLDiversity, EntropyLDiversity, RecursiveCLDiversity
from .personalized import PersonalizedPrivacy
from .psensitive import PSensitiveKAnonymity
from .tcloseness import (
    TCloseness,
    equal_distance_emd,
    hierarchical_distance_emd,
    ordered_distance_emd,
)

__all__ = [
    "PrivacyModel",
    "PrivacyModelError",
    "KAnonymity",
    "DistinctLDiversity",
    "EntropyLDiversity",
    "RecursiveCLDiversity",
    "PersonalizedPrivacy",
    "PSensitiveKAnonymity",
    "TCloseness",
    "equal_distance_emd",
    "hierarchical_distance_emd",
    "ordered_distance_emd",
]
