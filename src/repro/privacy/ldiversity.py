"""l-diversity (Machanavajjhala et al.): distinct, entropy and recursive."""

from __future__ import annotations

import math

from ..anonymize.engine import Anonymization
from ..core.properties import _sensitive_column, distinct_sensitive_values
from ..core.vector import PropertyVector
from .base import PrivacyModel, PrivacyModelError


class DistinctLDiversity(PrivacyModel):
    """Each equivalence class must contain at least ``l`` distinct sensitive
    values."""

    def __init__(self, l: int, sensitive_attribute: str | None = None):
        if l < 1:
            raise PrivacyModelError(f"l must be >= 1, got {l}")
        self.l = l
        self.sensitive_attribute = sensitive_attribute
        self.name = f"distinct-{l}-diversity"

    def _histograms(self, anonymization: Anonymization):
        _, column = _sensitive_column(anonymization, self.sensitive_attribute)
        return anonymization.equivalence_classes.value_counts(column)

    def measure(self, anonymization: Anonymization) -> float:
        histograms = self._histograms(anonymization)
        if not histograms:
            return 0.0
        return float(min(len(h) for h in histograms))

    def threshold(self) -> float:
        return float(self.l)

    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        return distinct_sensitive_values(anonymization, self.sensitive_attribute)


class EntropyLDiversity(PrivacyModel):
    """Each class's sensitive-value entropy must be at least ``log(l)``.

    The scalar measure reported is the *effective l*: ``exp(min-entropy)``,
    so ``satisfied_by`` compares it against ``l`` directly.
    """

    def __init__(self, l: float, sensitive_attribute: str | None = None):
        if l < 1:
            raise PrivacyModelError(f"l must be >= 1, got {l}")
        self.l = float(l)
        self.sensitive_attribute = sensitive_attribute
        self.name = f"entropy-{l}-diversity"

    @staticmethod
    def _entropy(histogram: dict) -> float:
        total = sum(histogram.values())
        return -sum(
            (count / total) * math.log(count / total)
            for count in histogram.values()
        )

    def _histograms(self, anonymization: Anonymization):
        _, column = _sensitive_column(anonymization, self.sensitive_attribute)
        return anonymization.equivalence_classes.value_counts(column)

    def measure(self, anonymization: Anonymization) -> float:
        histograms = self._histograms(anonymization)
        if not histograms:
            return 0.0
        return math.exp(min(self._entropy(h) for h in histograms))

    def threshold(self) -> float:
        return self.l

    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        """Per-tuple effective-l of the tuple's class (higher is better)."""
        histograms = self._histograms(anonymization)
        classes = anonymization.equivalence_classes
        per_class = [math.exp(self._entropy(h)) for h in histograms]
        return PropertyVector(
            [per_class[classes.class_of(i)] for i in range(len(anonymization))],
            name="entropy-l",
            higher_is_better=True,
        )


class RecursiveCLDiversity(PrivacyModel):
    """Recursive (c, l)-diversity: in every class the most frequent
    sensitive value must satisfy ``r_1 < c · (r_l + r_{l+1} + ... + r_m)``.

    The scalar measure is the smallest ``c'`` margin ratio over classes,
    reported as ``c / c'`` fraction... concretely: ``measure`` returns the
    minimum over classes of ``c · tail_sum / r_1``; values ``> 1`` satisfy
    the requirement.
    """

    def __init__(self, c: float, l: int, sensitive_attribute: str | None = None):
        if c <= 0:
            raise PrivacyModelError(f"c must be positive, got {c}")
        if l < 1:
            raise PrivacyModelError(f"l must be >= 1, got {l}")
        self.c = float(c)
        self.l = l
        self.sensitive_attribute = sensitive_attribute
        self.name = f"recursive-({c},{l})-diversity"

    def _class_margin(self, histogram: dict) -> float:
        counts = sorted(histogram.values(), reverse=True)
        if len(counts) < self.l:
            return 0.0
        tail = sum(counts[self.l - 1 :])
        if counts[0] == 0:
            return float("inf")
        return self.c * tail / counts[0]

    def _histograms(self, anonymization: Anonymization):
        _, column = _sensitive_column(anonymization, self.sensitive_attribute)
        return anonymization.equivalence_classes.value_counts(column)

    def measure(self, anonymization: Anonymization) -> float:
        histograms = self._histograms(anonymization)
        if not histograms:
            return 0.0
        return min(self._class_margin(h) for h in histograms)

    def threshold(self) -> float:
        # The requirement r_1 < c * tail is strict; treat margin > 1 as
        # satisfied by using the smallest float above 1 as threshold.
        return 1.0 + 1e-12

    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        """Per-tuple margin of the tuple's class (higher is better)."""
        histograms = self._histograms(anonymization)
        classes = anonymization.equivalence_classes
        per_class = [self._class_margin(h) for h in histograms]
        finite = [m if math.isfinite(m) else len(anonymization) for m in per_class]
        return PropertyVector(
            [finite[classes.class_of(i)] for i in range(len(anonymization))],
            name="recursive-cl-margin",
            higher_is_better=True,
        )
