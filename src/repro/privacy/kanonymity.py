"""k-anonymity (Sweeney / Samarati)."""

from __future__ import annotations

from ..anonymize.engine import Anonymization
from ..core.properties import equivalence_class_size
from ..core.vector import PropertyVector
from .base import PrivacyModel, PrivacyModelError


class KAnonymity(PrivacyModel):
    """Every equivalence class must contain at least ``k`` tuples.

    The scalar measure is the minimum class size — the unary quality index
    ``P_k-anon`` of Section 3; the property vector is the per-tuple class
    size, whose distribution is where anonymization bias hides.
    """

    def __init__(self, k: int):
        if k < 1:
            raise PrivacyModelError(f"k must be >= 1, got {k}")
        self.k = k
        self.name = f"{k}-anonymity"

    def measure(self, anonymization: Anonymization) -> float:
        return float(anonymization.equivalence_classes.minimum_size())

    def threshold(self) -> float:
        return float(self.k)

    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        return equivalence_class_size(anonymization)
