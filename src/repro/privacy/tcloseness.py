"""t-closeness (Li, Li, Venkatasubramanian).

A release is t-close when, in every equivalence class, the distribution of
the sensitive attribute is within Earth Mover's Distance ``t`` of its
distribution in the whole table.  Two ground distances are provided, per the
original paper:

* *equal distance* — every pair of distinct categorical values is 1 apart;
  EMD reduces to total variation distance;
* *ordered distance* — values sit on a line (numeric or ordinal); EMD is the
  normalized cumulative-difference sum;
* *hierarchical distance* — values live in a taxonomy; moving mass costs
  the height fraction of the lowest common ancestor.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..anonymize.engine import Anonymization
from ..core.properties import _sensitive_column
from ..hierarchy.categorical import TaxonomyHierarchy
from ..core.vector import PropertyVector
from .base import PrivacyModel, PrivacyModelError


def equal_distance_emd(p: Sequence[float], q: Sequence[float]) -> float:
    """EMD under the equal ground distance: total variation distance."""
    if len(p) != len(q):
        raise PrivacyModelError("distributions must have equal support size")
    return 0.5 * sum(abs(a - b) for a, b in zip(p, q))


def hierarchical_distance_emd(
    p: Mapping[Any, float],
    q: Mapping[Any, float],
    taxonomy: "TaxonomyHierarchy",
) -> float:
    """EMD under Li et al.'s hierarchical ground distance.

    Moving mass between two values costs ``level(lca)/H`` — the height
    fraction of their lowest common ancestor.  The minimal-cost transport
    telescopes into a bottom-up pass: at each internal node, the mass that
    must cross it is the absolute net surplus of its subtree, and the cost
    of that crossing is one level's fraction of the height.

    ``p`` and ``q`` map leaf values to probabilities (missing leaves are 0).
    """
    height = taxonomy.height
    if height == 0:
        return 0.0
    # A tree metric with d(a, b) = level(lca)/H corresponds to edge weight
    # 1/(2H) on every parent link; the optimal transport cost is then the
    # absolute net flow over each edge, i.e. the per-subtree surplus,
    # aggregated level by level.
    total = 0.0
    surplus: dict[Any, float] = {
        leaf: p.get(leaf, 0.0) - q.get(leaf, 0.0) for leaf in taxonomy.leaves
    }
    level_of_key = 0
    for level in range(1, height + 1):
        total += sum(abs(value) for value in surplus.values()) / (2 * height)
        merged: dict[Any, float] = {}
        for leaf in taxonomy.leaves:
            source = taxonomy.generalize(leaf, level_of_key)
            target = taxonomy.generalize(leaf, level)
            if source in surplus:
                merged[target] = merged.get(target, 0.0) + surplus.pop(source)
        surplus = merged
        level_of_key = level
    return total


def ordered_distance_emd(p: Sequence[float], q: Sequence[float]) -> float:
    """EMD under the ordered ground distance.

    ``EMD = (1/(m-1)) Σ_{i=1..m-1} |Σ_{j<=i} (p_j - q_j)|`` for support size
    m; 0 for single-value supports.
    """
    if len(p) != len(q):
        raise PrivacyModelError("distributions must have equal support size")
    m = len(p)
    if m <= 1:
        return 0.0
    running = 0.0
    total = 0.0
    for a, b in zip(p[:-1], q[:-1]):
        running += a - b
        total += abs(running)
    return total / (m - 1)


class TCloseness(PrivacyModel):
    """Every class's sensitive distribution within EMD ``t`` of the table's.

    Parameters
    ----------
    t:
        The closeness requirement in [0, 1].
    sensitive_attribute:
        Column to protect; defaults to the schema's sole sensitive attribute.
    ordered:
        Use the ordered ground distance (values sorted by natural order)
        instead of the equal distance.
    taxonomy:
        Use the hierarchical ground distance over this taxonomy of the
        sensitive values instead (mutually exclusive with ``ordered``).
    """

    def __init__(
        self,
        t: float,
        sensitive_attribute: str | None = None,
        ordered: bool = False,
        taxonomy: TaxonomyHierarchy | None = None,
    ):
        if not 0.0 <= t <= 1.0:
            raise PrivacyModelError(f"t must be in [0,1], got {t}")
        if ordered and taxonomy is not None:
            raise PrivacyModelError(
                "choose either the ordered or the hierarchical ground distance"
            )
        self.t = float(t)
        self.sensitive_attribute = sensitive_attribute
        self.ordered = ordered
        self.taxonomy = taxonomy
        self.name = f"{t}-closeness"

    def _support(self, column: Sequence[Any]) -> list[Any]:
        values = set(column)
        try:
            return sorted(values)
        except TypeError:
            return sorted(values, key=repr)

    def _distribution(
        self, histogram: dict[Any, int], support: Sequence[Any], total: int
    ) -> list[float]:
        return [histogram.get(value, 0) / total for value in support]

    def class_distances(self, anonymization: Anonymization) -> list[float]:
        """Per-class EMD from the global distribution, in class order."""
        _, column = _sensitive_column(anonymization, self.sensitive_attribute)
        support = self._support(column)
        total = len(column)
        global_histogram: dict[Any, int] = {}
        for value in column:
            global_histogram[value] = global_histogram.get(value, 0) + 1
        global_p = self._distribution(global_histogram, support, total)
        if self.taxonomy is not None:
            global_map = dict(zip(support, global_p))
            distances = []
            for histogram in anonymization.equivalence_classes.value_counts(
                column
            ):
                size = sum(histogram.values())
                class_map = {
                    value: count / size for value, count in histogram.items()
                }
                distances.append(
                    hierarchical_distance_emd(class_map, global_map, self.taxonomy)
                )
            return distances
        emd = ordered_distance_emd if self.ordered else equal_distance_emd
        distances = []
        for histogram in anonymization.equivalence_classes.value_counts(column):
            size = sum(histogram.values())
            class_p = self._distribution(histogram, support, size)
            distances.append(emd(class_p, global_p))
        return distances

    def measure(self, anonymization: Anonymization) -> float:
        """Achieved closeness as ``1 - max class EMD`` so that, like the
        other models, larger measures are better and the threshold is a
        floor of ``1 - t``."""
        distances = self.class_distances(anonymization)
        if not distances:
            return 1.0
        return 1.0 - max(distances)

    def threshold(self) -> float:
        return 1.0 - self.t

    def property_vector(self, anonymization: Anonymization) -> PropertyVector:
        """Per-tuple EMD of the tuple's class (lower is better)."""
        distances = self.class_distances(anonymization)
        classes = anonymization.equivalence_classes
        return PropertyVector(
            [distances[classes.class_of(i)] for i in range(len(anonymization))],
            name="class-emd",
            higher_is_better=False,
        )
