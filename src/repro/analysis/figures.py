"""Plain-text figure rendering.

Terminal-friendly renderings of the paper's figures: grouped per-tuple bar
charts (Figure 1) and 2-D scatter plots of objective fronts (Section 7).
No plotting dependency — figures print anywhere the benches run.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.vector import PropertyVector


def bar_chart(
    series: Mapping[str, PropertyVector | Sequence[float]],
    width: int = 40,
    labels: Sequence[str] | None = None,
) -> str:
    """Grouped horizontal bar chart, one group per tuple (Figure 1 style).

    Parameters
    ----------
    series:
        Name -> per-tuple values; all series must have equal length.
    width:
        Character width of the longest bar.
    labels:
        Per-tuple row labels (default: 1-based tuple numbers).
    """
    materialized = {
        name: list(values) for name, values in series.items()
    }
    if not materialized:
        raise ValueError("bar chart requires at least one series")
    lengths = {len(values) for values in materialized.values()}
    if len(lengths) != 1:
        raise ValueError(f"series have unequal lengths: {sorted(lengths)}")
    count = lengths.pop()
    if labels is None:
        labels = [str(i + 1) for i in range(count)]
    if len(labels) != count:
        raise ValueError(f"expected {count} labels, got {len(labels)}")

    peak = max(max(values) for values in materialized.values())
    peak = peak if peak > 0 else 1.0
    name_width = max(len(name) for name in materialized)
    label_width = max(len(label) for label in labels)

    lines = []
    for index in range(count):
        lines.append(f"tuple {labels[index].rjust(label_width)}")
        for name, values in materialized.items():
            value = values[index]
            bar = "#" * max(0, round(width * value / peak))
            lines.append(
                f"  {name.ljust(name_width)} |{bar} {value:g}"
            )
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """ASCII scatter plot of 2-D points (Pareto fronts, rank arcs)."""
    if not points:
        raise ValueError("scatter plot requires at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        grid[row][column] = marker

    lines = [f"{y_label} ({y_low:g} .. {y_high:g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_low:g} .. {x_high:g})")
    return "\n".join(lines)
