"""Human-readable comparison reports.

Renders the full comparison story the paper advocates for a family of
anonymizations: per-property bias summaries, pairwise dominance and
▶-better relation matrices, binary index tables, and tournament rankings.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..anonymize.engine import Anonymization
from ..core.comparators import MetricComparator
from ..core.indices.binary import coverage, spread
from ..core.rproperty import PropertyProfile
from ..core.vector import PropertyVector
from .bias import bias_summary
from .matrix import format_relation_matrix, index_matrix, relation_matrix
from .tournament import copeland_ranking


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def property_report(
    vectors: Mapping[str, PropertyVector],
    comparators: Mapping[str, MetricComparator] | None = None,
) -> str:
    """Report on one property measured across several anonymizations."""
    lines: list[str] = []
    lines += _section("Bias summaries")
    for name, vector in vectors.items():
        lines.append(f"{name:>12}  {bias_summary(vector).describe()}")

    lines += _section("Strict dominance (Table 4 comparators)")
    lines.append(format_relation_matrix(relation_matrix(vectors), list(vectors)))

    lines += _section("P_cov (row vs column)")
    cov = index_matrix(vectors, coverage)
    for (first, second), value in sorted(cov.items()):
        lines.append(f"P_cov({first}, {second}) = {value:.3f}")

    lines += _section("P_spr (row vs column)")
    spr = index_matrix(vectors, spread)
    for (first, second), value in sorted(spr.items()):
        lines.append(f"P_spr({first}, {second}) = {value:.3f}")

    if comparators:
        for label, comparator in comparators.items():
            lines += _section(f"▶{label}-better relations")
            lines.append(
                format_relation_matrix(
                    relation_matrix(vectors, comparator), list(vectors)
                )
            )
            ranking = copeland_ranking(vectors, comparator)
            ranked = ", ".join(f"{name}({wins})" for name, wins in ranking)
            lines.append(f"wins: {ranked}")
    return "\n".join(lines).lstrip("\n")


def comparison_report(
    anonymizations: Sequence[Anonymization],
    profile: PropertyProfile,
    comparators: Mapping[str, MetricComparator] | None = None,
) -> str:
    """Full multi-property report for a family of anonymizations."""
    lines = [
        "Anonymization comparison report",
        "===============================",
        "",
        "Subjects: " + ", ".join(a.name for a in anonymizations),
        f"Properties (r={profile.r}): " + ", ".join(profile.names),
    ]
    induced = {a.name: profile.induce(a) for a in anonymizations}
    for position, property_name in enumerate(profile.names):
        lines += ["", f"=== Property: {property_name} ==="]
        vectors = {name: induced[name][position] for name in induced}
        lines.append(property_report(vectors, comparators))
    return "\n".join(lines)
