"""Bias quantification, comparison matrices, tournaments and reports."""

from .bias import BiasSummary, benefit_counts, bias_summary, gini_coefficient
from .diagnostics import (
    ComparatorDiagnostics,
    audit_comparator,
    condorcet_cycle_example,
    find_cycles,
)
from .figures import bar_chart, scatter_plot
from .individuals import (
    IndividualPreferences,
    individual_preferences,
    preference_table,
)
from .matrix import (
    format_relation_matrix,
    index_matrix,
    index_matrix_serial,
    relation_matrix,
    relation_matrix_serial,
    win_counts,
)
from .report import comparison_report, property_report
from .sweep import default_measures, format_sweep, k_sweep
from .tournament import copeland_ranking, hypervolume_ranking

__all__ = [
    "BiasSummary",
    "benefit_counts",
    "bias_summary",
    "gini_coefficient",
    "ComparatorDiagnostics",
    "audit_comparator",
    "condorcet_cycle_example",
    "find_cycles",
    "bar_chart",
    "IndividualPreferences",
    "individual_preferences",
    "preference_table",
    "scatter_plot",
    "format_relation_matrix",
    "index_matrix",
    "index_matrix_serial",
    "relation_matrix",
    "relation_matrix_serial",
    "win_counts",
    "comparison_report",
    "default_measures",
    "format_sweep",
    "k_sweep",
    "property_report",
    "copeland_ranking",
    "hypervolume_ranking",
]
