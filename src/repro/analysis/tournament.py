"""Tournament-style rankings of anonymization families.

Section 5.4 motivates the hypervolume comparator with a "tournament"
mechanism: a candidate is preferred not because it beats a specific rival
but because it outperforms more of the space of possible anonymizations.
This module ranks whole families:

* :func:`hypervolume_ranking` — by (log) dominated hypervolume, the direct
  tournament score;
* :func:`copeland_ranking` — by pairwise wins under any ▶-better comparator.
"""

from __future__ import annotations

from typing import Mapping

from ..core.comparators import MetricComparator
from ..core.indices.binary import log_dominated_hypervolume
from ..core.vector import PropertyVector
from .matrix import relation_matrix, win_counts


def hypervolume_ranking(
    vectors: Mapping[str, PropertyVector], reference: float = 0.0
) -> list[tuple[str, float]]:
    """Names with log dominated hypervolume, best first."""
    scores = [
        (name, log_dominated_hypervolume(vector, reference))
        for name, vector in vectors.items()
    ]
    return sorted(scores, key=lambda item: item[1], reverse=True)


def copeland_ranking(
    vectors: Mapping[str, PropertyVector], comparator: MetricComparator
) -> list[tuple[str, int]]:
    """Names with pairwise win counts under ``comparator``, best first.

    Ties in win count preserve insertion order of ``vectors``.
    """
    matrix = relation_matrix(vectors, comparator)
    counts = win_counts(matrix)
    return sorted(
        ((name, counts[name]) for name in vectors),
        key=lambda item: item[1],
        reverse=True,
    )
