"""Tournament-style rankings of anonymization families.

Section 5.4 motivates the hypervolume comparator with a "tournament"
mechanism: a candidate is preferred not because it beats a specific rival
but because it outperforms more of the space of possible anonymizations.
This module ranks whole families:

* :func:`hypervolume_ranking` — by (log) dominated hypervolume, the direct
  tournament score;
* :func:`copeland_ranking` — by pairwise wins under any ▶-better comparator.

Both rankings accept an optional
:class:`~repro.runtime.executor.StudyExecutor` and then evaluate their
per-candidate (hypervolume) or per-pair (Copeland) scores as runtime
tasks, sharing the executor's cache, run log and worker pool.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.comparators import MetricComparator
from ..core.indices.binary import log_dominated_hypervolume
from ..core.vector import PropertyVector
from ..runtime.executor import StudyExecutor
from ..runtime.task import TaskGraph, TaskSpec, register_op
from .matrix import relation_matrix, win_counts


@register_op("analysis.hypervolume-score")
def _op_hypervolume_score(
    params: Mapping[str, Any], deps: Mapping[str, Any], seed: int
) -> float:
    """One candidate's log dominated hypervolume."""
    return log_dominated_hypervolume(params["vector"], params["reference"])


def hypervolume_ranking(
    vectors: Mapping[str, PropertyVector],
    reference: float = 0.0,
    executor: StudyExecutor | None = None,
) -> list[tuple[str, float]]:
    """Names with log dominated hypervolume, best first.

    With ``executor`` each candidate's score is computed as a runtime task.
    """
    if executor is not None:
        graph = TaskGraph()
        for name, vector in vectors.items():
            graph.add(
                TaskSpec(
                    task_id=f"hypervolume:{name}",
                    op="analysis.hypervolume-score",
                    params={"vector": vector, "reference": reference},
                )
            )
        report = executor.run(graph)
        report.raise_on_failure()
        scores = [
            (name, report.value(f"hypervolume:{name}")) for name in vectors
        ]
    else:
        scores = [
            (name, log_dominated_hypervolume(vector, reference))
            for name, vector in vectors.items()
        ]
    return sorted(scores, key=lambda item: item[1], reverse=True)


def copeland_ranking(
    vectors: Mapping[str, PropertyVector],
    comparator: MetricComparator,
    executor: StudyExecutor | None = None,
) -> list[tuple[str, int]]:
    """Names with pairwise win counts under ``comparator``, best first.

    Ties in win count preserve insertion order of ``vectors``.  With
    ``executor`` the pairwise relations run as runtime tasks.
    """
    matrix = relation_matrix(vectors, comparator, executor=executor)
    counts = win_counts(matrix)
    return sorted(
        ((name, counts[name]) for name in vectors),
        key=lambda item: item[1],
        reverse=True,
    )
