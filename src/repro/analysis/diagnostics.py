"""Comparator diagnostics.

The paper defines comparators as "user-defined ways of evaluating the
superiority of a property vector" (Section 3) — which invites users to
define their own.  This module checks the order-theoretic hygiene of any
comparator on a concrete family of vectors:

* **antisymmetry** — ``relation(a, b)`` must be the flip of
  ``relation(b, a)``;
* **self-equivalence** — ``relation(a, a)`` must be EQUIVALENT;
* **transitivity / cycles** — ▶-better relations need *not* be transitive:
  pairwise-majority comparators like ▶cov can form Condorcet cycles
  (a ▶ b ▶ c ▶ a).  :func:`find_cycles` surfaces them, because a cyclic
  comparator cannot rank a family without a tournament rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.comparators import MetricComparator, Relation
from ..core.vector import PropertyVector


@dataclass
class ComparatorDiagnostics:
    """Violations found while auditing a comparator on a vector family."""

    comparator_name: str
    antisymmetry_violations: list[tuple[str, str]] = field(default_factory=list)
    self_equivalence_violations: list[str] = field(default_factory=list)
    cycles: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def lawful(self) -> bool:
        """Whether antisymmetry and self-equivalence both held (cycles are
        reported but are not law violations — ▶-better comparators are not
        required to be transitive)."""
        return not self.antisymmetry_violations and not (
            self.self_equivalence_violations
        )

    def describe(self) -> str:
        """One-line human-readable rendering of the audit outcome."""
        return (
            f"{self.comparator_name}: "
            f"antisymmetry violations={len(self.antisymmetry_violations)}, "
            f"self-equivalence violations={len(self.self_equivalence_violations)}, "
            f"cycles={len(self.cycles)}"
        )


def audit_comparator(
    comparator: MetricComparator,
    vectors: Mapping[str, PropertyVector],
) -> ComparatorDiagnostics:
    """Audit a comparator over all pairs of the named vectors."""
    names = list(vectors)
    diagnostics = ComparatorDiagnostics(comparator_name=comparator.name)
    relations: dict[tuple[str, str], Relation] = {}
    for first in names:
        if (
            comparator.relation(vectors[first], vectors[first])
            is not Relation.EQUIVALENT
        ):
            diagnostics.self_equivalence_violations.append(first)
        for second in names:
            if first != second:
                relations[(first, second)] = comparator.relation(
                    vectors[first], vectors[second]
                )
    for first in names:
        for second in names:
            if first < second:
                forward = relations[(first, second)]
                backward = relations[(second, first)]
                if forward is not backward.flipped():
                    diagnostics.antisymmetry_violations.append((first, second))
    diagnostics.cycles = find_cycles(relations, names)
    return diagnostics


def find_cycles(
    relations: Mapping[tuple[str, str], Relation],
    names: Sequence[str],
    max_length: int = 4,
) -> list[tuple[str, ...]]:
    """Directed BETTER-cycles of length up to ``max_length`` (canonicalized
    so each cycle is reported once, starting from its smallest member)."""
    better = {
        (a, b)
        for (a, b), relation in relations.items()
        if relation is Relation.BETTER
    }
    cycles: set[tuple[str, ...]] = set()

    def extend(path: tuple[str, ...]) -> None:
        last = path[-1]
        for candidate in names:
            if (last, candidate) not in better:
                continue
            if candidate == path[0] and len(path) >= 3:
                rotation = min(
                    path[i:] + path[:i] for i in range(len(path))
                )
                cycles.add(rotation)
            elif candidate not in path and len(path) < max_length:
                extend(path + (candidate,))

    for name in names:
        extend((name,))
    return sorted(cycles)


def condorcet_cycle_example() -> dict[str, PropertyVector]:
    """Three class-size-style vectors forming a ▶cov Condorcet cycle.

    Each vector beats the next on 2 of 3 tuples: a ▶cov b ▶cov c ▶cov a.
    A fact about pairwise-majority comparators the paper leaves implicit —
    ranking a family with ▶cov requires a tournament rule, not sorting.
    """
    return {
        "a": PropertyVector([3.0, 2.0, 1.0]),
        "b": PropertyVector([2.0, 1.0, 3.0]),
        "c": PropertyVector([1.0, 3.0, 2.0]),
    }
