"""Per-individual comparison of anonymizations.

Section 2's user-level reading of Figure 1: "if user 8 is to choose
between the anonymizations T3b and T4, the choice would be the latter ...
however, if user 3 is in question then T3b is in fact better than T4."
This module computes exactly that: for each tuple, which candidate release
gives it the best property value, plus summary tallies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.vector import PropertyVector, check_all_comparable


@dataclass(frozen=True)
class IndividualPreferences:
    """Per-tuple winners among a family of property vectors."""

    #: candidate names, in presentation order.
    candidates: tuple[str, ...]
    #: per tuple, the names achieving that tuple's best value (ties share).
    winners: tuple[tuple[str, ...], ...]

    def __len__(self) -> int:
        return len(self.winners)

    def sole_win_counts(self) -> dict[str, int]:
        """Tuples for which each candidate is the *unique* best choice."""
        counts = {name: 0 for name in self.candidates}
        for winner_group in self.winners:
            if len(winner_group) == 1:
                counts[winner_group[0]] += 1
        return counts

    def win_counts(self) -> dict[str, int]:
        """Tuples for which each candidate is (possibly jointly) best."""
        counts = {name: 0 for name in self.candidates}
        for winner_group in self.winners:
            for name in winner_group:
                counts[name] += 1
        return counts

    def contested(self) -> int:
        """Tuples whose best release is not shared by all candidates —
        the individuals for whom the choice of anonymization matters."""
        return sum(
            1
            for winner_group in self.winners
            if len(winner_group) < len(self.candidates)
        )


def individual_preferences(
    vectors: Mapping[str, PropertyVector]
) -> IndividualPreferences:
    """For each tuple, the candidate(s) with the best oriented value."""
    if not vectors:
        raise ValueError("need at least one candidate")
    names = tuple(vectors)
    family = [vectors[name] for name in names]
    check_all_comparable(family)
    rows = [vector.oriented for vector in family]
    length = len(rows[0])
    best = [
        max(rows[row][column] for row in range(len(names)))
        for column in range(length)
    ]
    winners = tuple(
        tuple(
            names[row]
            for row in range(len(names))
            if rows[row][column] == best[column]
        )
        for column in range(length)
    )
    return IndividualPreferences(candidates=names, winners=winners)


def preference_table(
    vectors: Mapping[str, PropertyVector],
    labels: Sequence[str] | None = None,
) -> str:
    """Plain-text per-tuple preference listing (Figure 1's narrative)."""
    preferences = individual_preferences(vectors)
    if labels is None:
        labels = [str(i + 1) for i in range(len(preferences))]
    if len(labels) != len(preferences):
        raise ValueError(
            f"expected {len(preferences)} labels, got {len(labels)}"
        )
    lines = ["tuple  best release(s)"]
    for label, winner_group in zip(labels, preferences.winners):
        lines.append(f"{label:>5}  {', '.join(winner_group)}")
    tallies = ", ".join(
        f"{name}: {count}" for name, count in preferences.win_counts().items()
    )
    lines.append(f"wins ({tallies}); contested tuples: "
                 f"{preferences.contested()}/{len(preferences)}")
    return "\n".join(lines)
