"""Pairwise comparison matrices over families of anonymizations."""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..core.comparators import MetricComparator, Relation, dominance_relation
from ..core.vector import PropertyVector

PairKey = tuple[str, str]


def relation_matrix(
    vectors: Mapping[str, PropertyVector],
    comparator: MetricComparator | None = None,
) -> dict[PairKey, Relation]:
    """All ordered-pair relations between the named property vectors.

    With ``comparator=None`` the strict dominance relation of Table 4 is
    used; otherwise the given ▶-better comparator.
    """
    names = list(vectors)
    matrix: dict[PairKey, Relation] = {}
    for first in names:
        for second in names:
            if first == second:
                matrix[(first, second)] = Relation.EQUIVALENT
            elif comparator is None:
                matrix[(first, second)] = dominance_relation(
                    vectors[first], vectors[second]
                )
            else:
                matrix[(first, second)] = comparator.relation(
                    vectors[first], vectors[second]
                )
    return matrix


def index_matrix(
    vectors: Mapping[str, PropertyVector],
    index: Callable[[PropertyVector, PropertyVector], float],
) -> dict[PairKey, float]:
    """All ordered-pair binary index values (e.g. ``P_cov`` between every
    pair of candidate anonymizations)."""
    names = list(vectors)
    return {
        (first, second): index(vectors[first], vectors[second])
        for first in names
        for second in names
        if first != second
    }


def win_counts(matrix: Mapping[PairKey, Relation]) -> dict[str, int]:
    """Copeland-style win counts from a relation matrix."""
    counts: dict[str, int] = {}
    for (first, second), relation in matrix.items():
        counts.setdefault(first, 0)
        counts.setdefault(second, 0)
        if first != second and relation is Relation.BETTER:
            counts[first] += 1
    return counts


def format_relation_matrix(
    matrix: Mapping[PairKey, Relation], names: Sequence[str] | None = None
) -> str:
    """Plain-text rendering of a relation matrix (rows compare against
    columns; ``>`` better, ``<`` worse, ``=`` equivalent, ``||``
    incomparable)."""
    if names is None:
        names = sorted({name for pair in matrix for name in pair})
    symbol = {
        Relation.BETTER: ">",
        Relation.WORSE: "<",
        Relation.EQUIVALENT: "=",
        Relation.INCOMPARABLE: "||",
    }
    width = max(len(name) for name in names)
    cell_width = max(width, 2)
    header = " " * (width + 2) + "  ".join(name.ljust(cell_width) for name in names)
    lines = [header]
    for first in names:
        cells = [
            symbol[matrix[(first, second)]].ljust(cell_width) for second in names
        ]
        lines.append(f"{first.ljust(width)}  " + "  ".join(cells))
    return "\n".join(lines)
