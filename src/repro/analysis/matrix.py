"""Pairwise comparison matrices over families of anonymizations.

All-pairs relation and index matrices are embarrassingly parallel; both
builders accept an optional :class:`~repro.runtime.executor.StudyExecutor`
and then fan each ordered pair out as a runtime task (property vectors and
comparators are picklable, so cells may run in worker processes).  Without
an executor the loops run in place, exactly as before.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..core.comparators import MetricComparator, Relation, dominance_relation
from ..core.vector import PropertyVector
from ..runtime.executor import StudyExecutor
from ..runtime.task import TaskGraph, TaskSpec, register_op

PairKey = tuple[str, str]


@register_op("analysis.relation-cell")
def _op_relation_cell(
    params: Mapping[str, Any], deps: Mapping[str, Any], seed: int
) -> Relation:
    """One ordered-pair relation (dominance or a ▶-better comparator)."""
    comparator = params["comparator"]
    if comparator is None:
        return dominance_relation(params["first"], params["second"])
    return comparator.relation(params["first"], params["second"])


@register_op("analysis.index-cell")
def _op_index_cell(
    params: Mapping[str, Any], deps: Mapping[str, Any], seed: int
) -> float:
    """One ordered-pair binary index value."""
    return params["index"](params["first"], params["second"])


def _pairwise_fanout(
    vectors: Mapping[str, PropertyVector],
    op: str,
    cell_params: Callable[[str, str], dict[str, Any]],
    executor: StudyExecutor,
) -> dict[PairKey, Any]:
    """Run one task per ordered pair of distinct names on the executor."""
    names = list(vectors)
    graph = TaskGraph()
    pairs: list[PairKey] = []
    for first in names:
        for second in names:
            if first == second:
                continue
            pairs.append((first, second))
            graph.add(
                TaskSpec(
                    task_id=f"{op}:{first}|{second}",
                    op=op,
                    params=cell_params(first, second),
                )
            )
    report = executor.run(graph)
    report.raise_on_failure()
    return {
        (first, second): report.value(f"{op}:{first}|{second}")
        for first, second in pairs
    }


def relation_matrix_serial(
    vectors: Mapping[str, PropertyVector],
    comparator: MetricComparator | None = None,
) -> dict[PairKey, Relation]:
    """All ordered-pair relations, computed in-process.

    The pure half of :func:`relation_matrix`: no executor, no task graph —
    and therefore the path registered task operations (``compare``) call,
    so the parallel-safety pass can certify them without the conservative
    call graph dragging a nested :class:`StudyExecutor` (clocks, run-dir
    IO, observability state) into their effect summaries.
    """
    names = list(vectors)
    matrix: dict[PairKey, Relation] = {}
    for first in names:
        for second in names:
            if first == second:
                matrix[(first, second)] = Relation.EQUIVALENT
            elif comparator is None:
                matrix[(first, second)] = dominance_relation(
                    vectors[first], vectors[second]
                )
            else:
                matrix[(first, second)] = comparator.relation(
                    vectors[first], vectors[second]
                )
    return matrix


def relation_matrix(
    vectors: Mapping[str, PropertyVector],
    comparator: MetricComparator | None = None,
    executor: StudyExecutor | None = None,
) -> dict[PairKey, Relation]:
    """All ordered-pair relations between the named property vectors.

    With ``comparator=None`` the strict dominance relation of Table 4 is
    used; otherwise the given ▶-better comparator.  With ``executor`` the
    cells run as runtime tasks (parallel for ``jobs > 1``).
    """
    if executor is None:
        return relation_matrix_serial(vectors, comparator)
    matrix = _pairwise_fanout(
        vectors,
        "analysis.relation-cell",
        lambda first, second: {
            "first": vectors[first],
            "second": vectors[second],
            "comparator": comparator,
        },
        executor,
    )
    for name in vectors:
        matrix[(name, name)] = Relation.EQUIVALENT
    return matrix


def index_matrix_serial(
    vectors: Mapping[str, PropertyVector],
    index: Callable[[PropertyVector, PropertyVector], float],
) -> dict[PairKey, float]:
    """All ordered-pair binary index values, computed in-process."""
    names = list(vectors)
    return {
        (first, second): index(vectors[first], vectors[second])
        for first in names
        for second in names
        if first != second
    }


def index_matrix(
    vectors: Mapping[str, PropertyVector],
    index: Callable[[PropertyVector, PropertyVector], float],
    executor: StudyExecutor | None = None,
) -> dict[PairKey, float]:
    """All ordered-pair binary index values (e.g. ``P_cov`` between every
    pair of candidate anonymizations).  With ``executor`` the cells run as
    runtime tasks."""
    if executor is None:
        return index_matrix_serial(vectors, index)
    return _pairwise_fanout(
        vectors,
        "analysis.index-cell",
        lambda first, second: {
            "first": vectors[first],
            "second": vectors[second],
            "index": index,
        },
        executor,
    )


def win_counts(matrix: Mapping[PairKey, Relation]) -> dict[str, int]:
    """Copeland-style win counts from a relation matrix."""
    counts: dict[str, int] = {}
    for (first, second), relation in matrix.items():
        counts.setdefault(first, 0)
        counts.setdefault(second, 0)
        if first != second and relation is Relation.BETTER:
            counts[first] += 1
    return counts


def format_relation_matrix(
    matrix: Mapping[PairKey, Relation], names: Sequence[str] | None = None
) -> str:
    """Plain-text rendering of a relation matrix (rows compare against
    columns; ``>`` better, ``<`` worse, ``=`` equivalent, ``||``
    incomparable)."""
    if names is None:
        names = sorted({name for pair in matrix for name in pair})
    symbol = {
        Relation.BETTER: ">",
        Relation.WORSE: "<",
        Relation.EQUIVALENT: "=",
        Relation.INCOMPARABLE: "||",
    }
    width = max(len(name) for name in names)
    cell_width = max(width, 2)
    header = " " * (width + 2) + "  ".join(name.ljust(cell_width) for name in names)
    lines = [header]
    for first in names:
        cells = [
            symbol[matrix[(first, second)]].ljust(cell_width) for second in names
        ]
        lines.append(f"{first.ljust(width)}  " + "  ".join(cells))
    return "\n".join(lines)
