"""Parameter sweeps across anonymization configurations.

The k-sweep is the workhorse of disclosure-control evaluations: run an
algorithm family across k values and track privacy, bias and utility
measures side by side.  Returns plain row dicts so callers can print,
plot or assert on them.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..anonymize.algorithms.base import Anonymizer
from ..anonymize.engine import Anonymization
from ..core.indices.unary import GiniIndex
from ..core.properties import equivalence_class_size
from ..datasets.dataset import Dataset
from ..hierarchy.base import Hierarchy
from ..utility.discernibility import discernibility
from ..utility.loss_metric import general_loss

#: A measure over a release: name -> value.
Measure = Callable[[Anonymization, Mapping[str, Hierarchy]], float]


def default_measures() -> dict[str, Measure]:
    """Privacy + bias + utility measures for a standard sweep."""
    gini = GiniIndex()
    return {
        "k_achieved": lambda release, _h: float(release.k()),
        "suppressed": lambda release, _h: float(len(release.suppressed)),
        "class_gini": lambda release, _h: gini.value(
            equivalence_class_size(release)
        ),
        "lm": lambda release, hierarchies: general_loss(release, hierarchies),
        "dm": lambda release, _h: float(discernibility(release)),
    }


def k_sweep(
    algorithm_factory: Callable[[int], Anonymizer],
    dataset: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    ks: Sequence[int],
    measures: Mapping[str, Measure] | None = None,
) -> list[dict[str, float]]:
    """Run ``algorithm_factory(k)`` for each k and measure the releases.

    Returns one row dict per k: ``{"k": k, <measure>: value, ...}``.
    """
    if not ks:
        raise ValueError("sweep needs at least one k")
    chosen = dict(measures) if measures is not None else default_measures()
    rows = []
    for k in ks:
        release = algorithm_factory(k).anonymize(dataset, hierarchies)
        row: dict[str, float] = {"k": float(k)}
        for name, measure in chosen.items():
            row[name] = measure(release, hierarchies)
        rows.append(row)
    return rows


def format_sweep(rows: Sequence[Mapping[str, float]]) -> str:
    """Fixed-width table rendering of sweep rows."""
    if not rows:
        raise ValueError("no sweep rows to format")
    columns = list(rows[0])
    widths = {
        column: max(len(column), 10)
        for column in columns
    }
    header = "  ".join(column.rjust(widths[column]) for column in columns)
    lines = [header]
    for row in rows:
        lines.append(
            "  ".join(
                f"{row[column]:>{widths[column]}.4g}" for column in columns
            )
        )
    return "\n".join(lines)
