"""Parameter sweeps across anonymization configurations.

The k-sweep is the workhorse of disclosure-control evaluations: run an
algorithm family across k values and track privacy, bias and utility
measures side by side.  Returns plain row dicts so callers can print,
plot or assert on them.

Sweeps execute through :mod:`repro.runtime`: each k value becomes one task
on a :class:`~repro.runtime.executor.StudyExecutor`, so sweeps share the
runtime's event log, retry policy and failure isolation.  Because the
factory and measures here are arbitrary callables, the sweep op is
*inline-only* (it runs in the coordinating process); for process-parallel,
memoized sweeps express the grid as a :class:`~repro.runtime.study.StudySpec`
with named algorithms and run it with ``jobs > 1`` (``repro study``).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..anonymize.algorithms.base import Anonymizer
from ..anonymize.engine import Anonymization
from ..core.indices.unary import GiniIndex
from ..core.properties import equivalence_class_size
from ..datasets.dataset import Dataset
from ..hierarchy.base import Hierarchy
from ..runtime.executor import StudyExecutor
from ..runtime.task import TaskGraph, TaskSpec, register_op
from ..utility.discernibility import discernibility
from ..utility.loss_metric import general_loss

#: A measure over a release: name -> value.
Measure = Callable[[Anonymization, Mapping[str, Hierarchy]], float]


def default_measures() -> dict[str, Measure]:
    """Privacy + bias + utility measures for a standard sweep."""
    gini = GiniIndex()
    return {
        "k_achieved": lambda release, _h: float(release.k()),
        "suppressed": lambda release, _h: float(len(release.suppressed)),
        "class_gini": lambda release, _h: gini.value(
            equivalence_class_size(release)
        ),
        "lm": lambda release, hierarchies: general_loss(release, hierarchies),
        "dm": lambda release, _h: float(discernibility(release)),
    }


@register_op("analysis.sweep-cell", inline_only=True)
def _op_sweep_cell(
    params: Mapping[str, Any], deps: Mapping[str, Any], seed: int
) -> dict[str, float]:
    """One sweep cell: anonymize at k, evaluate every measure."""
    k = params["k"]
    release = params["factory"](k).anonymize(params["dataset"], params["hierarchies"])
    row: dict[str, float] = {"k": float(k)}
    for name, measure in params["measures"].items():
        row[name] = measure(release, params["hierarchies"])
    return row


def k_sweep(
    algorithm_factory: Callable[[int], Anonymizer],
    dataset: Dataset,
    hierarchies: Mapping[str, Hierarchy],
    ks: Sequence[int],
    measures: Mapping[str, Measure] | None = None,
    executor: StudyExecutor | None = None,
) -> list[dict[str, float]]:
    """Run ``algorithm_factory(k)`` for each k and measure the releases.

    Returns one row dict per k: ``{"k": k, <measure>: value, ...}``.  Cells
    execute as tasks on ``executor`` (a fresh serial
    :class:`~repro.runtime.executor.StudyExecutor` by default), inheriting
    its run log and retry policy.
    """
    if not ks:
        raise ValueError("sweep needs at least one k")
    chosen = dict(measures) if measures is not None else default_measures()
    graph = TaskGraph()
    task_ids = []
    for position, k in enumerate(ks):
        task_id = f"sweep:{position}:k={k}"
        task_ids.append(task_id)
        graph.add(
            TaskSpec(
                task_id=task_id,
                op="analysis.sweep-cell",
                params={
                    "k": k,
                    "factory": algorithm_factory,
                    "dataset": dataset,
                    "hierarchies": hierarchies,
                    "measures": chosen,
                },
            )
        )
    runner = executor if executor is not None else StudyExecutor(jobs=1)
    report = runner.run(graph)
    report.raise_on_failure()
    return [report.value(task_id) for task_id in task_ids]


def format_sweep(rows: Sequence[Mapping[str, float]]) -> str:
    """Fixed-width table rendering of sweep rows."""
    if not rows:
        raise ValueError("no sweep rows to format")
    columns = list(rows[0])
    widths = {
        column: max(len(column), 10)
        for column in columns
    }
    header = "  ".join(column.rjust(widths[column]) for column in columns)
    lines = [header]
    for row in rows:
        lines.append(
            "  ".join(
                f"{row[column]:>{widths[column]}.4g}" for column in columns
            )
        )
    return "\n".join(lines)
