"""Quantifying anonymization bias.

The paper defines anonymization bias as the skew of a property's
distribution across tuples: a scalar privacy level can hide that some
individuals get far more protection than others (Section 2).  This module
summarizes a property vector's distribution with the statistics that make
the bias visible — including the Gini coefficient of the property values and
the fraction of tuples stuck at the minimum (the tuples the scalar model is
actually about).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.array import xp as np

from ..core.vector import PropertyVector


@dataclass(frozen=True)
class BiasSummary:
    """Distributional summary of one property vector.

    All statistics are over the *oriented* values (higher is better), so
    ``minimum`` is always the worst-protected tuple's level.
    """

    property_name: str
    size: int
    minimum: float
    maximum: float
    mean: float
    median: float
    std: float
    gini: float
    fraction_at_minimum: float

    @property
    def spread(self) -> float:
        """Range of property values — 0 means a perfectly unbiased
        anonymization (every tuple equally treated)."""
        return self.maximum - self.minimum

    def describe(self) -> str:
        """One-line human-readable rendering of the summary."""
        return (
            f"{self.property_name}: min={self.minimum:g} max={self.maximum:g} "
            f"mean={self.mean:.4g} median={self.median:g} std={self.std:.4g} "
            f"gini={self.gini:.4f} at-min={self.fraction_at_minimum:.1%}"
        )


def gini_coefficient(values: "np.ndarray") -> float:
    """Gini coefficient of non-negative values (0 = equal, → 1 = skewed).

    Values are shifted to be non-negative first, since property vectors may
    be oriented by negation.
    """
    array = np.sort(np.asarray(values, dtype=float))
    shifted = array - array.min() if array.min() < 0 else array
    total = shifted.sum()
    if total == 0:
        return 0.0
    n = shifted.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * shifted).sum()) / (n * total) - (n + 1) / n)


def bias_summary(vector: PropertyVector) -> BiasSummary:
    """Distributional bias summary of one property vector."""
    oriented = vector.oriented
    minimum = float(oriented.min())
    return BiasSummary(
        property_name=vector.name,
        size=len(vector),
        minimum=minimum,
        maximum=float(oriented.max()),
        mean=float(oriented.mean()),
        median=float(np.median(oriented)),
        std=float(oriented.std()),
        gini=gini_coefficient(oriented),
        fraction_at_minimum=float(np.mean(oriented == minimum)),
    )


def benefit_counts(
    first: PropertyVector, second: PropertyVector
) -> tuple[int, int, int]:
    """Tuples favored by ``first``, by ``second``, and tied.

    The per-individual view of Section 2: "different anonymizations can in
    fact be better for different individuals."
    """
    from ..core.vector import check_comparable

    check_comparable(first, second)
    first_wins = int(np.count_nonzero(first.oriented > second.oriented))
    second_wins = int(np.count_nonzero(second.oriented > first.oriented))
    ties = len(first) - first_wins - second_wins
    return first_wins, second_wins, ties
