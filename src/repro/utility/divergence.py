"""Distributional utility: marginal reconstruction divergence.

A released table supports statistical analysis through the distributions an
analyst can *reconstruct* from it.  Under the uniformity assumption, each
generalized cell spreads its mass evenly over the raw values it covers;
this module measures the Jensen-Shannon divergence between every QI
attribute's true marginal and its reconstruction — 0 when the release
preserves the marginal exactly, up to ``log 2`` when it destroys it.

(JS rather than KL: symmetric, bounded, and defined when reconstruction
puts zero mass where the data has some.)
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..anonymize.engine import Anonymization
from ..hierarchy.base import SUPPRESSED, Hierarchy, Interval
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.numeric import Span


def _covered_values(
    cell: Any, domain: list[Any], hierarchy: Hierarchy | None
) -> list[Any]:
    """Raw domain values a released cell spreads its mass over."""
    if cell in domain:
        return [cell]
    if cell == SUPPRESSED:
        return list(domain)
    if isinstance(cell, frozenset):
        return [value for value in domain if value in cell]
    if isinstance(cell, (Interval, Span)):
        return [
            value
            for value in domain
            if isinstance(value, (int, float)) and value in cell
        ]
    if isinstance(cell, str) and "*" in cell:
        prefix = cell.rstrip("*")
        return [
            value
            for value in domain
            if isinstance(value, str) and value.startswith(prefix)
            and len(value) == len(cell)
        ]
    if isinstance(hierarchy, TaxonomyHierarchy):
        return [
            value
            for value in domain
            if cell in hierarchy.generalizations(value)
        ]
    return []


def reconstructed_marginal(
    anonymization: Anonymization,
    attribute: str,
    hierarchy: Hierarchy | None = None,
) -> dict[Any, float]:
    """The attribute's marginal as an analyst would reconstruct it from the
    release under uniformity, over the raw domain observed in the data."""
    domain = sorted(
        anonymization.original.distinct(attribute), key=repr
    )
    position = anonymization.original.schema.index_of(attribute)
    mass: dict[Any, float] = {value: 0.0 for value in domain}
    for row in anonymization.released:
        covered = _covered_values(row[position], domain, hierarchy)
        if not covered:
            continue  # cell covers nothing observed: mass is lost
        share = 1.0 / len(covered)
        for value in covered:
            mass[value] += share
    total = sum(mass.values())
    if total == 0:
        return mass
    return {value: amount / total for value, amount in mass.items()}


def _js_divergence(p: Mapping[Any, float], q: Mapping[Any, float]) -> float:
    support = set(p) | set(q)
    total = 0.0
    for value in support:
        a = p.get(value, 0.0)
        b = q.get(value, 0.0)
        middle = (a + b) / 2
        if a > 0:
            total += 0.5 * a * math.log(a / middle)
        if b > 0:
            total += 0.5 * b * math.log(b / middle)
    # Guard against tiny negative rounding residue on (near-)identical
    # distributions.
    return max(total, 0.0)


def marginal_divergence(
    anonymization: Anonymization,
    attribute: str,
    hierarchy: Hierarchy | None = None,
) -> float:
    """JS divergence (nats, in ``[0, log 2]``) between the attribute's true
    marginal and its reconstruction from the release."""
    column = anonymization.original.column(attribute)
    truth: dict[Any, float] = {}
    for value in column:
        truth[value] = truth.get(value, 0.0) + 1.0 / len(column)
    reconstruction = reconstructed_marginal(anonymization, attribute, hierarchy)
    return _js_divergence(truth, reconstruction)


def total_marginal_divergence(
    anonymization: Anonymization,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> float:
    """Mean marginal divergence over all quasi-identifier attributes."""
    lookup = hierarchies or {}
    names = anonymization.original.schema.quasi_identifier_names
    if not names:
        return 0.0
    return sum(
        marginal_divergence(anonymization, name, lookup.get(name))
        for name in names
    ) / len(names)
