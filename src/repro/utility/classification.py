"""Iyengar's classification metric (CM).

The second utility metric of Iyengar [KDD 2002] (alongside LM): when the
released table is destined for classifier training, a tuple is "damaged"
if its class label disagrees with the majority label of its equivalence
class (the class boundary was generalized away), or if it is suppressed.
CM is the fraction of damaged tuples; the per-tuple penalties form a
property vector like every other measure here.
"""

from __future__ import annotations

from typing import Any

from ..anonymize.engine import Anonymization, resolve_sensitive_column
from ..core.vector import PropertyVector


def _majority_labels(
    anonymization: Anonymization, column: tuple[Any, ...]
) -> list[Any]:
    """Majority label per equivalence class (ties broken by first seen)."""
    majorities = []
    for histogram in anonymization.equivalence_classes.value_counts(column):
        majorities.append(max(histogram, key=histogram.get))
    return majorities


def tuple_classification_penalties(
    anonymization: Anonymization, label_attribute: str | None = None
) -> list[int]:
    """Per-tuple CM penalty (0 or 1), in row order.

    A tuple is penalized when suppressed or when its label is not its
    class's majority label.
    """
    _, column = resolve_sensitive_column(anonymization, label_attribute)
    classes = anonymization.equivalence_classes
    majorities = _majority_labels(anonymization, column)
    penalties = []
    for row_index in range(len(anonymization)):
        if row_index in anonymization.suppressed:
            penalties.append(1)
            continue
        majority = majorities[classes.class_of(row_index)]
        penalties.append(0 if column[row_index] == majority else 1)
    return penalties


def classification_metric(
    anonymization: Anonymization, label_attribute: str | None = None
) -> float:
    """CM in [0, 1]: fraction of damaged tuples (lower is better)."""
    penalties = tuple_classification_penalties(anonymization, label_attribute)
    return sum(penalties) / len(penalties) if penalties else 0.0


def cm_vector(
    anonymization: Anonymization, label_attribute: str | None = None
) -> PropertyVector:
    """Per-tuple CM penalties as a property vector (lower is better)."""
    return PropertyVector(
        tuple_classification_penalties(anonymization, label_attribute),
        name="classification-penalty",
        higher_is_better=False,
    )
