"""The discernibility metric (DM) of Bayardo and Agrawal.

DM charges each tuple the size of the equivalence class it is released in
(tuples in big, indistinct classes are less useful), and charges every
suppressed tuple the full data set size N.  The per-tuple penalties are a
natural utility *property vector* (lower is better); the classical scalar DM
is their sum, equal to Σ|E|² over classes plus N·(number suppressed).
"""

from __future__ import annotations

from ..anonymize.engine import Anonymization


def tuple_penalties(anonymization: Anonymization) -> list[int]:
    """Per-tuple discernibility penalty, in row order (lower is better)."""
    total = len(anonymization)
    sizes = anonymization.equivalence_classes.sizes()
    suppressed = anonymization.suppressed
    return [
        total if row_index in suppressed else sizes[row_index]
        for row_index in range(total)
    ]


def discernibility(anonymization: Anonymization) -> int:
    """The scalar DM cost (sum of per-tuple penalties)."""
    return sum(tuple_penalties(anonymization))
