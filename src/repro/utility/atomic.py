"""The sanctioned atomic-write helper for every durable artifact.

A durable write that matters (cache entries, manifests, releases,
hierarchy specs, traces, certificates) must never be observable half
written: a reader that races the writer — or a process killed mid-write —
must see either the complete old bytes or the complete new bytes.  The
one portable way to get that on POSIX is to write a temporary file *in
the destination's directory* and ``os.replace`` it over the target:
``os.replace`` is atomic only within one filesystem, so a tmp file in
``/tmp`` would silently degrade to a copy on machines where the target
lives on another mount.

Lint Layer 5 enforces this discipline: rule REP302 flags any bare
write-mode ``open`` outside this module, and REP303 flags hand-rolled
temp files that are not created next to their target.  Everything in the
repo that persists state goes through :func:`atomic_writer` (or the
string/bytes conveniences built on it) so the discipline lives in exactly
one place.

Temp names start with a dot (``.{name}.*.tmp``) so directory scanners —
the cache's ``*/*.pkl`` glob, the ART010 store checker — never see them.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import IO, Any, Iterator


@contextlib.contextmanager
def atomic_writer(
    path: str | Path,
    mode: str = "w",
    *,
    encoding: str | None = None,
    newline: str | None = None,
    fsync: bool = False,
) -> Iterator[IO[Any]]:
    """Yield a write handle whose contents replace ``path`` atomically.

    The handle writes a ``tempfile.mkstemp`` file created in ``path``'s
    own directory (created if missing); on normal exit the handle is
    closed — after ``os.fsync`` when ``fsync=True`` — and ``os.replace``d
    over ``path``, on any exception it is closed and unlinked so no
    partial file survives.  ``mode`` must be a write mode (``"w"``,
    ``"wb"``, ``"x"``...); ``encoding``/``newline`` are forwarded for
    text modes exactly as :func:`open` would take them.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_writer needs a write mode, got {mode!r}")
    open_mode = mode.replace("x", "w")
    open_kwargs: dict[str, Any] = {}
    if "b" not in mode:
        open_kwargs["encoding"] = encoding
        open_kwargs["newline"] = newline
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, open_mode, **open_kwargs) as handle:
            yield handle
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    encoding: str | None = "utf-8",
    newline: str | None = None,
    fsync: bool = False,
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    with atomic_writer(
        path, "w", encoding=encoding, newline=newline, fsync=fsync
    ) as handle:
        handle.write(text)
    return Path(path)


def atomic_write_bytes(
    path: str | Path, data: bytes, *, fsync: bool = False
) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    with atomic_writer(path, "wb", fsync=fsync) as handle:
        handle.write(data)
    return Path(path)
