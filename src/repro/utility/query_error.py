"""Aggregate query error — workload-based utility.

LeFevre et al. motivate multidimensional recoding by the accuracy of COUNT
queries with multi-attribute predicates against the released table.  This
module evaluates exactly that: range/point predicates are answered against
the release under the *uniformity assumption* (a generalized cell
contributes the fraction of its region intersecting the predicate), and the
relative error against the true answer on the original data is the utility
measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..anonymize.engine import Anonymization
from ..datasets.dataset import Dataset
from ..hierarchy.base import SUPPRESSED, Hierarchy, Interval
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.masking import MaskingHierarchy
from ..hierarchy.numeric import IntervalHierarchy, Span


class QueryError(ValueError):
    """Raised for malformed queries."""


@dataclass(frozen=True)
class RangePredicate:
    """``attribute BETWEEN low AND high`` (inclusive) on a numeric QI."""

    attribute: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise QueryError(f"empty range [{self.low}, {self.high}]")


@dataclass(frozen=True)
class ValuePredicate:
    """``attribute = value`` on a categorical QI (raw leaf value)."""

    attribute: str
    value: Any


Predicate = RangePredicate | ValuePredicate


def true_count(dataset: Dataset, predicates: Sequence[Predicate]) -> int:
    """Exact COUNT(*) of the conjunctive predicate on the original data."""
    count = 0
    positions = {p.attribute: dataset.schema.index_of(p.attribute) for p in predicates}
    for row in dataset:
        if all(_raw_satisfies(row[positions[p.attribute]], p) for p in predicates):
            count += 1
    return count


def _raw_satisfies(value: Any, predicate: Predicate) -> bool:
    if isinstance(predicate, RangePredicate):
        return (
            isinstance(value, (int, float))
            and predicate.low <= value <= predicate.high
        )
    return value == predicate.value


def _cell_overlap(
    cell: Any, predicate: Predicate, hierarchy: Hierarchy | None
) -> float:
    """Expected fraction of a released cell's mass satisfying the
    predicate, under uniformity."""
    if isinstance(predicate, RangePredicate):
        if isinstance(cell, (int, float)):
            return 1.0 if predicate.low <= cell <= predicate.high else 0.0
        if isinstance(cell, Interval):
            low, high = cell.low, cell.high
        elif isinstance(cell, Span):
            low, high = cell.low, cell.high
            if cell.width == 0:
                return 1.0 if predicate.low <= low <= predicate.high else 0.0
        elif cell == SUPPRESSED and isinstance(hierarchy, IntervalHierarchy):
            low, high = hierarchy.bounds
        else:
            return 0.0
        width = high - low
        if width <= 0:
            return 0.0
        overlap = min(high, predicate.high) - max(low, predicate.low)
        return max(0.0, overlap) / width

    # Categorical point predicate.
    if cell == predicate.value:
        return 1.0
    if isinstance(cell, frozenset):
        return (1.0 / len(cell)) if predicate.value in cell else 0.0
    if isinstance(hierarchy, TaxonomyHierarchy):
        if cell == SUPPRESSED:
            return 1.0 / hierarchy.domain_size
        generalizations = hierarchy.generalizations(predicate.value)
        if cell in generalizations:
            covered = sum(
                1
                for leaf in hierarchy.leaves
                if cell in hierarchy.generalizations(leaf)
            )
            return 1.0 / covered if covered else 0.0
        return 0.0
    if isinstance(hierarchy, MaskingHierarchy) and isinstance(cell, str):
        if "*" in cell and hierarchy.domain is not None:
            prefix = cell.rstrip("*")
            candidates = [v for v in hierarchy.domain if v.startswith(prefix)]
            if predicate.value in candidates and candidates:
                return 1.0 / len(candidates)
        return 0.0
    return 0.0


def estimated_count(
    anonymization: Anonymization,
    predicates: Sequence[Predicate],
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> float:
    """Expected COUNT(*) answered on the release under uniformity."""
    if not predicates:
        raise QueryError("query needs at least one predicate")
    schema = anonymization.original.schema
    lookup = hierarchies or {}
    positions = {p.attribute: schema.index_of(p.attribute) for p in predicates}
    total = 0.0
    for row in anonymization.released:
        mass = 1.0
        for predicate in predicates:
            mass *= _cell_overlap(
                row[positions[predicate.attribute]],
                predicate,
                lookup.get(predicate.attribute),
            )
            if mass == 0.0:
                break
        total += mass
    return total


def relative_query_error(
    anonymization: Anonymization,
    predicates: Sequence[Predicate],
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> float:
    """|estimated - true| / max(true, 1)."""
    truth = true_count(anonymization.original, predicates)
    estimate = estimated_count(anonymization, predicates, hierarchies)
    return abs(estimate - truth) / max(truth, 1)


def random_range_workload(
    dataset: Dataset,
    attribute: str,
    queries: int = 50,
    selectivity: float = 0.2,
    seed: int = 0,
) -> list[RangePredicate]:
    """A seeded workload of range predicates on one numeric attribute."""
    if not 0.0 < selectivity <= 1.0:
        raise QueryError(f"selectivity must be in (0,1], got {selectivity}")
    values = [v for v in dataset.column(attribute) if isinstance(v, (int, float))]
    if not values:
        raise QueryError(f"attribute {attribute!r} has no numeric values")
    low, high = min(values), max(values)
    width = (high - low) * selectivity
    rng = random.Random(seed)
    workload = []
    for _ in range(queries):
        start = rng.uniform(low, max(low, high - width))
        workload.append(RangePredicate(attribute, start, start + width))
    return workload


def mean_workload_error(
    anonymization: Anonymization,
    workload: Sequence[Sequence[Predicate] | Predicate],
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> float:
    """Mean relative error over a workload of (conjunctive) queries."""
    if not workload:
        raise QueryError("workload must be non-empty")
    errors = []
    for query in workload:
        predicates = [query] if isinstance(
            query, (RangePredicate, ValuePredicate)
        ) else list(query)
        errors.append(
            relative_query_error(anonymization, predicates, hierarchies)
        )
    return sum(errors) / len(errors)
