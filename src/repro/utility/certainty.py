"""Normalized / Global Certainty Penalty (Xu et al., KDD 2006).

NCP charges each generalized cell the fraction of its attribute domain it
spans — numerically identical in spirit to LM but defined on the released
cells of *any* recoding (full-domain or local), which made it the utility
metric of choice for local-recoding work.  GCP is the normalized sum over
the whole table.  Both reduce to per-tuple penalties, so they slot straight
into the property-vector framework.
"""

from __future__ import annotations

from typing import Mapping

from ..anonymize.engine import Anonymization
from ..core.vector import PropertyVector
from ..hierarchy.base import Hierarchy
from .loss_metric import cell_losses


def tuple_certainty_penalties(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> list[float]:
    """Per-tuple NCP: mean per-attribute domain fraction in [0, 1]."""
    per_cell = cell_losses(anonymization, hierarchies)
    qi_count = len(anonymization.original.schema.quasi_identifier_names)
    if not qi_count:
        return [0.0] * len(anonymization)
    return [sum(row.values()) / qi_count for row in per_cell]


def ncp_vector(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> PropertyVector:
    """Per-tuple NCP as a property vector (lower is better)."""
    return PropertyVector(
        tuple_certainty_penalties(anonymization, hierarchies),
        name="ncp",
        higher_is_better=False,
    )


def global_certainty_penalty(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> float:
    """GCP in [0, 1]: mean per-tuple NCP over the table."""
    penalties = tuple_certainty_penalties(anonymization, hierarchies)
    return sum(penalties) / len(penalties) if penalties else 0.0
