"""Iyengar's general loss metric (LM), per tuple and aggregated.

The general loss metric charges each generalized cell a normalized loss in
``[0, 1]``: 0 for a raw value, 1 for full suppression, and in between the
fraction of the attribute domain the generalized value covers (categorical:
``(m-1)/(M-1)`` for a token covering m of M leaves; numeric: interval width
over domain width).  A tuple's loss is the sum of its quasi-identifier cell
losses.

The paper uses LM twice: as the "general loss metric [7]" example of a
per-tuple utility property (Section 3) and for the utility property vectors
of the weighted-comparator example (Section 5.5), where per-tuple *utility*
is on a higher-is-better scale — reproduced here by
:func:`tuple_utilities` = (number of QI attributes) − (tuple loss).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..anonymize.engine import Anonymization, AnonymizationError
from ..hierarchy.base import Hierarchy


def _check_hierarchies(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> tuple[str, ...]:
    qi_names = anonymization.original.schema.quasi_identifier_names
    missing = set(qi_names) - set(hierarchies)
    if missing:
        raise AnonymizationError(f"missing hierarchies for {sorted(missing)}")
    return qi_names


def cell_losses(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> list[dict[str, float]]:
    """Per-row maps of QI attribute name to normalized cell loss.

    Runs on the columnar plane: each released QI column is interned once
    (:meth:`~repro.datasets.dataset.Dataset.columns`), ``released_loss`` is
    scored once per *distinct* released cell, and the per-row maps gather
    through the codes — same floats as scoring every row directly.
    """
    qi_names = _check_hierarchies(anonymization, hierarchies)
    view = anonymization.released.columns()
    scored: list[tuple[str, bytes | Sequence[int], list[float]]] = []
    for name in qi_names:
        column = view.column(name)
        released_loss = hierarchies[name].released_loss
        scored.append(
            (name, column.codes, [released_loss(value) for value in column.decode])
        )
    return [
        {name: per_cell[codes[row_index]] for name, codes, per_cell in scored}
        for row_index in range(len(anonymization))
    ]


def tuple_losses(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> list[float]:
    """Per-tuple LM loss (sum of QI cell losses), in row order.

    Suppressed tuples naturally score the maximum (one per QI attribute)
    because their released cells are the suppression token.
    """
    return [sum(row.values()) for row in cell_losses(anonymization, hierarchies)]


def tuple_utilities(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> list[float]:
    """Per-tuple utility on the paper's higher-is-better scale.

    A tuple with no generalization scores ``len(QI)``; a fully suppressed
    tuple scores 0.
    """
    qi_count = len(anonymization.original.schema.quasi_identifier_names)
    return [qi_count - loss for loss in tuple_losses(anonymization, hierarchies)]


def general_loss(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> float:
    """Aggregate LM: mean per-tuple loss normalized by QI count (in [0,1])."""
    losses = tuple_losses(anonymization, hierarchies)
    qi_count = len(anonymization.original.schema.quasi_identifier_names)
    if not losses or not qi_count:
        return 0.0
    return sum(losses) / (len(losses) * qi_count)
