"""Utility (information loss) metrics over anonymizations.

Also home to :mod:`repro.utility.atomic`, the sanctioned atomic-write
helper every durable artifact writer uses (imported first so it is
resolvable even while this package's metric imports are mid-cycle).
"""

from .atomic import atomic_write_bytes, atomic_write_text, atomic_writer
from .certainty import (
    global_certainty_penalty,
    ncp_vector,
    tuple_certainty_penalties,
)
from .classification import (
    classification_metric,
    cm_vector,
    tuple_classification_penalties,
)
from .class_size import average_tuple_class_size, normalized_average_class_size
from .divergence import (
    marginal_divergence,
    reconstructed_marginal,
    total_marginal_divergence,
)
from .discernibility import discernibility, tuple_penalties
from .loss_metric import (
    cell_losses,
    general_loss,
    tuple_losses,
    tuple_utilities,
)
from .precision import precision, tuple_precisions
from .query_error import (
    Predicate,
    QueryError,
    RangePredicate,
    ValuePredicate,
    estimated_count,
    mean_workload_error,
    random_range_workload,
    relative_query_error,
    true_count,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "marginal_divergence",
    "reconstructed_marginal",
    "total_marginal_divergence",
    "classification_metric",
    "cm_vector",
    "tuple_classification_penalties",
    "global_certainty_penalty",
    "ncp_vector",
    "tuple_certainty_penalties",
    "Predicate",
    "QueryError",
    "RangePredicate",
    "ValuePredicate",
    "estimated_count",
    "mean_workload_error",
    "random_range_workload",
    "relative_query_error",
    "true_count",
    "average_tuple_class_size",
    "normalized_average_class_size",
    "discernibility",
    "tuple_penalties",
    "cell_losses",
    "general_loss",
    "tuple_losses",
    "tuple_utilities",
    "precision",
    "tuple_precisions",
]
