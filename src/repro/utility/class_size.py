"""Equivalence-class-size utility summaries.

Two standard aggregates over the class structure:

* the paper's ``P_s-avg`` (Section 3): mean of the *per-tuple* class size
  vector — equals 3.4 for the running example's T3a;
* LeFevre's normalized average class size ``C_avg = N / (|classes| · k)``.
"""

from __future__ import annotations

from ..anonymize.engine import Anonymization


def average_tuple_class_size(anonymization: Anonymization) -> float:
    """Mean per-tuple equivalence class size (the paper's ``P_s-avg``)."""
    sizes = anonymization.equivalence_classes.sizes()
    return sum(sizes) / len(sizes) if sizes else 0.0


def normalized_average_class_size(anonymization: Anonymization, k: int) -> float:
    """LeFevre's ``C_avg`` for a target ``k`` (1.0 is ideal)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    class_count = len(anonymization.equivalence_classes)
    if not class_count:
        return 0.0
    return len(anonymization) / (class_count * k)
