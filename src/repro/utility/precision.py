"""Sweeney's precision metric (Prec) for full-domain recodings.

``Prec = 1 - (Σ_cells level/height) / (N · |QI|)``: each generalized cell is
charged the fraction of its hierarchy it climbed.  Defined for full-domain
recodings (the level vector is part of the anonymization); for local
recodings the per-cell hierarchy fraction is approximated by the cell's
normalized loss, which coincides with level/height for uniform hierarchies.
"""

from __future__ import annotations

from typing import Mapping

from ..anonymize.engine import Anonymization, AnonymizationError
from ..hierarchy.base import Hierarchy


def tuple_precisions(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> list[float]:
    """Per-tuple precision in [0, 1] (higher is better), in row order."""
    schema = anonymization.original.schema
    qi_names = schema.quasi_identifier_names
    missing = set(qi_names) - set(hierarchies)
    if missing:
        raise AnonymizationError(f"missing hierarchies for {sorted(missing)}")
    if not qi_names:
        return [1.0] * len(anonymization)

    if anonymization.levels is not None:
        fractions = {
            name: anonymization.levels[name] / hierarchies[name].height
            for name in qi_names
        }
        row_fraction = sum(fractions.values()) / len(qi_names)
        full = 1.0  # suppressed rows sit at the hierarchy top in every QI
        return [
            1.0 - (full if row_index in anonymization.suppressed else row_fraction)
            for row_index in range(len(anonymization))
        ]

    # Local recoding: score each distinct released cell once through the
    # interned columns, then gather per row (same floats as direct scoring).
    view = anonymization.released.columns()
    scored = []
    for name in qi_names:
        column = view.column(name)
        released_loss = hierarchies[name].released_loss
        scored.append(
            (column.codes, [released_loss(value) for value in column.decode])
        )
    precisions = []
    for row_index in range(len(anonymization)):
        if row_index in anonymization.suppressed:
            precisions.append(0.0)
            continue
        climbed = sum(per_cell[codes[row_index]] for codes, per_cell in scored)
        precisions.append(1.0 - climbed / len(qi_names))
    return precisions


def precision(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> float:
    """The scalar Prec value (mean per-tuple precision)."""
    values = tuple_precisions(anonymization, hierarchies)
    return sum(values) / len(values) if values else 1.0
