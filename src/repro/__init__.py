"""repro — vector-based comparison of microdata disclosure control algorithms.

A full reproduction of Dewri, Ray, Ray and Whitley, *On the Comparison of
Microdata Disclosure Control Algorithms* (EDBT 2009): property vectors,
quality index functions and ▶-better comparators for anonymization
comparison, together with the substrate the paper presupposes —
generalization hierarchies, the full-domain lattice, classical disclosure
control algorithms (Datafly, Samarati, Incognito, Mondrian, optimal lattice
search, Iyengar-style GA, μ-Argus), privacy models (k-anonymity,
l-diversity, t-closeness, p-sensitive k-anonymity, personalized privacy)
and utility metrics (LM, DM, precision).

Quick start::

    from repro import adult_dataset, adult_hierarchies
    from repro import Datafly, Mondrian
    from repro.core.properties import equivalence_class_size
    from repro.core.indices import coverage

    data = adult_dataset(1000, seed=7)
    hierarchies = adult_hierarchies()
    a = Datafly(k=5).anonymize(data, hierarchies)
    b = Mondrian(k=5).anonymize(data, hierarchies)
    s, t = equivalence_class_size(a), equivalence_class_size(b)
    print(coverage(t, s), coverage(s, t))   # who protects more individuals?
"""

from .analysis import (
    BiasSummary,
    benefit_counts,
    bias_summary,
    comparison_report,
    copeland_ranking,
    hypervolume_ranking,
    property_report,
)
from .anonymize import (
    Anonymization,
    AnonymizationError,
    EquivalenceClasses,
    recode,
    recode_node,
)
from .anonymize.algorithms import (
    Anonymizer,
    BottomUpGeneralization,
    ConstrainedLattice,
    Datafly,
    GeneticAnonymizer,
    Incognito,
    Mondrian,
    MuArgus,
    OptimalLattice,
    Samarati,
    TopDownSpecialization,
)
from .core import (
    CoverageBetter,
    LeastBiasedBetter,
    HypervolumeBetter,
    MinBetter,
    PropertyProfile,
    PropertyVector,
    RankBetter,
    Relation,
    SpreadBetter,
    default_comparators,
    privacy_profile,
    privacy_utility_profile,
)
from .datasets import (
    Attribute,
    skewed_dataset,
    synthetic_hierarchies,
    AttributeKind,
    AttributeRole,
    Dataset,
    Schema,
    adult_dataset,
    adult_hierarchies,
    adult_schema,
)
from .hierarchy import (
    SUPPRESSED,
    Banding,
    Hierarchy,
    Interval,
    IntervalHierarchy,
    Lattice,
    MaskingHierarchy,
    Span,
    TaxonomyHierarchy,
)
from .attack import (
    linkage_report,
    prosecutor_risks,
    simulate_linkage,
)
from .hierarchy import infer_hierarchies, load_hierarchies, save_hierarchies
from .privacy import (
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    PersonalizedPrivacy,
    PSensitiveKAnonymity,
    RecursiveCLDiversity,
    TCloseness,
)

__version__ = "1.0.0"

__all__ = [
    "BiasSummary",
    "benefit_counts",
    "bias_summary",
    "comparison_report",
    "copeland_ranking",
    "hypervolume_ranking",
    "property_report",
    "Anonymization",
    "AnonymizationError",
    "EquivalenceClasses",
    "recode",
    "recode_node",
    "Anonymizer",
    "BottomUpGeneralization",
    "ConstrainedLattice",
    "Datafly",
    "GeneticAnonymizer",
    "Incognito",
    "Mondrian",
    "MuArgus",
    "OptimalLattice",
    "Samarati",
    "TopDownSpecialization",
    "CoverageBetter",
    "LeastBiasedBetter",
    "HypervolumeBetter",
    "MinBetter",
    "PropertyProfile",
    "PropertyVector",
    "RankBetter",
    "Relation",
    "SpreadBetter",
    "default_comparators",
    "privacy_profile",
    "privacy_utility_profile",
    "Attribute",
    "AttributeKind",
    "AttributeRole",
    "Dataset",
    "Schema",
    "adult_dataset",
    "adult_hierarchies",
    "adult_schema",
    "skewed_dataset",
    "synthetic_hierarchies",
    "linkage_report",
    "prosecutor_risks",
    "simulate_linkage",
    "infer_hierarchies",
    "load_hierarchies",
    "save_hierarchies",
    "SUPPRESSED",
    "Banding",
    "Hierarchy",
    "Interval",
    "IntervalHierarchy",
    "Lattice",
    "MaskingHierarchy",
    "Span",
    "TaxonomyHierarchy",
    "DistinctLDiversity",
    "EntropyLDiversity",
    "KAnonymity",
    "PersonalizedPrivacy",
    "PSensitiveKAnonymity",
    "RecursiveCLDiversity",
    "TCloseness",
    "__version__",
]
