"""Executable companions to the paper's impossibility results.

Theorem 1: for property vectors on a data set of size N, no family of fewer
than N unary quality indices can satisfy

    ∀i  P_i(D1) ≥ P_i(D2)  ⟺  D1 ⪰ D2.

Corollary 2 lifts the bound to rN indices for r-property comparisons.  The
theorem is about *all* families, so it cannot be checked exhaustively — but
it has two executable faces, both provided here:

* :func:`projection_indices` constructs the family of exactly N coordinate
  projections, which *does* characterize dominance — the bound is tight;
* :func:`find_dominance_counterexample` searches for a witness pair that
  breaks the equivalence for any concrete candidate family with n < N
  (Theorem 1 guarantees one exists; the search is deterministic given a
  seed and in practice finds one quickly for the aggregate families —
  min/mean/max/quantiles — used in existing comparative studies).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from .comparators import weakly_dominates
from .vector import PropertyVector

UnaryIndexFn = Callable[[PropertyVector], float]


def projection_indices(size: int) -> list[UnaryIndexFn]:
    """The N coordinate projections ``P_i(D) = d_i``.

    With exactly ``size`` indices the equivalence of Theorem 1 holds
    trivially, demonstrating the lower bound is attained.
    """
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")

    def make(position: int) -> UnaryIndexFn:
        def project(vector: PropertyVector) -> float:
            return float(vector.oriented[position])

        project.__name__ = f"projection_{position}"
        return project

    return [make(i) for i in range(size)]


def indices_claim_dominance(
    indices: Sequence[UnaryIndexFn],
    first: PropertyVector,
    second: PropertyVector,
) -> bool:
    """Whether the family's left-hand side holds: ∀i P_i(D1) ≥ P_i(D2)."""
    return all(p(first) >= p(second) for p in indices)


def equivalence_holds(
    indices: Sequence[UnaryIndexFn],
    first: PropertyVector,
    second: PropertyVector,
) -> bool:
    """Whether the Theorem 1 equivalence holds for this specific pair, in
    both directions of the pair ordering."""
    for a, b in ((first, second), (second, first)):
        if indices_claim_dominance(indices, a, b) != weakly_dominates(a, b):
            return False
    return True


def find_dominance_counterexample(
    indices: Sequence[UnaryIndexFn],
    size: int,
    trials: int = 2000,
    seed: int = 0,
    low: float = 0.0,
    high: float = 10.0,
) -> tuple[PropertyVector, PropertyVector] | None:
    """Search for a pair of vectors violating the Theorem 1 equivalence.

    Draws ``trials`` random pairs in ``[low, high]^size`` (plus a battery of
    structured antisymmetric pairs like the theorem's ``(a,..,a,c)`` /
    ``(b,..,b,c)`` constructions) and returns the first witness pair, or
    ``None`` if the family survived — which Theorem 1 says cannot happen
    for ``len(indices) < size`` unless the search is unlucky; raise
    ``trials`` in that case.
    """
    if size < 2:
        raise ValueError("counterexamples require vectors of size >= 2")
    rng = random.Random(seed)

    def candidate_pairs():
        # Structured pairs first: swapped coordinates are mutually
        # non-dominated, the shape used in the theorem's base case.
        step = (high - (low + 1)) / (size - 1)
        base = [(low + 1) + position * step for position in range(size)]
        base[-1] = float(high)
        swapped = list(base)
        swapped[0], swapped[-1] = swapped[-1], swapped[0]
        yield base, swapped
        for _ in range(trials):
            a = [rng.uniform(low, high) for _ in range(size)]
            b = [rng.uniform(low, high) for _ in range(size)]
            yield a, b
            # Mixed pair: agree on a random prefix, disagree after — probes
            # ties, which aggregate indices are particularly blind to.
            cut = rng.randrange(1, size)
            mixed = a[:cut] + b[cut:]
            yield a, mixed

    for left, right in candidate_pairs():
        first = PropertyVector(left, "candidate-1")
        second = PropertyVector(right, "candidate-2")
        if not equivalence_holds(indices, first, second):
            return first, second
    return None


def minimum_indices_required(r: int, size: int) -> int:
    """The paper's lower bound: N for one property (Theorem 1), rN for
    r-property comparisons (Corollary 2)."""
    if r < 1 or size < 1:
        raise ValueError("r and size must be positive")
    return r * size
