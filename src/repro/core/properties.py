"""Property extractors: from anonymizations to property vectors.

Each function measures one per-tuple property of an anonymized release and
returns it as a :class:`~repro.core.vector.PropertyVector`.  These are the
concrete properties the paper works with:

* equivalence class size — the k-anonymity privacy property (Section 3);
* breach probability — its reciprocal, the "probability of privacy breach"
  of Section 1 (lower is better);
* sensitive value count — the l-diversity property ("number of times the
  sensitive attribute value of a tuple appears in its equivalence class");
* distinct sensitive values — per-tuple diversity of the tuple's class;
* tuple loss / utility — Iyengar's general loss metric per tuple;
* discernibility penalty — per-tuple DM charge.
"""

from __future__ import annotations

from typing import Mapping

from ..anonymize.engine import Anonymization, resolve_sensitive_column
from ..hierarchy.base import Hierarchy
from ..utility.discernibility import tuple_penalties
from ..utility.loss_metric import tuple_losses, tuple_utilities
from .vector import PropertyVector


#: Shared resolver (see engine.resolve_sensitive_column); kept under its
#: historical private name for the sibling modules that import it here.
_sensitive_column = resolve_sensitive_column


def equivalence_class_size(anonymization: Anonymization) -> PropertyVector:
    """Per-tuple equivalence class size (higher is better).

    This is the property vector behind k-anonymity: ``min`` of it is the k
    actually achieved.  For T3a of the paper this is
    ``(3,3,3,3,4,4,4,3,3,4)``.
    """
    return PropertyVector(
        anonymization.equivalence_classes.sizes(),
        name="equivalence-class-size",
        higher_is_better=True,
    )


def breach_probability(anonymization: Anonymization) -> PropertyVector:
    """Per-tuple re-identification probability ``1/|class|`` (lower is
    better) — the "probability of privacy breach" of Section 1."""
    sizes = anonymization.equivalence_classes.sizes()
    return PropertyVector(
        [1.0 / size for size in sizes],
        name="breach-probability",
        higher_is_better=False,
    )


def sensitive_value_count(
    anonymization: Anonymization, attribute: str | None = None
) -> PropertyVector:
    """Count of the tuple's own sensitive value within its class.

    The paper's l-diversity property (Section 3): for T3a with Marital
    Status sensitive this is ``(2,2,1,2,2,1,2,1,2,1)``.  A *lower* count
    means the tuple's sensitive value is rarer in its class; the paper
    nevertheless treats property vectors on a higher-is-better scale by
    convention, so callers comparing on attribute-disclosure risk should use
    :func:`sensitive_value_fraction` (oriented lower-is-better) instead.
    """
    attribute, column = _sensitive_column(anonymization, attribute)
    counts = anonymization.equivalence_classes.sensitive_value_counts(column)
    return PropertyVector(
        counts, name=f"sensitive-value-count[{attribute}]", higher_is_better=True
    )


def sensitive_value_fraction(
    anonymization: Anonymization, attribute: str | None = None
) -> PropertyVector:
    """Fraction of the tuple's class sharing its sensitive value — the
    attribute-disclosure probability (lower is better)."""
    attribute, column = _sensitive_column(anonymization, attribute)
    classes = anonymization.equivalence_classes
    counts = classes.sensitive_value_counts(column)
    sizes = classes.sizes()
    return PropertyVector(
        [count / size for count, size in zip(counts, sizes)],
        name=f"sensitive-value-fraction[{attribute}]",
        higher_is_better=False,
    )


def distinct_sensitive_values(
    anonymization: Anonymization, attribute: str | None = None
) -> PropertyVector:
    """Number of distinct sensitive values in the tuple's class (higher is
    better) — the per-tuple view of distinct l-diversity."""
    attribute, column = _sensitive_column(anonymization, attribute)
    classes = anonymization.equivalence_classes
    histograms = classes.value_counts(column)
    return PropertyVector(
        [len(histograms[classes.class_of(i)]) for i in range(len(anonymization))],
        name=f"distinct-sensitive-values[{attribute}]",
        higher_is_better=True,
    )


def tuple_loss(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> PropertyVector:
    """Per-tuple general loss metric (lower is better)."""
    return PropertyVector(
        tuple_losses(anonymization, hierarchies),
        name="tuple-loss",
        higher_is_better=False,
    )


def tuple_utility(
    anonymization: Anonymization, hierarchies: Mapping[str, Hierarchy]
) -> PropertyVector:
    """Per-tuple utility ``|QI| - loss`` (higher is better) — the scale of
    the paper's Section 5.5 utility vectors."""
    return PropertyVector(
        tuple_utilities(anonymization, hierarchies),
        name="tuple-utility",
        higher_is_better=True,
    )


def discernibility_penalty(anonymization: Anonymization) -> PropertyVector:
    """Per-tuple discernibility charge (lower is better)."""
    return PropertyVector(
        tuple_penalties(anonymization),
        name="discernibility-penalty",
        higher_is_better=False,
    )
