"""Property vectors (Definition 1 of the paper).

A property vector for a data set of size N is an N-dimensional real vector
whose i-th element measures some property (privacy, utility, ...) of the i-th
tuple of an anonymized data set.  Property vectors are the paper's antidote to
*anonymization bias*: unlike a scalar summary (the k of k-anonymity), they
retain the per-tuple distribution of the property.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..kernels.array import xp as np


class PropertyVectorError(ValueError):
    """Raised for invalid property vector constructions or combinations."""


class PropertyVector:
    """An N-dimensional vector of per-tuple property measurements.

    Parameters
    ----------
    values:
        One real measurement per tuple, in tuple (row) order.
    name:
        Name of the measured property (e.g. ``"equivalence-class-size"``).
    higher_is_better:
        Orientation of the measure.  The paper assumes "a higher value of a
        property measurement for a tuple is better" without loss of
        generality; quality indices consult this flag and work on the
        *oriented* values so that loss-like measures (lower is better) can be
        compared with the same machinery.
    """

    __slots__ = ("_values", "name", "higher_is_better")

    def __init__(
        self,
        values: Iterable[float],
        name: str = "property",
        higher_is_better: bool = True,
    ):
        source = values if isinstance(values, np.ndarray) else list(values)
        # Always copy: the vector must not alias (or freeze) caller arrays.
        array = np.array(source, dtype=float, copy=True)
        if array.ndim != 1:
            raise PropertyVectorError(f"property vector must be 1-D, got shape {array.shape}")
        if array.size == 0:
            raise PropertyVectorError("property vector must be non-empty")
        if not np.all(np.isfinite(array)):
            raise PropertyVectorError("property vector values must be finite")
        array.setflags(write=False)
        self._values = array
        self.name = name
        self.higher_is_better = higher_is_better

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return self._values.size

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, index: int) -> float:
        return float(self._values[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyVector):
            return NotImplemented
        return (
            self.higher_is_better == other.higher_is_better
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.higher_is_better, self._values.tobytes()))

    def __repr__(self) -> str:
        preview = np.array2string(self._values, threshold=8, precision=4)
        direction = "↑" if self.higher_is_better else "↓"
        return f"PropertyVector({self.name!r}{direction}, {preview})"

    # -- value access ----------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The raw measurements (read-only array)."""
        return self._values

    @property
    def oriented(self) -> np.ndarray:
        """Values transformed so that higher is always better.

        Lower-is-better vectors are negated; this is the canonical form all
        comparators and quality indices operate on.
        """
        return self._values if self.higher_is_better else -self._values

    def as_tuple(self) -> tuple[float, ...]:
        """The raw measurements as a plain tuple of floats."""
        return tuple(float(v) for v in self._values)

    # -- derivation -------------------------------------------------------------

    def renamed(self, name: str) -> "PropertyVector":
        """A copy carrying a different property name."""
        return PropertyVector(self._values, name, self.higher_is_better)

    def negated(self) -> "PropertyVector":
        """The same measurements with flipped orientation flag and sign,
        preserving comparison semantics."""
        return PropertyVector(-self._values, self.name, not self.higher_is_better)

    def normalized(self) -> "PropertyVector":
        """Min-max normalization of the *oriented* values to [0, 1].

        Section 5.5 advises normalizing index inputs before weighting;
        this provides the standard per-vector normalization (constant
        vectors map to all-zeros).  The result is higher-is-better.
        """
        oriented = self.oriented
        low = oriented.min()
        span = oriented.max() - low
        if span == 0:
            scaled = np.zeros_like(oriented)
        else:
            scaled = (oriented - low) / span
        return PropertyVector(scaled, f"{self.name}[normalized]", True)

    # -- summary statistics (aggregate views the paper warns about) --------------

    def min(self) -> float:
        """Smallest raw measurement."""
        return float(self._values.min())

    def max(self) -> float:
        """Largest raw measurement."""
        return float(self._values.max())

    def mean(self) -> float:
        """Mean raw measurement."""
        return float(self._values.mean())

    def quantile(self, q: float) -> float:
        """The q-quantile of the raw measurements."""
        return float(np.quantile(self._values, q))


def check_comparable(first: PropertyVector, second: PropertyVector) -> None:
    """Validate that two vectors can participate in one comparison.

    They must have equal length (comparisons apply anonymizations to the same
    data set — Section 3) and the same orientation.
    """
    if len(first) != len(second):
        raise PropertyVectorError(
            f"property vectors have different sizes ({len(first)} vs {len(second)})"
        )
    if first.higher_is_better != second.higher_is_better:
        raise PropertyVectorError(
            "property vectors have opposite orientations; negate one first"
        )


def check_all_comparable(vectors: Sequence[PropertyVector]) -> None:
    """Validate pairwise comparability of a family of vectors."""
    for vector in vectors[1:]:
        check_comparable(vectors[0], vector)
