"""r-property anonymizations (Definition 2).

An r-property anonymization projects an anonymized data set onto a chosen
set of r property vectors — the Υ sets on which multi-property comparisons
operate.  :class:`PropertyProfile` fixes the property extractors once, so the
same r properties are induced for every anonymization in a comparative study.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..anonymize.engine import Anonymization
from ..hierarchy.base import Hierarchy
from . import properties as props
from .vector import PropertyVector, PropertyVectorError

#: A property extractor: anonymization -> property vector.
PropertyExtractor = Callable[[Anonymization], PropertyVector]


class PropertyProfile:
    """A fixed, ordered set of r properties to induce on anonymizations.

    Parameters
    ----------
    extractors:
        Ordered mapping of property name to extractor function.  Order is
        the preference order for lexicographic comparison.
    """

    def __init__(self, extractors: Mapping[str, PropertyExtractor]):
        if not extractors:
            raise PropertyVectorError("profile requires at least one property")
        self._extractors = dict(extractors)

    @property
    def r(self) -> int:
        """Number of properties (the r of "r-property anonymization")."""
        return len(self._extractors)

    @property
    def names(self) -> tuple[str, ...]:
        """Property names, in preference order."""
        return tuple(self._extractors)

    def induce(self, anonymization: Anonymization) -> tuple[PropertyVector, ...]:
        """The Υ set: r property vectors induced on the anonymization."""
        return tuple(
            extractor(anonymization) for extractor in self._extractors.values()
        )

    def induce_all(
        self, anonymizations: Sequence[Anonymization]
    ) -> dict[str, tuple[PropertyVector, ...]]:
        """Υ sets for several anonymizations, keyed by anonymization name."""
        return {a.name: self.induce(a) for a in anonymizations}

    def __repr__(self) -> str:
        return f"PropertyProfile(r={self.r}, names={list(self.names)})"


def privacy_profile(sensitive_attribute: str | None = None) -> PropertyProfile:
    """A 2-property privacy profile: class size + sensitive-value count —
    the paper's k-anonymity / l-diversity pairing (Section 3)."""
    return PropertyProfile(
        {
            "equivalence-class-size": props.equivalence_class_size,
            "sensitive-value-count": lambda a: props.sensitive_value_count(
                a, sensitive_attribute
            ),
        }
    )


def privacy_utility_profile(
    hierarchies: Mapping[str, Hierarchy]
) -> PropertyProfile:
    """The paper's Section 5.5 pairing: class-size privacy + per-tuple
    utility on Iyengar's loss scale."""
    return PropertyProfile(
        {
            "equivalence-class-size": props.equivalence_class_size,
            "tuple-utility": lambda a: props.tuple_utility(a, hierarchies),
        }
    )
