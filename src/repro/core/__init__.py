"""The paper's primary contribution: property vectors, quality indices and
comparators for anonymization comparison."""

from . import properties, theory
from .comparators import (
    CoverageBetter,
    LeastBiasedBetter,
    HypervolumeBetter,
    MetricComparator,
    MinBetter,
    RankBetter,
    Relation,
    SpreadBetter,
    default_comparators,
    dominance_relation,
    non_dominated,
    set_dominance_relation,
    set_non_dominated,
    set_strongly_dominates,
    set_weakly_dominates,
    strongly_dominates,
    weakly_dominates,
)
from .multicomparators import (
    GoalBetter,
    LexicographicBetter,
    SetComparator,
    WeightedBetter,
)
from .rproperty import (
    PropertyExtractor,
    PropertyProfile,
    privacy_profile,
    privacy_utility_profile,
)
from .vector import (
    PropertyVector,
    PropertyVectorError,
    check_all_comparable,
    check_comparable,
)

__all__ = [
    "properties",
    "theory",
    "CoverageBetter",
    "LeastBiasedBetter",
    "HypervolumeBetter",
    "MetricComparator",
    "MinBetter",
    "RankBetter",
    "Relation",
    "SpreadBetter",
    "default_comparators",
    "dominance_relation",
    "non_dominated",
    "set_dominance_relation",
    "set_non_dominated",
    "set_strongly_dominates",
    "set_weakly_dominates",
    "strongly_dominates",
    "weakly_dominates",
    "GoalBetter",
    "LexicographicBetter",
    "SetComparator",
    "WeightedBetter",
    "PropertyExtractor",
    "PropertyProfile",
    "privacy_profile",
    "privacy_utility_profile",
    "PropertyVector",
    "PropertyVectorError",
    "check_all_comparable",
    "check_comparable",
]
