"""Comparators over property vectors.

Implements the strict dominance comparators of Table 4 (weak dominance ⪰,
strong dominance ≻, non-dominance ∥) on single vectors, on sets of property
vectors paired by property, and on anonymizations via induced property sets —
plus the ▶-better ("metric better") comparator family of Section 5:

* ``MinBetter`` — ▶min, the scalar comparison the paper criticizes;
* ``RankBetter`` — ▶rank with an ε-tolerance (Section 5.1);
* ``CoverageBetter`` — ▶cov (Section 5.2);
* ``SpreadBetter`` — ▶spr (Section 5.3);
* ``HypervolumeBetter`` — ▶hv (Section 5.4).

Every comparator returns a :class:`Relation`; the strict comparators can
additionally return ``INCOMPARABLE``, which is exactly the outcome whose
prevalence motivates the ▶-better family.
"""

from __future__ import annotations

import abc
import enum
import math
from typing import Sequence

from ..kernels.array import xp as np

from .indices.binary import compare_hypervolume, coverage, spread
from .indices.unary import GiniIndex, RankIndex
from .vector import PropertyVector, PropertyVectorError, check_comparable


class Relation(enum.Enum):
    """Outcome of comparing the first operand against the second."""

    BETTER = "better"
    WORSE = "worse"
    EQUIVALENT = "equivalent"
    INCOMPARABLE = "incomparable"

    def flipped(self) -> "Relation":
        """The relation as seen from the second operand."""
        if self is Relation.BETTER:
            return Relation.WORSE
        if self is Relation.WORSE:
            return Relation.BETTER
        return self


# -- strict (dominance) comparisons: Table 4 ---------------------------------

def weakly_dominates(first: PropertyVector, second: PropertyVector) -> bool:
    """⪰ — ``first`` is *not worse than* ``second`` in every tuple."""
    check_comparable(first, second)
    return bool(np.all(first.oriented >= second.oriented))


def strongly_dominates(first: PropertyVector, second: PropertyVector) -> bool:
    """≻ — weakly dominates and is strictly better for at least one tuple."""
    check_comparable(first, second)
    oriented_first, oriented_second = first.oriented, second.oriented
    return bool(
        np.all(oriented_first >= oriented_second)
        and np.any(oriented_first > oriented_second)
    )


def non_dominated(first: PropertyVector, second: PropertyVector) -> bool:
    """∥ — each vector is strictly better somewhere (incomparable)."""
    check_comparable(first, second)
    return bool(
        np.any(first.oriented < second.oriented)
        and np.any(first.oriented > second.oriented)
    )


def dominance_relation(first: PropertyVector, second: PropertyVector) -> Relation:
    """Classify the dominance relationship of two property vectors."""
    check_comparable(first, second)
    any_better = bool(np.any(first.oriented > second.oriented))
    any_worse = bool(np.any(first.oriented < second.oriented))
    if any_better and any_worse:
        return Relation.INCOMPARABLE
    if any_better:
        return Relation.BETTER
    if any_worse:
        return Relation.WORSE
    return Relation.EQUIVALENT


def _check_paired(
    first: Sequence[PropertyVector], second: Sequence[PropertyVector]
) -> None:
    if len(first) != len(second):
        raise PropertyVectorError(
            f"property sets have different sizes ({len(first)} vs {len(second)})"
        )
    if not first:
        raise PropertyVectorError("property sets must be non-empty")
    for a, b in zip(first, second):
        check_comparable(a, b)


def set_weakly_dominates(
    first: Sequence[PropertyVector], second: Sequence[PropertyVector]
) -> bool:
    """Υ1 ⪰ Υ2 — every paired property vector weakly dominates its partner
    (vectors are paired by property position, Table 4)."""
    _check_paired(first, second)
    return all(weakly_dominates(a, b) for a, b in zip(first, second))


def set_strongly_dominates(
    first: Sequence[PropertyVector], second: Sequence[PropertyVector]
) -> bool:
    """Υ1 ≻ Υ2 — all pairs weakly dominate and at least one strongly does."""
    _check_paired(first, second)
    return set_weakly_dominates(first, second) and any(
        strongly_dominates(a, b) for a, b in zip(first, second)
    )


def set_non_dominated(
    first: Sequence[PropertyVector], second: Sequence[PropertyVector]
) -> bool:
    """Υ1 ∥ Υ2 — some pair favors each side (incomparable sets)."""
    _check_paired(first, second)
    return any(strongly_dominates(a, b) for a, b in zip(first, second)) and any(
        strongly_dominates(b, a) for a, b in zip(first, second)
    )


def set_dominance_relation(
    first: Sequence[PropertyVector], second: Sequence[PropertyVector]
) -> Relation:
    """Classify the dominance relationship of two property-vector sets."""
    if set_strongly_dominates(first, second):
        return Relation.BETTER
    if set_strongly_dominates(second, first):
        return Relation.WORSE
    if set_weakly_dominates(first, second) and set_weakly_dominates(second, first):
        return Relation.EQUIVALENT
    return Relation.INCOMPARABLE


# -- ▶-better comparators (Section 5) ----------------------------------------

class MetricComparator(abc.ABC):
    """A ▶-better comparator: a weaker, total-er notion of superiority that
    pays attention to property values across *all* tuples."""

    name: str = "metric-comparator"

    @abc.abstractmethod
    def relation(self, first: PropertyVector, second: PropertyVector) -> Relation:
        """Compare ``first`` against ``second``."""

    def better(self, first: PropertyVector, second: PropertyVector) -> bool:
        """Whether ``first ▶ second``."""
        return self.relation(first, second) is Relation.BETTER

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MinBetter(MetricComparator):
    """▶min — compares vector minima; the aggregate comparator behind
    statements like "4-anonymity is better than 3-anonymity" that the paper
    rejects as bias-blind.  Included as the baseline."""

    name = "min-better"

    def relation(self, first: PropertyVector, second: PropertyVector) -> Relation:
        check_comparable(first, second)
        a = float(first.oriented.min())
        b = float(second.oriented.min())
        if a > b:
            return Relation.BETTER
        if a < b:
            return Relation.WORSE
        return Relation.EQUIVALENT


class RankBetter(MetricComparator):
    """▶rank — smaller distance to the ideal vector wins; vectors within
    ``epsilon`` of each other's rank are equivalent (Section 5.1)."""

    name = "rank-better"

    def __init__(self, ideal: PropertyVector | float, order: float = 2,
                 epsilon: float = 0.0):
        self.index = RankIndex(ideal, order=order, epsilon=epsilon)

    def relation(self, first: PropertyVector, second: PropertyVector) -> Relation:
        if self.index.equivalent(first, second):
            return Relation.EQUIVALENT
        if self.index.value(first) < self.index.value(second):
            return Relation.BETTER
        return Relation.WORSE


class CoverageBetter(MetricComparator):
    """▶cov — more tuples with at-least-as-good property values win
    (Section 5.2).  ``strict=True`` selects the tie-free ablation."""

    name = "coverage-better"

    def __init__(self, strict: bool = False):
        self.strict = strict

    def relation(self, first: PropertyVector, second: PropertyVector) -> Relation:
        forward = coverage(first, second, strict=self.strict)
        backward = coverage(second, first, strict=self.strict)
        if forward > backward:
            return Relation.BETTER
        if forward < backward:
            return Relation.WORSE
        return Relation.EQUIVALENT


class SpreadBetter(MetricComparator):
    """▶spr — larger total winning margin wins (Section 5.3)."""

    name = "spread-better"

    def relation(self, first: PropertyVector, second: PropertyVector) -> Relation:
        forward = spread(first, second)
        backward = spread(second, first)
        if np.isclose(forward, backward):
            return Relation.EQUIVALENT
        if forward > backward:
            return Relation.BETTER
        return Relation.WORSE


class HypervolumeBetter(MetricComparator):
    """▶hv — larger solely-dominated hypervolume wins (Section 5.4).

    Implemented in log space so it is safe for large data sets.
    """

    name = "hypervolume-better"

    def __init__(self, reference: float = 0.0):
        self.reference = reference

    def relation(self, first: PropertyVector, second: PropertyVector) -> Relation:
        sign = compare_hypervolume(first, second, reference=self.reference)
        if sign > 0:
            return Relation.BETTER
        if sign < 0:
            return Relation.WORSE
        return Relation.EQUIVALENT


class LeastBiasedBetter(MetricComparator):
    """▶bias — prefers the anonymization with the more equal distribution.

    An extension the paper's Section 2 invites ("no attempt is known to
    have been made to measure it"): compare the floor first (nobody should
    pay for equality with less protection than the rival's worst-off
    tuple), then break ties by the smaller Gini coefficient of the
    property's distribution.
    """

    name = "least-biased-better"

    def __init__(self, gini_tolerance: float = 0.0):
        if gini_tolerance < 0:
            raise PropertyVectorError("gini tolerance must be non-negative")
        self.gini_tolerance = gini_tolerance
        self._gini = GiniIndex()

    def relation(self, first: PropertyVector, second: PropertyVector) -> Relation:
        check_comparable(first, second)
        floor_first = float(first.oriented.min())
        floor_second = float(second.oriented.min())
        if not math.isclose(
            floor_first, floor_second, rel_tol=1e-9, abs_tol=1e-12
        ):
            return (
                Relation.BETTER if floor_first > floor_second else Relation.WORSE
            )
        gini_first = self._gini.value(first)
        gini_second = self._gini.value(second)
        if abs(gini_first - gini_second) <= self.gini_tolerance:
            return Relation.EQUIVALENT
        return (
            Relation.BETTER if gini_first < gini_second else Relation.WORSE
        )


def default_comparators(
    ideal: PropertyVector | float, reference: float = 0.0
) -> dict[str, MetricComparator]:
    """The paper's comparator suite, keyed by short name."""
    return {
        "min": MinBetter(),
        "rank": RankBetter(ideal),
        "cov": CoverageBetter(),
        "spr": SpreadBetter(),
        "hv": HypervolumeBetter(reference),
    }
