"""Unary quality indices (Definition 3 with m = 1).

A unary index maps one property vector to a real number.  The paper's
examples: ``P_k-anon(s) = min(s)``, ``P_s-avg(s) = mean(s)``, the l-diversity
index, and the rank index ``P_rank(D) = ||D - D_max||`` of Section 5.1.
Theorem 1 shows families of fewer than N unary indices cannot characterize
dominance — see :mod:`repro.core.theory` for the executable demonstration.
"""

from __future__ import annotations

import abc

from ...kernels.array import xp as np

from ..vector import PropertyVector, PropertyVectorError, check_comparable


class UnaryIndex(abc.ABC):
    """A function from one property vector to a real quality value.

    ``larger_is_better`` states the orientation of the *index value* (for
    ``P_rank`` a smaller distance is better, for ``P_k-anon`` a larger
    minimum is better).
    """

    name: str = "unary-index"
    larger_is_better: bool = True

    @abc.abstractmethod
    def value(self, vector: PropertyVector) -> float:
        """The index value of ``vector``."""

    def __call__(self, vector: PropertyVector) -> float:
        return self.value(vector)

    def prefers(self, first: PropertyVector, second: PropertyVector) -> bool:
        """Whether this index strictly prefers ``first`` over ``second``."""
        check_comparable(first, second)
        a, b = self.value(first), self.value(second)
        return a > b if self.larger_is_better else a < b

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MinimumIndex(UnaryIndex):
    """``P_k-anon``: the minimum oriented property value.

    On the equivalence-class-size property this is exactly the k of
    k-anonymity; on the sensitive-value-count property it is the paper's
    l-diversity index value (Section 3).
    """

    name = "minimum"
    larger_is_better = True

    def value(self, vector: PropertyVector) -> float:
        return float(vector.oriented.min())


class MeanIndex(UnaryIndex):
    """``P_s-avg``: the mean oriented property value (3.4 for the paper's
    T3a class-size vector)."""

    name = "mean"
    larger_is_better = True

    def value(self, vector: PropertyVector) -> float:
        return float(vector.oriented.mean())


class MaximumIndex(UnaryIndex):
    """The maximum oriented property value."""

    name = "maximum"
    larger_is_better = True

    def value(self, vector: PropertyVector) -> float:
        return float(vector.oriented.max())


class QuantileIndex(UnaryIndex):
    """An order-statistic index (median by default).

    Useful as a robust middle ground between the minimalistic ``min`` the
    paper criticizes and the mean.
    """

    def __init__(self, q: float = 0.5):
        if not 0.0 <= q <= 1.0:
            raise PropertyVectorError(f"quantile must be in [0,1], got {q}")
        self.q = q
        self.name = f"quantile[{q}]"

    larger_is_better = True

    def value(self, vector: PropertyVector) -> float:
        return float(np.quantile(vector.oriented, self.q))


class GiniIndex(UnaryIndex):
    """Gini coefficient of the oriented property values — a direct unary
    measurement of the *anonymization bias* itself (Section 2).

    0 means every tuple enjoys the same property level (no bias); values
    toward 1 mean the protection is concentrated on a fraction of the data
    set.  Smaller is better.
    """

    name = "gini"
    larger_is_better = False

    def value(self, vector: PropertyVector) -> float:
        oriented = np.sort(vector.oriented)
        shifted = oriented - oriented.min() if oriented.min() < 0 else oriented
        total = shifted.sum()
        if total == 0:
            return 0.0
        n = shifted.size
        ranks = np.arange(1, n + 1)
        return float(
            (2 * (ranks * shifted).sum()) / (n * total) - (n + 1) / n
        )


class RankIndex(UnaryIndex):
    """``P_rank``: distance to the most desired property vector (Section 5.1).

    Smaller distances are better; two vectors whose ranks differ by at most
    ``epsilon`` are considered equally good.

    Parameters
    ----------
    ideal:
        The point of interest ``D_max`` — either a full property vector or a
        scalar broadcast to every tuple (e.g. ``N`` for the class-size
        property, where the single all-N class is ideal).
    order:
        Norm order (2 = Euclidean, matching the figure's circular arcs;
        1 and ``np.inf`` also supported).
    epsilon:
        Equivalence tolerance on the rank.
    """

    larger_is_better = False

    def __init__(
        self,
        ideal: PropertyVector | float,
        order: float = 2,
        epsilon: float = 0.0,
    ):
        if epsilon < 0:
            raise PropertyVectorError(f"epsilon must be non-negative, got {epsilon}")
        self._ideal = ideal
        self.order = order
        self.epsilon = epsilon
        self.name = f"rank[order={order}]"

    def _ideal_array(self, vector: PropertyVector) -> np.ndarray:
        if isinstance(self._ideal, PropertyVector):
            check_comparable(vector, self._ideal)
            return self._ideal.oriented
        scalar = float(self._ideal)
        oriented_scalar = scalar if vector.higher_is_better else -scalar
        return np.full(len(vector), oriented_scalar)

    def value(self, vector: PropertyVector) -> float:
        difference = vector.oriented - self._ideal_array(vector)
        return float(np.linalg.norm(difference, ord=self.order))

    def equivalent(self, first: PropertyVector, second: PropertyVector) -> bool:
        """Whether the two vectors are equi-ranked within the tolerance —
        geometrically, whether they lie in the same ε-annulus around
        ``D_max`` (Figure 2)."""
        check_comparable(first, second)
        return abs(self.value(first) - self.value(second)) <= self.epsilon

    def prefers(self, first: PropertyVector, second: PropertyVector) -> bool:
        if self.equivalent(first, second):
            return False
        return self.value(first) < self.value(second)
