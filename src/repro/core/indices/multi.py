"""Preference-based indices over *sets* of property vectors (Sections 5.5-5.7).

When an r-property anonymization induces several property vectors (privacy
and utility, say), single-property indices no longer suffice.  The paper
offers three preference mechanisms, each built on top of a per-property
binary index ``P`` (different properties may use different indices):

* ``P_WTD`` — weighted sum of per-property binary index values;
* ``P_LEX`` — ε-lexicographic: the first property (in preference order)
  where one set is significantly superior decides;
* ``P_GOAL`` — sum-of-squares distance of the index values from a goal
  vector.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..vector import PropertyVector, PropertyVectorError
from .binary import coverage

#: A binary quality index: two property vectors to a real value.
BinaryIndex = Callable[[PropertyVector, PropertyVector], float]

PropertySet = Sequence[PropertyVector]


def _check_sets(
    first: PropertySet, second: PropertySet, indices: Sequence[BinaryIndex]
) -> None:
    if len(first) != len(second):
        raise PropertyVectorError(
            f"property sets have different sizes ({len(first)} vs {len(second)})"
        )
    if not first:
        raise PropertyVectorError("property sets must be non-empty")
    if len(indices) != len(first):
        raise PropertyVectorError(
            f"expected {len(first)} binary indices, got {len(indices)}"
        )


def _resolve_indices(
    count: int, index: BinaryIndex | Sequence[BinaryIndex] | None
) -> list[BinaryIndex]:
    if index is None:
        return [coverage] * count
    if callable(index):
        return [index] * count
    return list(index)


def weighted(
    first: PropertySet,
    second: PropertySet,
    weights: Sequence[float],
    index: BinaryIndex | Sequence[BinaryIndex] | None = None,
) -> float:
    """``P_WTD(Υ1, Υ2) = Σ w_i · P(D_1i, D_2i)`` (Section 5.5).

    ``Υ1 ▶_WTD Υ2`` iff ``weighted(Υ1,Υ2,w) > weighted(Υ2,Υ1,w)``.  Weights
    should be positive and sum to 1 (validated); the default per-property
    index is ``P_cov``, whose values are already normalized to [0, 1] as the
    paper advises.
    """
    indices = _resolve_indices(len(first), index)
    _check_sets(first, second, indices)
    if len(weights) != len(first):
        raise PropertyVectorError(
            f"expected {len(first)} weights, got {len(weights)}"
        )
    if any(w <= 0 for w in weights):
        raise PropertyVectorError("weights must be positive")
    total = float(sum(weights))
    if abs(total - 1.0) > 1e-9:
        raise PropertyVectorError(f"weights must sum to 1, got {total}")
    return float(
        sum(
            w * p(a, b)
            for w, p, a, b in zip(weights, indices, first, second)
        )
    )


def lexicographic(
    first: PropertySet,
    second: PropertySet,
    epsilons: Sequence[float] | float = 0.0,
    index: BinaryIndex | Sequence[BinaryIndex] | None = None,
) -> int:
    """``P_LEX``: 1-based position of the first property where ``first`` is
    significantly superior (Section 5.6).

    Properties are given in descending order of relevance; ``epsilons[i]``
    is the largest index-value difference on property ``i`` still treated as
    a tie.  Returns ``r + 1`` when ``first`` is superior nowhere, so lower
    values are better and ``Υ1 ▶_LEX Υ2`` iff
    ``lexicographic(Υ1,Υ2) < lexicographic(Υ2,Υ1)``.
    """
    indices = _resolve_indices(len(first), index)
    _check_sets(first, second, indices)
    count = len(first)
    if isinstance(epsilons, (int, float)):
        epsilon_values = [float(epsilons)] * count
    else:
        epsilon_values = [float(e) for e in epsilons]
    if len(epsilon_values) != count:
        raise PropertyVectorError(
            f"expected {count} epsilons, got {len(epsilon_values)}"
        )
    if any(e < 0 for e in epsilon_values):
        raise PropertyVectorError("epsilons must be non-negative")
    for position, (p, a, b, eps) in enumerate(
        zip(indices, first, second, epsilon_values), start=1
    ):
        if p(a, b) - p(b, a) > eps:
            return position
    return count + 1


def goal(
    first: PropertySet,
    second: PropertySet,
    goals: Sequence[float],
    index: BinaryIndex | Sequence[BinaryIndex] | None = None,
) -> float:
    """``P_GOAL(Υ1, Υ2) = Σ (P(D_1i, D_2i) − g_i)²`` (Section 5.7).

    Smaller is better: ``Υ1 ▶_GOAL Υ2`` iff
    ``goal(Υ1,Υ2,g) < goal(Υ2,Υ1,g)``.
    """
    indices = _resolve_indices(len(first), index)
    _check_sets(first, second, indices)
    if len(goals) != len(first):
        raise PropertyVectorError(f"expected {len(first)} goals, got {len(goals)}")
    return float(
        sum(
            (p(a, b) - g) ** 2
            for p, a, b, g in zip(indices, first, second, goals)
        )
    )


def goal_from_unary(
    vectors: PropertySet,
    goal_vectors: PropertySet,
    unary_indices: Sequence[Callable[[PropertyVector], float]],
) -> float:
    """Unary-index variant of ``P_GOAL`` (end of Section 5.7).

    The goal vector is derived from goal *property vectors*:
    ``G = (P_1(D_g1), ..., P_r(D_gr))``; the score is the sum-of-squares
    error of the unary index values from those targets.
    """
    if not (len(vectors) == len(goal_vectors) == len(unary_indices)):
        raise PropertyVectorError(
            "vectors, goal_vectors and unary_indices must have equal lengths"
        )
    if not vectors:
        raise PropertyVectorError("property sets must be non-empty")
    return float(
        sum(
            (p(d) - p(g)) ** 2
            for p, d, g in zip(unary_indices, vectors, goal_vectors)
        )
    )
