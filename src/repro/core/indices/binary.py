"""Binary quality indices (Definition 3 with m = 2).

These compare individual components of two property vectors induced by two
different anonymizations of the same data set, which is precisely what unary
indices cannot do (Section 3):

* :func:`binary_count` — ``P_binary(s,t) = |{s_i > t_i}|`` (Section 3);
* :func:`coverage` — ``P_cov`` of Section 5.2 (ties count for both sides);
* :func:`spread` — ``P_spr`` of Section 5.3;
* :func:`hypervolume` — ``P_hv`` of Section 5.4, plus a log-space variant
  that stays finite for large N.

All indices operate on *oriented* values (higher is better), so they apply
unchanged to loss-like vectors.
"""

from __future__ import annotations

from ...kernels.array import xp as np

from ..vector import PropertyVector, PropertyVectorError, check_comparable


def binary_count(first: PropertyVector, second: PropertyVector) -> int:
    """``P_binary``: number of tuples where ``first`` is strictly better.

    For the paper's T3a/T3b class-size vectors, ``P_binary(s, t) = 0`` and
    ``P_binary(t, s) = 7``.
    """
    check_comparable(first, second)
    return int(np.count_nonzero(first.oriented > second.oriented))


def coverage(
    first: PropertyVector, second: PropertyVector, strict: bool = False
) -> float:
    """``P_cov``: fraction of tuples where ``first`` is at least as good.

    The paper counts ties for both vectors (``d_i^1 >= d_i^2``); pass
    ``strict=True`` for the tie-free ablation variant (``>`` only).
    """
    check_comparable(first, second)
    if strict:
        better = first.oriented > second.oriented
    else:
        better = first.oriented >= second.oriented
    return float(np.count_nonzero(better)) / len(first)


def spread(first: PropertyVector, second: PropertyVector) -> float:
    """``P_spr``: total property-value margin on tuples where ``first`` wins.

    ``P_spr(D1, D2) = Σ max(d_i^1 - d_i^2, 0)``; equals 0 iff ``second``
    weakly dominates ``first``.
    """
    check_comparable(first, second)
    return float(np.maximum(first.oriented - second.oriented, 0.0).sum())


def epsilon_indicator(first: PropertyVector, second: PropertyVector) -> float:
    """The additive ε-indicator of Zitzler et al. [23] (the paper's cited
    foundation for quality indicators), adapted to property vectors.

    ``I_ε(D1, D2) = max_i (d_i^2 − d_i^1)`` on oriented values: the
    smallest uniform boost every tuple of ``D1`` would need to weakly
    dominate ``D2``.  Non-positive iff ``D1 ⪰ D2`` already; the magnitude
    quantifies *how far* from dominance the vectors are — a graded answer
    to the strict yes/no of Table 4.
    """
    check_comparable(first, second)
    return float((second.oriented - first.oriented).max())


def _shifted(vector: PropertyVector, reference: float) -> np.ndarray:
    values = vector.oriented - reference
    if np.any(values < 0):
        raise PropertyVectorError(
            f"hypervolume requires oriented values >= reference ({reference}); "
            f"lowest seen was {float(vector.oriented.min())}"
        )
    return values

def log_dominated_hypervolume(
    vector: PropertyVector, reference: float = 0.0
) -> float:
    """Natural log of the hypervolume weakly dominated by ``vector``.

    The dominated region (the paper's ``Ψ``) has volume ``Π (d_i - ref)``;
    the log form stays finite for large N.  Returns ``-inf`` when any
    component sits at the reference (degenerate, zero-volume region).
    """
    values = _shifted(vector, reference)
    if np.any(values == 0):
        return float("-inf")
    return float(np.log(values).sum())


def hypervolume(
    first: PropertyVector, second: PropertyVector, reference: float = 0.0
) -> float:
    """``P_hv``: volume on which ``first`` is *solely* weakly dominant.

    ``P_hv(D1, D2) = Π d_i^1 - Π min(d_i^1, d_i^2)`` (region A of the
    paper's Figure 4, with ``reference`` as the origin).  The value can
    overflow to ``inf`` for long vectors of large measures; use
    :func:`compare_hypervolume` for overflow-safe comparisons.
    """
    check_comparable(first, second)
    own = _shifted(first, reference)
    shared = np.minimum(own, _shifted(second, reference))
    return float(np.prod(own) - np.prod(shared))


def compare_hypervolume(
    first: PropertyVector, second: PropertyVector, reference: float = 0.0
) -> int:
    """Sign of ``P_hv(D1,D2) - P_hv(D2,D1)`` computed in log space.

    Because both directed indices subtract the *same* commonly dominated
    volume ``Π min(d1,d2)``, their order reduces to comparing the two total
    dominated volumes — done here on log sums so N in the tens of thousands
    cannot overflow.  Returns 1, -1 or 0.
    """
    check_comparable(first, second)
    log_first = log_dominated_hypervolume(first, reference)
    log_second = log_dominated_hypervolume(second, reference)
    if np.isclose(log_first, log_second, rtol=1e-12, atol=1e-12):
        return 0
    return 1 if log_first > log_second else -1
