"""Quality index functions over property vectors."""

from .binary import (
    binary_count,
    compare_hypervolume,
    coverage,
    epsilon_indicator,
    hypervolume,
    log_dominated_hypervolume,
    spread,
)
from .multi import (
    BinaryIndex,
    goal,
    goal_from_unary,
    lexicographic,
    weighted,
)
from .unary import (
    GiniIndex,
    MaximumIndex,
    MeanIndex,
    MinimumIndex,
    QuantileIndex,
    RankIndex,
    UnaryIndex,
)

__all__ = [
    "binary_count",
    "compare_hypervolume",
    "coverage",
    "epsilon_indicator",
    "hypervolume",
    "log_dominated_hypervolume",
    "spread",
    "BinaryIndex",
    "goal",
    "goal_from_unary",
    "lexicographic",
    "weighted",
    "GiniIndex",
    "MaximumIndex",
    "MeanIndex",
    "MinimumIndex",
    "QuantileIndex",
    "RankIndex",
    "UnaryIndex",
]
