"""Set-level ▶-better comparators (Sections 5.5–5.7) as comparator objects.

The functions in :mod:`repro.core.indices.multi` compute the raw P_WTD /
P_LEX / P_GOAL values; these classes wrap them with the same
``relation(first, second) -> Relation`` interface as the single-property
comparators, operating on Υ sets (sequences of property vectors paired by
property) — so multi-property comparisons plug into the same matrices,
tournaments and reports.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..kernels.array import xp as np

from .comparators import Relation
from .indices.multi import BinaryIndex, goal, lexicographic, weighted
from .vector import PropertyVector

PropertySet = Sequence[PropertyVector]


class SetComparator(abc.ABC):
    """A ▶-better comparator over sets of property vectors."""

    name: str = "set-comparator"

    @abc.abstractmethod
    def relation(self, first: PropertySet, second: PropertySet) -> Relation:
        """Compare Υ1 against Υ2."""

    def better(self, first: PropertySet, second: PropertySet) -> bool:
        """Whether ``first ▶ second`` under this comparator."""
        return self.relation(first, second) is Relation.BETTER

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class WeightedBetter(SetComparator):
    """▶WTD — weighted sum of per-property binary index values wins.

    ``Υ1 ▶WTD Υ2`` iff ``P_WTD(Υ1,Υ2) > P_WTD(Υ2,Υ1)`` (Section 5.5).
    """

    name = "weighted-better"

    def __init__(
        self,
        weights: Sequence[float],
        index: BinaryIndex | Sequence[BinaryIndex] | None = None,
    ):
        self.weights = list(weights)
        self.index = index

    def relation(self, first: PropertySet, second: PropertySet) -> Relation:
        forward = weighted(first, second, self.weights, self.index)
        backward = weighted(second, first, self.weights, self.index)
        if np.isclose(forward, backward):
            return Relation.EQUIVALENT
        return Relation.BETTER if forward > backward else Relation.WORSE


class LexicographicBetter(SetComparator):
    """▶LEX — the set superior on the most preferred property wins
    (Section 5.6); properties ordered as given, with significance ε."""

    name = "lexicographic-better"

    def __init__(
        self,
        epsilons: Sequence[float] | float = 0.0,
        index: BinaryIndex | Sequence[BinaryIndex] | None = None,
    ):
        self.epsilons = epsilons
        self.index = index

    def relation(self, first: PropertySet, second: PropertySet) -> Relation:
        forward = lexicographic(first, second, self.epsilons, self.index)
        backward = lexicographic(second, first, self.epsilons, self.index)
        if forward == backward:
            return Relation.EQUIVALENT
        return Relation.BETTER if forward < backward else Relation.WORSE


class GoalBetter(SetComparator):
    """▶GOAL — the set whose index values sit closer to the goal vector
    wins (Section 5.7)."""

    name = "goal-better"

    def __init__(
        self,
        goals: Sequence[float],
        index: BinaryIndex | Sequence[BinaryIndex] | None = None,
    ):
        self.goals = list(goals)
        self.index = index

    def relation(self, first: PropertySet, second: PropertySet) -> Relation:
        forward = goal(first, second, self.goals, self.index)
        backward = goal(second, first, self.goals, self.index)
        if np.isclose(forward, backward):
            return Relation.EQUIVALENT
        return Relation.BETTER if forward < backward else Relation.WORSE
