"""Generalization hierarchies and the full-domain lattice."""

from .base import SUPPRESSED, Hierarchy, HierarchyError, Interval
from .codes import Level, LevelTable, level_table
from .builder import (
    categorical_hierarchy_from_data,
    infer_hierarchies,
    numeric_hierarchy_from_data,
    string_hierarchy_from_data,
)
from .categorical import TaxonomyHierarchy
from .io import (
    hierarchy_from_spec,
    hierarchy_to_spec,
    load_hierarchies,
    save_hierarchies,
)
from .lattice import Lattice, Node
from .masking import MaskingHierarchy
from .numeric import Banding, IntervalHierarchy, Span, uniform_interval_hierarchy

__all__ = [
    "SUPPRESSED",
    "Hierarchy",
    "HierarchyError",
    "Interval",
    "Level",
    "LevelTable",
    "level_table",
    "categorical_hierarchy_from_data",
    "infer_hierarchies",
    "numeric_hierarchy_from_data",
    "string_hierarchy_from_data",
    "TaxonomyHierarchy",
    "hierarchy_from_spec",
    "hierarchy_to_spec",
    "load_hierarchies",
    "save_hierarchies",
    "Lattice",
    "Node",
    "MaskingHierarchy",
    "Banding",
    "IntervalHierarchy",
    "Span",
    "uniform_interval_hierarchy",
]
