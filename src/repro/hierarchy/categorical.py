"""Taxonomy-tree hierarchies for categorical attributes."""

from __future__ import annotations

from typing import Any, Hashable, Mapping, Sequence

from .base import SUPPRESSED, Hierarchy, HierarchyError

TreeSpec = Mapping[str, Sequence[Any]]


class TaxonomyHierarchy(Hierarchy):
    """A categorical hierarchy defined by per-leaf ancestor paths.

    Parameters
    ----------
    name:
        Attribute name the hierarchy applies to.
    paths:
        Maps each leaf value to the tuple of its generalizations for levels
        ``1 .. height-1`` (level 0 is the leaf itself and the top level is the
        suppression token, both implicit).  All paths must have equal length
        so the hierarchy has a uniform height, as required by full-domain
        recoding.

    Example
    -------
    The marital-status hierarchy of Table 2::

        TaxonomyHierarchy("Marital Status", {
            "CF-Spouse": ("Married",),
            "Spouse Present": ("Married",),
            "Separated": ("Not Married",),
            ...
        })

    has height 2: level 0 = raw, level 1 = Married/Not Married, level 2 = "*".
    """

    def __init__(self, name: str, paths: Mapping[Any, Sequence[Hashable]]):
        super().__init__(name)
        if not paths:
            raise HierarchyError(f"hierarchy {name!r} has no leaves")
        lengths = {len(path) for path in paths.values()}
        if len(lengths) != 1:
            raise HierarchyError(
                f"hierarchy {name!r} has ragged paths (lengths {sorted(lengths)}); "
                "all leaves must generalize through the same number of levels"
            )
        self._paths: dict[Any, tuple[Hashable, ...]] = {
            leaf: tuple(path) for leaf, path in paths.items()
        }
        self._height = lengths.pop() + 1
        # Sizes of the subtree under each internal node, per level, for loss().
        self._coverage: list[dict[Hashable, int]] = []
        for level in range(1, self._height):
            counts: dict[Hashable, int] = {}
            for path in self._paths.values():
                token = path[level - 1]
                counts[token] = counts.get(token, 0) + 1
            self._coverage.append(counts)
        # A token label may coincide with a leaf only when that leaf sits
        # under the token (then the two are semantically the same node);
        # any other collision makes cut recodings ambiguous.
        for level, counts in enumerate(self._coverage, start=1):
            for token in counts:
                if token in self._paths and self._paths[token][level - 1] != token:
                    raise HierarchyError(
                        f"hierarchy {name!r}: level-{level} token {token!r} "
                        "collides with an unrelated leaf value"
                    )

    @classmethod
    def from_tree(cls, name: str, tree: TreeSpec) -> "TaxonomyHierarchy":
        """Build from a nested-dict tree.

        ``tree`` maps internal node labels to children; children are leaf
        values or nested dicts.  All leaves must sit at the same depth.
        The root label is *not* used as a generalization level (the top level
        is always the suppression token).
        """
        if len(tree) != 1:
            raise HierarchyError("tree spec must have exactly one root")
        paths: dict[Any, tuple[Hashable, ...]] = {}

        def walk(node_label: str, children: Sequence[Any], trail: tuple[Hashable, ...]) -> None:
            for child in children:
                if isinstance(child, Mapping):
                    for label, grand_children in child.items():
                        walk(label, grand_children, trail + (label,))
                else:
                    if child in paths:
                        raise HierarchyError(f"duplicate leaf {child!r} in tree for {name!r}")
                    # Trail is root-to-parent; leaf paths want nearest-first.
                    paths[child] = tuple(reversed(trail))

        (root_label, root_children), = tree.items()
        walk(root_label, root_children, ())
        return cls(name, paths)

    @property
    def height(self) -> int:
        """Number of generalization levels above the leaves."""
        return self._height

    @property
    def leaves(self) -> tuple[Any, ...]:
        """All leaf values, in declaration order."""
        return tuple(self._paths)

    @property
    def domain_size(self) -> int:
        """Number of leaf values."""
        return len(self._paths)

    def _path(self, value: Any) -> tuple[Hashable, ...]:
        try:
            return self._paths[value]
        except KeyError:
            raise HierarchyError(
                f"value {value!r} not in domain of hierarchy {self.name!r}"
            ) from None

    # -- tree navigation (used by cut-based recoders) -------------------------

    def level_of(self, token: Hashable) -> int:
        """Level at which ``token`` lives: 0 for leaves, ``height`` for the
        suppression token."""
        if token == SUPPRESSED:
            return self._height
        if token in self._paths:
            return 0
        for level_index, counts in enumerate(self._coverage, start=1):
            if token in counts:
                return level_index
        raise HierarchyError(f"unknown token {token!r} in hierarchy {self.name!r}")

    def parent(self, token: Hashable) -> Hashable:
        """The token one level above ``token`` (top's parent is an error)."""
        level = self.level_of(token)
        if level >= self._height:
            raise HierarchyError(f"{token!r} is the hierarchy top")
        leaves = self.leaves_under(token)
        return self.generalize(leaves[0], level + 1)

    def children(self, token: Hashable) -> list[Hashable]:
        """Tokens one level below ``token`` (leaves for level-1 tokens)."""
        level = self.level_of(token)
        if level == 0:
            raise HierarchyError(f"{token!r} is a leaf")
        children: list[Hashable] = []
        for leaf in self.leaves_under(token):
            child = self.generalize(leaf, level - 1)
            if child not in children:
                children.append(child)
        return children

    def leaves_under(self, token: Hashable) -> list[Any]:
        """Leaf values covered by ``token``, in declaration order."""
        level = self.level_of(token)
        if level == 0:
            return [token]
        return [
            leaf
            for leaf in self._paths
            if self.generalize(leaf, level) == token
        ]

    def generalize(self, value: Any, level: int) -> Hashable:
        self.check_level(level)
        path = self._path(value)  # validates domain membership at all levels
        if level == 0:
            return value
        if level == self._height:
            return SUPPRESSED
        return path[level - 1]

    def coverage(self, value: Any, level: int) -> int:
        """Number of leaf values covered by ``generalize(value, level)``."""
        self.check_level(level)
        if level == 0:
            return 1
        if level == self._height:
            return self.domain_size
        token = self._path(value)[level - 1]
        return self._coverage[level - 1][token]

    def loss(self, value: Any, level: int) -> float:
        covered = self.coverage(value, level)
        return self._coverage_loss(covered)

    def _coverage_loss(self, covered: int) -> float:
        if self.domain_size == 1:
            return 0.0 if covered <= 1 else 1.0
        return (covered - 1) / (self.domain_size - 1)

    def released_loss(self, cell: Any) -> float:
        """Loss of a released cell: leaf, internal token, suppression token,
        or a frozenset of leaves (set-valued local recoding)."""
        if isinstance(cell, frozenset):
            unknown = set(cell) - set(self._paths)
            if unknown:
                raise HierarchyError(
                    f"set cell contains non-domain values {sorted(map(repr, unknown))}"
                )
            return self._coverage_loss(len(cell))
        if cell in self._paths:
            return 0.0
        for counts in self._coverage:
            if cell in counts:
                return self._coverage_loss(counts[cell])
        return super().released_loss(cell)
