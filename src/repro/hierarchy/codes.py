"""Per-(hierarchy, column) level tables for the columnar plane.

A *level table* precomputes, for one interned column and one hierarchy,
everything a full-domain recoding can ask: for each level ``L`` an
``array('q')`` gather mapping base code -> generalized code, the decode
table of generalized values, and the per-base-code loss.  Recoding a whole
column at level ``L`` is then a single gather over the (tiny) base-code
domain — no per-row hierarchy walks.

Tables are built once per (column identity, hierarchy identity) and
memoized on the :class:`~repro.datasets.columnar.ColumnCodes` object (the
memo stores the hierarchy itself, so the id key can never be recycled).

Generalized codes are assigned by first occurrence over the base codes,
which — because base codes are themselves first-occurrence in row order —
equals first occurrence in row order.  The decode tables store the exact
objects returned by ``hierarchy.generalize``, so cells materialized through
the plane serialize identically to the row plane's.

The table also answers two questions the incremental partition path needs:

* :meth:`LevelTable.nested` — whether the level chain is *nested* (equal
  codes at level ``L`` imply equal codes at every higher level) over the
  actual column domain.  ART002 checks monotonicity on samples; band
  hierarchies with shifted anchors can legitimately fail it, in which case
  partitions cannot be coarsened incrementally and callers must fall back
  to a fresh mixed-radix grouping.
* :meth:`LevelTable.suppression_code` — the group code suppressed rows
  take at a level: suppression is a gather to the top-level code, so a
  suppressed row must collide with rows that naturally generalize to the
  suppression token (and get a fresh code only when no such value exists).
"""

from __future__ import annotations

from array import array
from typing import Any

from ..datasets.columnar import ColumnCodes
from .base import SUPPRESSED, Hierarchy


class Level:
    """One level of a level table.

    Attributes
    ----------
    gather:
        ``array('q')``: base code -> generalized code.
    decode:
        Tuple: generalized code -> generalized value (exact ``generalize``
        return objects, first-occurrence order).
    values:
        Tuple: base code -> generalized value (``decode[gather[b]]``).
    loss:
        ``array('d')``: base code -> normalized LM loss at this level.
    count:
        Number of distinct generalized codes.  Every base code occurs in
        the column, so ``count`` is also the number of *distinct released
        values* of the column at this level.
    """

    __slots__ = ("gather", "decode", "values", "loss", "count")

    def __init__(self, hierarchy: Hierarchy, base_decode: tuple[Any, ...], level: int):
        size = len(base_decode)
        gather = array("q", bytes(8 * size))
        loss = array("d", bytes(8 * size))
        lookup: dict[Any, int] = {}
        for base_code, value in enumerate(base_decode):
            generalized = hierarchy.generalize(value, level)
            code = lookup.get(generalized)
            if code is None:
                code = len(lookup)
                lookup[generalized] = code
            gather[base_code] = code
            loss[base_code] = hierarchy.loss(value, level)
        self.gather = gather
        self.decode: tuple[Any, ...] = tuple(lookup)
        self.values: tuple[Any, ...] = tuple(
            self.decode[code] for code in gather
        )
        self.loss = loss
        self.count = len(lookup)


class LevelTable:
    """All levels of one hierarchy over one interned column."""

    __slots__ = ("hierarchy", "base_decode", "_levels", "_nested")

    def __init__(self, hierarchy: Hierarchy, base_decode: tuple[Any, ...]):
        self.hierarchy = hierarchy
        self.base_decode = base_decode
        self._levels: dict[int, Level] = {}
        self._nested: bool | None = None

    @property
    def height(self) -> int:
        """The hierarchy's height (maximum generalization level)."""
        return self.hierarchy.height

    def level(self, level: int) -> Level:
        """The gather/decode/loss tables at ``level`` (built once)."""
        built = self._levels.get(level)
        if built is None:
            self.hierarchy.check_level(level)
            built = Level(self.hierarchy, self.base_decode, level)
            self._levels[level] = built
        return built

    def nested(self) -> bool:
        """Whether the level chain is nested over this column's domain.

        Nested means: for every consecutive level pair, equal generalized
        codes at the lower level imply equal codes at the higher one.  Only
        then is deriving a coarser partition from a finer one (via one
        representative row per class) valid.
        """
        if self._nested is None:
            self._nested = self._check_nested()
        return self._nested

    def _check_nested(self) -> bool:
        size = len(self.base_decode)
        previous = self.level(0)
        for target in range(1, self.height + 1):
            current = self.level(target)
            parent_of: dict[int, int] = {}
            for base_code in range(size):
                source = previous.gather[base_code]
                destination = current.gather[base_code]
                seen = parent_of.setdefault(source, destination)
                if seen != destination:
                    return False
            previous = current
        return True

    def suppression_code(self, level: int) -> tuple[int, int]:
        """``(code, radix)`` for suppressed rows grouped at ``level``.

        Suppression is maximal generalization, so a suppressed row's cell
        must group with naturally fully-generalized cells: if the
        suppression token already has a code at this level it is reused,
        otherwise the next fresh code is designated (and the radix grows
        by one to accommodate it).
        """
        built = self.level(level)
        for code, value in enumerate(built.decode):
            if isinstance(value, str) and value == SUPPRESSED:
                return code, built.count
        return built.count, built.count + 1


def level_table(column: ColumnCodes, hierarchy: Hierarchy) -> LevelTable:
    """The memoized level table for ``(column, hierarchy)``.

    Keyed by hierarchy identity; the memo entry stores the hierarchy object
    itself so the id cannot be recycled while the column is alive.
    """
    entry = column.level_tables.get(id(hierarchy))
    if entry is not None and entry[0] is hierarchy:
        return entry[1]
    table = LevelTable(hierarchy, column.decode)
    column.level_tables[id(hierarchy)] = (hierarchy, table)
    return table
