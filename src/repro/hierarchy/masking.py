"""Suffix-masking hierarchies for string codes (zip codes, phone prefixes)."""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from .base import SUPPRESSED, Hierarchy, HierarchyError


class MaskingHierarchy(Hierarchy):
    """Generalizes fixed-width string codes by masking trailing characters.

    Level ``l`` replaces the last ``l`` characters with ``*`` — e.g. zip code
    ``13053`` at level 1 becomes ``1305*`` (Table 2) and at level 3 becomes
    ``13***`` (Table 3).  The top level is the suppression token.

    Parameters
    ----------
    name:
        Attribute name.
    code_length:
        Required length of every raw value.
    domain:
        Optional iterable of the raw values present in the releasable domain;
        when provided, :meth:`loss` uses exact mask coverage counts (how many
        domain values share the unmasked prefix).  Without it the loss falls
        back to the masked-character fraction.
    """

    def __init__(self, name: str, code_length: int, domain: Iterable[str] | None = None):
        super().__init__(name)
        if code_length < 1:
            raise HierarchyError(f"code length must be >= 1, got {code_length}")
        self._code_length = code_length
        self._domain: frozenset[str] | None = None
        self._prefix_counts: list[dict[str, int]] = []
        if domain is not None:
            values = sorted({str(v) for v in domain})
            for value in values:
                self._check_value(value)
            self._domain = frozenset(values)
            # prefix_counts[l-1][prefix] = #domain values sharing the first
            # (code_length - l) characters, for mask level l.
            for level in range(1, code_length + 1):
                counts: dict[str, int] = {}
                for value in values:
                    prefix = value[: code_length - level]
                    counts[prefix] = counts.get(prefix, 0) + 1
                self._prefix_counts.append(counts)

    @property
    def height(self) -> int:
        """Number of maskable characters (= generalization levels)."""
        # Masking all characters is already full suppression; one extra level
        # for the canonical "*" token keeps the protocol uniform.
        return self._code_length

    @property
    def domain(self) -> frozenset[str] | None:
        """The releasable raw codes, when provided."""
        return self._domain

    def _check_value(self, value: Any) -> str:
        text = str(value)
        if len(text) != self._code_length:
            raise HierarchyError(
                f"value {value!r} must have length {self._code_length} "
                f"for hierarchy {self.name!r}"
            )
        return text

    def generalize(self, value: Any, level: int) -> Hashable:
        self.check_level(level)
        text = self._check_value(value)
        if self._domain is not None and text not in self._domain:
            raise HierarchyError(
                f"value {value!r} not in domain of hierarchy {self.name!r}"
            )
        if level == 0:
            return text
        if level == self._code_length:
            return SUPPRESSED
        return text[: self._code_length - level] + "*" * level

    def coverage(self, value: Any, level: int) -> int:
        """Number of domain values covered by the mask (domain required)."""
        if self._domain is None:
            raise HierarchyError(
                f"coverage for {self.name!r} requires a domain at construction"
            )
        self.check_level(level)
        text = self._check_value(value)
        if level == 0:
            return 1
        if level == self._code_length:
            return len(self._domain)
        return self._prefix_counts[level - 1][text[: self._code_length - level]]

    def released_loss(self, cell: Any) -> float:
        """Loss of a released cell: raw code, masked code, a frozenset of
        codes (set-valued local recoding), or suppression."""
        if isinstance(cell, frozenset):
            if self._domain is None:
                raise HierarchyError(
                    f"set-cell loss for {self.name!r} requires a domain"
                )
            if len(self._domain) <= 1:
                return 0.0
            return (len(cell) - 1) / (len(self._domain) - 1)
        if cell == "*" * self._code_length:
            return 1.0
        if isinstance(cell, str) and len(cell) == self._code_length:
            masked = len(cell) - len(cell.rstrip("*"))
            prefix = cell[: self._code_length - masked]
            if "*" not in prefix:
                if masked == 0 and self._domain is not None and cell not in self._domain:
                    return super().released_loss(cell)
                if masked == 0:
                    return 0.0
                if self._domain is not None and len(self._domain) > 1:
                    covered = self._prefix_counts[masked - 1].get(prefix, 1)
                    return (covered - 1) / (len(self._domain) - 1)
                return masked / self._code_length
        return super().released_loss(cell)

    def loss(self, value: Any, level: int) -> float:
        self.check_level(level)
        if level == 0:
            return 0.0
        if level == self._code_length:
            return 1.0
        if self._domain is not None and len(self._domain) > 1:
            covered = self.coverage(value, level)
            return (covered - 1) / (len(self._domain) - 1)
        return level / self._code_length
