"""Generalization hierarchy protocol.

A hierarchy describes how a quasi-identifier attribute is generalized in a
full-domain recoding.  Level 0 is the identity (raw values); the highest level
collapses the whole domain into the suppression token ``"*"`` — suppression is
modeled as the special case of maximal generalization, exactly as in Section 3
of the paper ("suppression of tuples can be represented as a special case of
generalization").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Hashable

#: Token denoting a fully suppressed value.
SUPPRESSED = "*"


class HierarchyError(ValueError):
    """Raised for invalid hierarchy definitions or out-of-domain values."""


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open numeric interval ``(low, high]``.

    Generalized numeric values are represented with these, matching the
    paper's notation (e.g. age ``(25,35]`` in Table 2).
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise HierarchyError(f"empty interval ({self.low}, {self.high}]")

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, float)):
            return False
        return self.low < value <= self.high

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.high - self.low

    def __str__(self) -> str:
        def fmt(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else str(x)

        return f"({fmt(self.low)},{fmt(self.high)}]"


class Hierarchy(abc.ABC):
    """Value generalization hierarchy for one attribute."""

    def __init__(self, name: str):
        self.name = name

    @property
    @abc.abstractmethod
    def height(self) -> int:
        """Number of generalization levels above the raw values.

        Valid levels are ``0 .. height`` inclusive; ``generalize(v, height)``
        always returns :data:`SUPPRESSED`.
        """

    @abc.abstractmethod
    def generalize(self, value: Any, level: int) -> Hashable:
        """The generalization of ``value`` at ``level``.

        ``level == 0`` returns the value itself; ``level == height`` returns
        :data:`SUPPRESSED`.
        """

    @abc.abstractmethod
    def loss(self, value: Any, level: int) -> float:
        """Normalized information loss in ``[0, 1]`` for generalizing
        ``value`` to ``level`` (Iyengar's general loss metric contribution:
        0 for raw values, 1 for full suppression)."""

    def released_loss(self, cell: Any) -> float:
        """Normalized loss of an *already generalized* cell.

        Used by utility metrics on local recodings (e.g. Mondrian output),
        where no level vector is available.  Subclasses extend this for
        their own generalized token types; the base handles the two
        universal cases: the suppression token (loss 1) and raw leaf values
        (loss 0 when recognizable via ``generalize(cell, 0)``).
        """
        if cell == SUPPRESSED:
            return 1.0
        try:
            if self.generalize(cell, 0) == cell:
                return 0.0
        except HierarchyError:
            pass
        raise HierarchyError(
            f"hierarchy {self.name!r} cannot score released cell {cell!r}"
        )

    def check_level(self, level: int) -> None:
        """Raise unless ``0 <= level <= height``."""
        if not 0 <= level <= self.height:
            raise HierarchyError(
                f"level {level} out of range 0..{self.height} for hierarchy {self.name!r}"
            )

    def generalizations(self, value: Any) -> list[Hashable]:
        """All generalizations of ``value``, from level 0 up to the top."""
        return [self.generalize(value, level) for level in range(self.height + 1)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, height={self.height})"
