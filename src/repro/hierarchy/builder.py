"""Automatic hierarchy construction from data.

Disclosure control toolkits (μ-Argus, ARX) build default generalization
hierarchies from the data when none is supplied.  This module provides the
same convenience:

* numeric attributes — quantile-anchored interval bandings that double in
  width per level;
* categorical attributes — frequency-balanced grouping trees (values packed
  into groups of roughly equal mass per level);
* fixed-width string codes — suffix masking.

Every builder returns the library's standard hierarchy types, so derived
hierarchies interoperate with every algorithm and metric.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..datasets.dataset import Dataset
from ..datasets.schema import AttributeKind
from .base import Hierarchy, HierarchyError
from .categorical import TaxonomyHierarchy
from .masking import MaskingHierarchy
from .numeric import Banding, IntervalHierarchy


def numeric_hierarchy_from_data(
    name: str,
    values: Sequence[float],
    levels: int = 4,
    padding: float = 0.0,
) -> IntervalHierarchy:
    """Interval hierarchy whose base band width is sized so that roughly
    ``2**levels`` base bands cover the observed range, doubling per level.

    Parameters
    ----------
    name:
        Attribute name.
    values:
        Observed numeric values (define the domain bounds).
    levels:
        Number of banding levels.
    padding:
        Extra domain margin added below the minimum and above the maximum
        (absolute units), so near-boundary future values stay in-domain.
    """
    numeric = [v for v in values if isinstance(v, (int, float))]
    if not numeric:
        raise HierarchyError(f"no numeric values to build hierarchy {name!r}")
    if levels < 1:
        raise HierarchyError(f"levels must be >= 1, got {levels}")
    low = min(numeric) - padding
    high = max(numeric) + padding
    if high == low:
        high = low + 1.0
    base_width = (high - low) / (2 ** levels)
    if not (base_width > 0.0 and math.isfinite(base_width)):
        # Degenerate span: the observed range is so small that dividing it
        # underflows to zero (denormal floats), or so large it overflows.
        # Fall back to a unit-wide domain anchored at the minimum.
        high = low + 1.0
        base_width = (high - low) / (2 ** levels)
    bandings = [
        Banding(base_width * (2 ** i), anchor=low) for i in range(levels)
    ]
    return IntervalHierarchy(name, bandings, bounds=(low, high))


def categorical_hierarchy_from_data(
    name: str,
    values: Sequence[Any],
    fanout: int = 3,
) -> TaxonomyHierarchy:
    """Frequency-balanced grouping tree over the observed categories.

    Distinct values are sorted by descending frequency and packed
    round-robin into ``ceil(m / fanout)`` groups per level (so groups carry
    roughly equal mass), repeating until a single group remains.  Group
    labels are synthesized as ``<name>:L<level>:<index>``.
    """
    if fanout < 2:
        raise HierarchyError(f"fanout must be >= 2, got {fanout}")
    counts: dict[Any, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        raise HierarchyError(f"no values to build hierarchy {name!r}")

    # current: list of (label, member leaves, total mass), heaviest first.
    current: list[tuple[Any, list[Any], int]] = [
        (value, [value], count)
        for value, count in sorted(counts.items(), key=lambda kv: -kv[1])
    ]
    paths: dict[Any, list[Any]] = {value: [] for value in counts}
    level = 0
    while len(current) > 1:
        level += 1
        group_count = max(1, math.ceil(len(current) / fanout))
        groups: list[tuple[str, list[Any], int]] = [
            (f"{name}:L{level}:{index}", [], 0) for index in range(group_count)
        ]
        # Greedy balance: put each (heaviest-first) node in the lightest group.
        for _, members, mass in current:
            label, existing, existing_mass = min(groups, key=lambda g: g[2])
            position = groups.index((label, existing, existing_mass))
            groups[position] = (label, existing + members, existing_mass + mass)
        for label, members, _ in groups:
            for leaf in members:
                paths[leaf].append(label)
        current = sorted(groups, key=lambda g: -g[2])

    # All paths have equal length (every leaf joins exactly one group per
    # level); a single distinct value yields height-1 (leaf -> "*").
    return TaxonomyHierarchy(name, {leaf: tuple(path) for leaf, path in paths.items()})


def string_hierarchy_from_data(
    name: str, values: Sequence[str]
) -> MaskingHierarchy:
    """Suffix-masking hierarchy over fixed-width codes found in the data."""
    texts = {str(v) for v in values}
    if not texts:
        raise HierarchyError(f"no values to build hierarchy {name!r}")
    lengths = {len(t) for t in texts}
    if len(lengths) != 1:
        raise HierarchyError(
            f"values of {name!r} have mixed lengths {sorted(lengths)}; "
            "masking needs fixed-width codes"
        )
    return MaskingHierarchy(name, lengths.pop(), domain=texts)


def _looks_like_code(values: Sequence[Any]) -> bool:
    texts = [v for v in values if isinstance(v, str)]
    if len(texts) != len(values) or not texts:
        return False
    lengths = {len(t) for t in texts}
    return len(lengths) == 1 and all(t.isalnum() for t in texts)


def infer_hierarchies(
    dataset: Dataset,
    levels: int = 4,
    fanout: int = 3,
) -> dict[str, Hierarchy]:
    """Build a hierarchy for every quasi-identifier of ``dataset``.

    Numeric QIs get quantile-sized interval bandings, fixed-width
    alphanumeric string QIs get suffix masking, everything else gets a
    frequency-balanced grouping tree.
    """
    hierarchies: dict[str, Hierarchy] = {}
    for attribute in dataset.schema.quasi_identifiers:
        column = dataset.column(attribute.name)
        if attribute.kind is AttributeKind.NUMERIC:
            hierarchies[attribute.name] = numeric_hierarchy_from_data(
                attribute.name, column, levels=levels
            )
        elif attribute.kind is AttributeKind.STRING and _looks_like_code(column):
            hierarchies[attribute.name] = string_hierarchy_from_data(
                attribute.name, column
            )
        else:
            hierarchies[attribute.name] = categorical_hierarchy_from_data(
                attribute.name, column, fanout=fanout
            )
    return hierarchies
