"""The full-domain generalization lattice.

For quasi-identifier attributes with hierarchies of heights ``h_1 .. h_a``,
the full-domain recodings form a lattice: each node is a level vector
``(l_1, .., l_a)`` with ``0 <= l_i <= h_i``.  Samarati's algorithm searches
this lattice by height; Incognito walks its attribute-subset sub-lattices;
the optimal search enumerates it with monotonicity pruning.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

from .base import Hierarchy, HierarchyError

Node = tuple[int, ...]


class Lattice:
    """Lattice of full-domain generalization level vectors.

    Parameters
    ----------
    hierarchies:
        One hierarchy per quasi-identifier attribute, in attribute order.
    """

    def __init__(self, hierarchies: Sequence[Hierarchy]):
        if not hierarchies:
            raise HierarchyError("lattice requires at least one hierarchy")
        self._hierarchies = tuple(hierarchies)
        self._heights = tuple(h.height for h in hierarchies)

    @property
    def hierarchies(self) -> tuple[Hierarchy, ...]:
        """The per-attribute hierarchies, in attribute order."""
        return self._hierarchies

    @property
    def heights(self) -> tuple[int, ...]:
        """Per-attribute hierarchy heights."""
        return self._heights

    @property
    def dimensions(self) -> int:
        """Number of quasi-identifier attributes."""
        return len(self._heights)

    @property
    def bottom(self) -> Node:
        """The all-raw node (no generalization)."""
        return (0,) * self.dimensions

    @property
    def top(self) -> Node:
        """The fully generalized node."""
        return self._heights

    @property
    def max_height(self) -> int:
        """Height of the top node (sum of hierarchy heights)."""
        return sum(self._heights)

    def __len__(self) -> int:
        size = 1
        for height in self._heights:
            size *= height + 1
        return size

    def __contains__(self, node: object) -> bool:
        if not isinstance(node, tuple) or len(node) != self.dimensions:
            return False
        return all(
            isinstance(level, int) and 0 <= level <= height
            for level, height in zip(node, self._heights)
        )

    def check_node(self, node: Node) -> None:
        """Raise unless ``node`` belongs to this lattice."""
        if node not in self:
            raise HierarchyError(f"{node!r} is not a node of {self!r}")

    def height(self, node: Node) -> int:
        """Sum of levels — the node's stratum in Samarati's search."""
        self.check_node(node)
        return sum(node)

    def successors(self, node: Node) -> Iterator[Node]:
        """Immediate generalizations (one attribute raised one level)."""
        self.check_node(node)
        for i, (level, height) in enumerate(zip(node, self._heights)):
            if level < height:
                yield node[:i] + (level + 1,) + node[i + 1 :]

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Immediate specializations (one attribute lowered one level)."""
        self.check_node(node)
        for i, level in enumerate(node):
            if level > 0:
                yield node[:i] + (level - 1,) + node[i + 1 :]

    def nodes(self) -> Iterator[Node]:
        """All nodes, in lexicographic order."""
        return itertools.product(*(range(h + 1) for h in self._heights))

    def nodes_at_height(self, height: int) -> Iterator[Node]:
        """All nodes whose level sum equals ``height``."""
        if not 0 <= height <= self.max_height:
            return iter(())
        return (node for node in self.nodes() if sum(node) == height)

    def dominates(self, upper: Node, lower: Node) -> bool:
        """Whether ``upper`` is at least as generalized as ``lower`` in
        every attribute (the lattice order)."""
        self.check_node(upper)
        self.check_node(lower)
        return all(u >= l for u, l in zip(upper, lower))

    def ancestors(self, node: Node) -> Iterator[Node]:
        """All nodes strictly more generalized than ``node``."""
        self.check_node(node)
        ranges = (range(level, height + 1) for level, height in zip(node, self._heights))
        return (n for n in itertools.product(*ranges) if n != node)

    def minimal_nodes(self, nodes: Sequence[Node]) -> list[Node]:
        """The subset of ``nodes`` not dominated by any other member —
        Samarati's k-minimal candidates among a satisfying set."""
        unique = list(dict.fromkeys(nodes))
        return [
            node
            for node in unique
            if not any(other != node and self.dominates(node, other) for other in unique)
        ]

    def __repr__(self) -> str:
        names = ", ".join(h.name for h in self._hierarchies)
        return f"Lattice([{names}], heights={self._heights})"
