"""JSON round-trip for generalization hierarchies.

Hierarchies are configuration as much as code — a deployment wants to
review, version and share them.  Every hierarchy type serializes to a plain
JSON-compatible spec dict and back:

* :class:`TaxonomyHierarchy` — ``{"kind": "taxonomy", "paths": {...}}``;
* :class:`IntervalHierarchy` — widths/anchors/bounds;
* :class:`MaskingHierarchy` — code length + optional domain.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .base import Hierarchy, HierarchyError
from .categorical import TaxonomyHierarchy
from .masking import MaskingHierarchy
from .numeric import Banding, IntervalHierarchy


def hierarchy_to_spec(hierarchy: Hierarchy) -> dict[str, Any]:
    """A JSON-compatible spec dict for a hierarchy."""
    if isinstance(hierarchy, TaxonomyHierarchy):
        return {
            "kind": "taxonomy",
            "name": hierarchy.name,
            "paths": {
                str(leaf): [str(token) for token in hierarchy.generalizations(leaf)[1:-1]]
                for leaf in hierarchy.leaves
            },
        }
    if isinstance(hierarchy, IntervalHierarchy):
        return {
            "kind": "interval",
            "name": hierarchy.name,
            "bounds": list(hierarchy.bounds),
            "bandings": [
                {"width": banding.width, "anchor": banding.anchor}
                for banding in hierarchy._bandings
            ],
        }
    if isinstance(hierarchy, MaskingHierarchy):
        spec: dict[str, Any] = {
            "kind": "masking",
            "name": hierarchy.name,
            "code_length": hierarchy._code_length,
        }
        if hierarchy.domain is not None:
            spec["domain"] = sorted(hierarchy.domain)
        return spec
    raise HierarchyError(
        f"cannot serialize hierarchy type {type(hierarchy).__name__}"
    )


def hierarchy_from_spec(spec: Mapping[str, Any]) -> Hierarchy:
    """Rebuild a hierarchy from a spec dict."""
    try:
        kind = spec["kind"]
        name = spec["name"]
    except KeyError as missing:
        raise HierarchyError(f"spec missing field {missing}") from None
    if kind == "taxonomy":
        return TaxonomyHierarchy(
            name, {leaf: tuple(path) for leaf, path in spec["paths"].items()}
        )
    if kind == "interval":
        bandings = [
            Banding(entry["width"], entry.get("anchor", 0.0))
            for entry in spec["bandings"]
        ]
        low, high = spec["bounds"]
        return IntervalHierarchy(name, bandings, (low, high))
    if kind == "masking":
        return MaskingHierarchy(
            name, spec["code_length"], domain=spec.get("domain")
        )
    raise HierarchyError(f"unknown hierarchy kind {kind!r}")


def save_hierarchies(
    hierarchies: Mapping[str, Hierarchy], path: str | Path
) -> None:
    """Write a hierarchy map as JSON (atomically)."""
    # Late import: this module loads while the anonymize engine's import
    # chain is mid-flight, and repro.utility's package init re-enters it.
    from ..utility.atomic import atomic_writer

    specs = {name: hierarchy_to_spec(h) for name, h in hierarchies.items()}
    with atomic_writer(path, "w", encoding="utf-8") as handle:
        json.dump(specs, handle, indent=2, sort_keys=True)


def load_hierarchies(path: str | Path) -> dict[str, Hierarchy]:
    """Read a hierarchy map written by :func:`save_hierarchies`."""
    with open(path) as handle:
        specs = json.load(handle)
    return {name: hierarchy_from_spec(spec) for name, spec in specs.items()}
