"""Interval hierarchies for numeric attributes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from .base import SUPPRESSED, Hierarchy, HierarchyError, Interval


@dataclass(frozen=True, order=True)
class Span:
    """A closed numeric range ``[low, high]`` released by local recoders.

    Mondrian-style partitioning summarizes a partition's attribute values by
    their closed min-max range, which unlike :class:`Interval` may be
    degenerate (``low == high`` is allowed and means a single value).
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise HierarchyError(f"invalid span [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """Length of the range."""
        return self.high - self.low

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, float)):
            return False
        return self.low <= value <= self.high

    def __str__(self) -> str:
        def fmt(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else str(x)

        return f"[{fmt(self.low)}-{fmt(self.high)}]"


@dataclass(frozen=True)
class Banding:
    """One interval level: fixed-width bands aligned to an anchor.

    A value ``v`` generalizes to the half-open band ``(low, low + width]``
    where ``low ≡ anchor (mod width)`` and ``low < v <= low + width``.  The
    paper's Table 2 age bands ``(25,35]`` come from width 10 anchored at 5;
    Table 3's ``(20,40]`` from width 20 anchored at 0.
    """

    width: float
    anchor: float = 0.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise HierarchyError(f"band width must be positive, got {self.width}")

    def band(self, value: float) -> Interval:
        """The half-open band containing ``value``."""
        offset = (value - self.anchor) % self.width
        low = value - offset if offset else value - self.width
        return Interval(low, low + self.width)


class IntervalHierarchy(Hierarchy):
    """Numeric hierarchy with progressively wider bands per level.

    Parameters
    ----------
    name:
        Attribute name.
    bandings:
        One :class:`Banding` per level ``1 .. height-1``, in increasing order
        of width.  Level 0 is the raw value, the top level is suppression.
    bounds:
        Inclusive ``(low, high)`` bounds of the attribute domain, used to
        normalize the loss metric.  Values outside the bounds are rejected.
    """

    def __init__(
        self,
        name: str,
        bandings: Sequence[Banding],
        bounds: tuple[float, float],
    ):
        super().__init__(name)
        low, high = bounds
        if high <= low:
            raise HierarchyError(f"invalid bounds ({low}, {high}) for {name!r}")
        widths = [banding.width for banding in bandings]
        if widths != sorted(widths):
            raise HierarchyError(
                f"bandings for {name!r} must be ordered by non-decreasing width"
            )
        self._bandings = tuple(bandings)
        self._bounds = (float(low), float(high))

    @property
    def height(self) -> int:
        """Number of banding levels plus the suppression top."""
        return len(self._bandings) + 1

    @property
    def bounds(self) -> tuple[float, float]:
        """Inclusive domain bounds used for loss normalization."""
        return self._bounds

    def _check_value(self, value: Any) -> float:
        if not isinstance(value, (int, float)):
            raise HierarchyError(
                f"hierarchy {self.name!r} expects numeric values, got {value!r}"
            )
        low, high = self._bounds
        if not low <= value <= high:
            raise HierarchyError(
                f"value {value!r} outside domain [{low}, {high}] of {self.name!r}"
            )
        return float(value)

    def generalize(self, value: Any, level: int) -> Hashable:
        self.check_level(level)
        numeric = self._check_value(value)
        if level == 0:
            return value
        if level == self.height:
            return SUPPRESSED
        return self._bandings[level - 1].band(numeric)

    def loss(self, value: Any, level: int) -> float:
        self.check_level(level)
        self._check_value(value)
        if level == 0:
            return 0.0
        if level == self.height:
            return 1.0
        low, high = self._bounds
        width = self._bandings[level - 1].width
        return min(1.0, width / (high - low))


    def released_loss(self, cell: Any) -> float:
        """Loss of a released cell: raw number, :class:`Interval`, or the
        suppression token."""
        if isinstance(cell, (Interval, Span)):
            low, high = self._bounds
            return min(1.0, cell.width / (high - low))
        if isinstance(cell, (int, float)):
            return 0.0
        return super().released_loss(cell)


def uniform_interval_hierarchy(
    name: str,
    bounds: tuple[float, float],
    base_width: float,
    levels: int,
    anchor: float = 0.0,
) -> IntervalHierarchy:
    """An interval hierarchy whose band width doubles at each level.

    Produces ``levels`` banding levels of widths ``base_width, 2*base_width,
    4*base_width, ...``, all sharing one anchor — the common shape used for
    age hierarchies in the k-anonymity literature.
    """
    bandings = [Banding(base_width * (2 ** i), anchor) for i in range(levels)]
    return IntervalHierarchy(name, bandings, bounds)
