"""Reporters: render diagnostics as text or JSON.

The text form is the grep-friendly ``path:line:col: RULE message`` layout
every editor understands; the JSON form is a stable machine-readable
document (``{"diagnostics": [...], "summary": {...}}``) for CI annotation
tooling.
"""

from __future__ import annotations

import json
from typing import Iterable

from .diagnostics import Diagnostic, Severity, sort_diagnostics

FORMATS = ("text", "json")


def summarize(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Finding counts keyed by severity value (always all three keys)."""
    counts = {severity.value: 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """One line per finding plus a trailing summary line."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diagnostic.format() for diagnostic in ordered]
    counts = summarize(ordered)
    lines.append(
        f"{len(ordered)} finding(s): {counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['info']} info"
    )
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """A JSON document with the findings and a severity summary."""
    ordered = sort_diagnostics(diagnostics)
    return json.dumps(
        {
            "diagnostics": [diagnostic.to_dict() for diagnostic in ordered],
            "summary": summarize(ordered),
        },
        indent=2,
        sort_keys=True,
    )


def render(diagnostics: Iterable[Diagnostic], format: str = "text") -> str:
    """Render findings in the requested ``format`` (``text`` or ``json``)."""
    if format == "text":
        return render_text(diagnostics)
    if format == "json":
        return render_json(diagnostics)
    raise ValueError(f"unknown report format {format!r}; choose from {FORMATS}")
