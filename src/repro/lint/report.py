"""Reporters: render diagnostics as text, JSON or SARIF.

The text form is the grep-friendly ``path:line:col: RULE message`` layout
every editor understands; the JSON form is a stable machine-readable
document (``{"diagnostics": [...], "summary": {...}}``) for CI annotation
tooling; the SARIF form is a SARIF 2.1.0 log that code-scanning UIs
(e.g. GitHub's security tab) ingest directly.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .diagnostics import Diagnostic, Severity, sort_diagnostics

FORMATS = ("text", "json", "sarif")


def summarize(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Finding counts keyed by severity value (always all three keys)."""
    counts = {severity.value: 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """One line per finding plus a trailing summary line."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diagnostic.format() for diagnostic in ordered]
    counts = summarize(ordered)
    lines.append(
        f"{len(ordered)} finding(s): {counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['info']} info"
    )
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """A JSON document with the findings and a severity summary."""
    ordered = sort_diagnostics(diagnostics)
    return json.dumps(
        {
            "diagnostics": [diagnostic.to_dict() for diagnostic in ordered],
            "summary": summarize(ordered),
        },
        indent=2,
        sort_keys=True,
    )


#: SARIF "level" per diagnostic severity (SARIF has no "info" level).
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _rule_metadata() -> dict[str, dict[str, str]]:
    """``{rule id: {title, hint}}`` across every layer's rule table.

    Imported late so the reporter does not force the analysis modules
    (and their transitive program-index machinery) at import time.
    """
    from .artifacts import ARTIFACT_RULES
    from .engine import registered_rules
    from .purity import PROGRAM_RULES
    from .resources import RESOURCE_RULES

    table: dict[str, dict[str, str]] = {
        "REP000": {"title": "file does not parse", "hint": ""},
        "REP006": {"title": "unknown rule id in suppression comment", "hint": ""},
    }
    for rule_id, rule_class in registered_rules().items():
        table[rule_id] = {"title": rule_class.title, "hint": rule_class.hint}
    for rule_id, meta in {**PROGRAM_RULES, **RESOURCE_RULES}.items():
        table[rule_id] = {"title": meta["title"], "hint": meta["hint"]}
    for rule_id, title in ARTIFACT_RULES.items():
        table[rule_id] = {"title": title, "hint": ""}
    return table


def render_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    """A SARIF 2.1.0 log of the findings.

    Deterministic: findings in canonical order, the rules array limited
    to (and sorted by) the ids that actually fired.  Paths are emitted
    as-is relative URIs; artifact findings without a file location get a
    message-only result.
    """
    ordered = sort_diagnostics(diagnostics)
    metadata = _rule_metadata()
    fired = sorted({diagnostic.rule for diagnostic in ordered})
    rule_index = {rule_id: position for position, rule_id in enumerate(fired)}
    rules = []
    for rule_id in fired:
        meta = metadata.get(rule_id, {"title": "", "hint": ""})
        descriptor: dict[str, Any] = {"id": rule_id}
        if meta["title"]:
            descriptor["shortDescription"] = {"text": meta["title"]}
        if meta["hint"]:
            descriptor["help"] = {"text": meta["hint"]}
        rules.append(descriptor)
    results = []
    for diagnostic in ordered:
        message = diagnostic.message
        if diagnostic.hint:
            message += f" (hint: {diagnostic.hint})"
        result: dict[str, Any] = {
            "ruleId": diagnostic.rule,
            "ruleIndex": rule_index[diagnostic.rule],
            "level": _SARIF_LEVELS[diagnostic.severity.value],
            "message": {"text": message},
        }
        if diagnostic.path:
            location: dict[str, Any] = {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.path.replace("\\", "/")
                    }
                }
            }
            if diagnostic.line:
                location["physicalLocation"]["region"] = {
                    "startLine": diagnostic.line,
                    "startColumn": diagnostic.column or 1,
                }
            result["locations"] = [location]
        results.append(result)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render(diagnostics: Iterable[Diagnostic], format: str = "text") -> str:
    """Render findings in the requested ``format`` (one of :data:`FORMATS`)."""
    if format == "text":
        return render_text(diagnostics)
    if format == "json":
        return render_json(diagnostics)
    if format == "sarif":
        return render_sarif(diagnostics)
    raise ValueError(f"unknown report format {format!r}; choose from {FORMATS}")
