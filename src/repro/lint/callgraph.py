"""Layer 4, part 1 — the whole-program call graph.

The parallel-safety pass (:mod:`repro.lint.purity`) needs to reason from a
*registered task operation* (``repro.runtime.task.register_op``) down
through everything the operation can reach: helper functions, methods
resolved through ``self``, ``Anonymizer`` subclasses dispatched through an
``.anonymize(...)`` call on an unknown receiver, and the string-keyed
dispatch tables (``SCALAR_MEASURES[metric](...)``) that make task specs
picklable in the first place.  This module builds that graph statically.

Resolution is *conservative*: a call that cannot be pinned to one
definition is linked to every plausible definition (all indexed methods of
the called name for attribute calls on unknown receivers; every value of a
dispatch table for subscript calls), and a call that resolves to nothing
in the indexed program (builtins, stdlib) produces no edge.  Effects are
therefore over-approximated, never silently missed, which is the right
polarity for certifying operations as safe to ship to remote workers.

The index is purely syntactic — nothing is imported or executed — so it
can run on any tree, including test fixtures that would not import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .engine import iter_python_files, parse_cached

#: Attribute names that register a task operation; matched on the final
#: component so ``task.register_op`` and a bare imported name both count.
_REGISTER_OP = "register_op"

#: The base class whose concrete subclasses are parallel entry points.
_ANONYMIZER_BASE = "Anonymizer"

#: Ubiquitous builtin-collection / str / Path method names for which
#: name-based dynamic dispatch is suppressed.  Without this, every
#: ``d.get(k)`` would link to every indexed ``get`` method in the program
#: and drown the effect analysis in spurious edges.  A project method that
#: shadows one of these names is still resolved through ``self`` or an
#: explicit ``Class.method`` reference — only the *unknown-receiver*
#: fallback is muted.
_UBIQUITOUS_METHODS = frozenset(
    {
        "add", "append", "as_posix", "capitalize", "casefold", "clear",
        "copy", "count", "decode", "difference", "discard", "encode",
        "endswith", "exists", "extend", "find", "format", "format_map",
        "fromkeys", "get", "index", "insert", "intersection", "isalpha",
        "isdigit", "issubset", "issuperset", "items", "join", "keys",
        "lower", "lstrip", "partition", "pop", "popitem", "remove",
        "replace", "reverse", "rfind", "rpartition", "rsplit", "rstrip",
        "setdefault", "sort", "split", "splitlines", "startswith", "strip",
        "symmetric_difference", "title", "union", "update", "upper",
        "values", "zfill",
    }
)


def _module_name(file_path: Path, root: Path) -> str:
    """Dotted module name of ``file_path`` relative to the scanned root.

    A leading ``src`` component is dropped so ``src/repro/runtime/task.py``
    indexes as ``repro.runtime.task``; ``__init__.py`` names the package.
    """
    base = root if root.is_dir() else root.parent
    try:
        parts = list(file_path.relative_to(base).parts)
    except ValueError:
        parts = [file_path.name]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else file_path.stem


@dataclass
class FunctionInfo:
    """One function, method, nested function or dispatch-table lambda."""

    qualname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    line: int
    class_name: str | None = None
    parent: str | None = None  # enclosing function qualname for nested defs

    @property
    def short(self) -> str:
        """Module-free display name (``Class.method`` or ``name``)."""
        prefix = f"{self.module}."
        return (
            self.qualname[len(prefix):]
            if self.qualname.startswith(prefix)
            else self.qualname
        )


@dataclass
class ClassInfo:
    """One indexed class definition."""

    qualname: str
    module: str
    name: str
    bases: tuple[str, ...]  # dotted base names as written, import-resolved
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname
    line: int = 0


@dataclass(frozen=True)
class OpRegistration:
    """One ``register_op`` registration resolved to its definition."""

    name: str
    function: str  # qualname of the registered callable
    inline_only: bool
    path: str
    line: int


@dataclass(frozen=True)
class CallSite:
    """Aggregated caller -> callee link."""

    line: int
    to_return: bool  # some call site's result may flow into the return value


@dataclass
class ModuleInfo:
    """Per-module symbol tables the resolver needs."""

    name: str
    path: str
    tree: ast.Module
    source: str
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    module_globals: set[str] = field(default_factory=set)
    # dispatch table name -> resolvable callee qualnames (functions, lambdas
    # indexed synthetically, or classes recorded as "class:<qualname>").
    dispatch_tables: dict[str, tuple[str, ...]] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)  # name = other_name


class ProgramIndex:
    """Whole-program symbol tables plus the resolved call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        self.ops: dict[str, OpRegistration] = {}
        self.edges: dict[str, dict[str, CallSite]] = {}

    # -- queries -------------------------------------------------------------

    def callees(self, qualname: str) -> Mapping[str, CallSite]:
        """Direct callees of one function (empty mapping if leaf/unknown)."""
        return self.edges.get(qualname, {})

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                callee for callee in self.callees(current) if callee not in seen
            )
        return seen

    def call_path(self, origin: str, target: str) -> list[str] | None:
        """A shortest call chain ``origin -> ... -> target``, or ``None``.

        BFS over the edge relation with deterministic (sorted) neighbor
        order, so diagnostics render the same chain on every run.
        """
        if origin == target:
            return [origin]
        previous: dict[str, str] = {}
        frontier = [origin]
        seen = {origin}
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for callee in sorted(self.callees(node)):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    previous[callee] = node
                    if callee == target:
                        chain = [callee]
                        while chain[-1] != origin:
                            chain.append(previous[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None

    def anonymizer_classes(self) -> list[ClassInfo]:
        """Concrete classes whose base chain reaches ``Anonymizer``."""
        found: list[ClassInfo] = []
        for info in self.classes.values():
            if self._subclasses_anonymizer(info, set()):
                found.append(info)
        return sorted(found, key=lambda c: c.qualname)

    def _subclasses_anonymizer(self, info: ClassInfo, seen: set[str]) -> bool:
        if info.qualname in seen:
            return False
        seen.add(info.qualname)
        for base in info.bases:
            tail = base.rsplit(".", 1)[-1]
            if tail == _ANONYMIZER_BASE:
                return True
            resolved = self._class_by_dotted(info.module, base)
            if resolved is not None and self._subclasses_anonymizer(resolved, seen):
                return True
        return False

    def _class_by_dotted(self, module: str, dotted: str) -> ClassInfo | None:
        """Resolve a dotted class reference as written in ``module``."""
        candidate = self.classes.get(dotted)
        if candidate is not None:
            return candidate
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        target = info.imports.get(head)
        if target is None:
            return self.classes.get(f"{module}.{dotted}")
        full = f"{target}.{rest}" if rest else target
        return self.classes.get(full)


# -- module indexing ---------------------------------------------------------

def _collect_imports(module: str, tree: ast.Module, is_package: bool) -> dict[str, str]:
    imports: dict[str, str] = {}
    package = module if is_package else module.rsplit(".", 1)[0]
    if "." not in module and not is_package:
        package = ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as x` binds the module.
                imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".") if package else []
                anchor = anchor[: len(anchor) - (node.level - 1)] if node.level > 1 else anchor
                base_parts = [p for p in anchor if p]
                if node.module:
                    base_parts.append(node.module)
                base = ".".join(base_parts)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _function_ref(node: ast.AST) -> str | None:
    """The referenced name of a function-valued expression, if simple."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}"
    return None


def _index_module(index: ProgramIndex, file_path: Path, root: Path) -> None:
    source, tree = parse_cached(file_path)
    if tree is None:
        return  # the engine reports REP000 for unparsable files
    module = _module_name(file_path, root)
    is_package = file_path.name == "__init__.py"
    info = ModuleInfo(
        name=module,
        path=str(file_path),
        tree=tree,
        source=source,
        imports=_collect_imports(module, tree, is_package),
    )
    index.modules[module] = info

    def add_function(
        node: ast.AST,
        qualname: str,
        class_name: str | None = None,
        parent: str | None = None,
    ) -> FunctionInfo:
        record = FunctionInfo(
            qualname=qualname,
            module=module,
            path=str(file_path),
            node=node,
            line=getattr(node, "lineno", 0),
            class_name=class_name,
            parent=parent,
        )
        index.functions[qualname] = record
        return record

    def index_nested(owner: ast.AST, owner_qualname: str) -> None:
        for child in ast.iter_child_nodes(owner):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{owner_qualname}.<locals>.{child.name}"
                add_function(child, nested, parent=owner_qualname)
                index_nested(child, nested)
            elif not isinstance(child, ast.ClassDef):
                index_nested(child, owner_qualname)

    for statement in tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module}.{statement.name}"
            info.functions[statement.name] = qualname
            add_function(statement, qualname)
            index_nested(statement, qualname)
        elif isinstance(statement, ast.ClassDef):
            class_qual = f"{module}.{statement.name}"
            bases = tuple(
                ref for ref in (_function_ref(base) for base in statement.bases) if ref
            )
            class_info = ClassInfo(
                qualname=class_qual,
                module=module,
                name=statement.name,
                bases=bases,
                line=statement.lineno,
            )
            for member in statement.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_qual = f"{class_qual}.{member.name}"
                    class_info.methods[member.name] = method_qual
                    add_function(member, method_qual, class_name=statement.name)
                    index_nested(member, method_qual)
                    index.methods_by_name.setdefault(member.name, []).append(
                        method_qual
                    )
            info.classes[statement.name] = class_info
            index.classes[class_qual] = class_info
        elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (
                statement.targets
                if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            value = statement.value
            for target in targets:
                if isinstance(target, ast.Name):
                    info.module_globals.add(target.id)
                    if isinstance(value, ast.Name):
                        info.aliases[target.id] = value.id
        elif isinstance(statement, ast.AugAssign) and isinstance(
            statement.target, ast.Name
        ):
            info.module_globals.add(statement.target.id)

    # Dispatch tables need the functions table complete, so second pass.
    for statement in tree.body:
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            continue
        value = statement.value
        targets = (
            statement.targets
            if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        if not isinstance(value, ast.Dict):
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            entries: list[str] = []
            for key, item in zip(value.keys, value.values):
                if isinstance(item, ast.Lambda):
                    key_repr = (
                        repr(key.value)
                        if isinstance(key, ast.Constant)
                        else f"@{item.lineno}"
                    )
                    qualname = f"{module}.{target.id}[{key_repr}]"
                    add_function(item, qualname)
                    entries.append(qualname)
                else:
                    ref = _function_ref(item)
                    if ref is None:
                        continue
                    resolved = _resolve_dotted(index, info, ref)
                    if resolved is not None:
                        entries.append(resolved)
            if entries:
                info.dispatch_tables[target.id] = tuple(entries)


def _resolve_dotted(
    index: ProgramIndex, module: ModuleInfo, dotted: str, _depth: int = 0
) -> str | None:
    """Resolve a dotted reference to a function/class qualname, if indexed.

    Returns a function qualname, or ``class:<qualname>`` for classes.
    Follows import aliases and simple module-level ``name = other`` aliases
    (bounded depth, so alias cycles terminate).
    """
    if _depth > 8:
        return None
    head, _, rest = dotted.partition(".")
    # Local module symbols first.
    if not rest:
        if head in module.functions:
            return module.functions[head]
        if head in module.classes:
            return f"class:{module.classes[head].qualname}"
        if head in module.aliases:
            return _resolve_dotted(index, module, module.aliases[head], _depth + 1)
    target = module.imports.get(head)
    if target is None:
        return None
    full = f"{target}.{rest}" if rest else target
    if full in index.functions:
        return full
    if full in index.classes:
        return f"class:{full}"
    # The import may name a module whose attribute is the symbol.
    owner, _, symbol = full.rpartition(".")
    owner_info = index.modules.get(owner)
    if owner_info is not None:
        if symbol in owner_info.functions:
            return owner_info.functions[symbol]
        if symbol in owner_info.classes:
            return f"class:{owner_info.classes[symbol].qualname}"
        if symbol in owner_info.aliases:
            return _resolve_dotted(
                index, owner_info, owner_info.aliases[symbol], _depth + 1
            )
    return None


# -- return-flow analysis ----------------------------------------------------

def returned_name_closure(node: ast.AST) -> set[str]:
    """Names whose values may flow into the function's return value.

    Seeded with every name in a ``return`` expression (a lambda's body is
    its return), then closed backwards over simple assignments: if ``x`` is
    in the closure and ``x = <expr>``, every name in ``<expr>`` joins.
    Purely local and syntactic — no aliasing, no attribute tracking — which
    is enough for the flows task operations actually use.
    """
    if isinstance(node, ast.Lambda):
        return_exprs: list[ast.AST] = [node.body]
        body: list[ast.stmt] = []
    else:
        body = list(getattr(node, "body", []))
        return_exprs = [
            child.value
            for child in _walk_same_function(node)
            if isinstance(child, ast.Return) and child.value is not None
        ]
    closure: set[str] = set()
    for expr in return_exprs:
        closure.update(
            child.id for child in ast.walk(expr) if isinstance(child, ast.Name)
        )
    assignments: list[tuple[set[str], ast.AST]] = []
    for child in _walk_same_function(node):
        if isinstance(child, ast.Assign):
            names = {
                target.id
                for target in child.targets
                if isinstance(target, ast.Name)
            }
            names.update(
                element.id
                for target in child.targets
                if isinstance(target, (ast.Tuple, ast.List))
                for element in target.elts
                if isinstance(element, ast.Name)
            )
            if names:
                assignments.append((names, child.value))
        elif isinstance(child, ast.AugAssign) and isinstance(child.target, ast.Name):
            assignments.append(({child.target.id}, child.value))
        elif isinstance(child, (ast.For, ast.AsyncFor)) and isinstance(
            child.target, ast.Name
        ):
            assignments.append(({child.target.id}, child.iter))
    changed = True
    while changed:
        changed = False
        for names, value in assignments:
            if names & closure:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and sub.id not in closure:
                        closure.add(sub.id)
                        changed = True
    return closure


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def return_flow_calls(node: ast.AST) -> set[int]:
    """Ids (``id()``) of Call nodes whose result may reach the return value."""
    closure = returned_name_closure(node)
    flows: set[int] = set()
    if isinstance(node, ast.Lambda):
        statements: list[ast.AST] = [node.body]
        for child in ast.walk(node.body):
            if isinstance(child, ast.Call):
                flows.add(id(child))
        return flows
    for child in _walk_same_function(node):
        value: ast.AST | None = None
        if isinstance(child, ast.Return) and child.value is not None:
            value = child.value
        elif isinstance(child, ast.Assign):
            targets = {
                t.id for t in child.targets if isinstance(t, ast.Name)
            }
            targets.update(
                e.id
                for t in child.targets
                if isinstance(t, (ast.Tuple, ast.List))
                for e in t.elts
                if isinstance(e, ast.Name)
            )
            if targets & closure:
                value = child.value
        elif isinstance(child, ast.AugAssign) and isinstance(child.target, ast.Name):
            if child.target.id in closure:
                value = child.value
        if value is None:
            continue
        for sub in ast.walk(value):
            if isinstance(sub, ast.Call):
                flows.add(id(sub))
    return flows


# -- call resolution ---------------------------------------------------------

class _CallResolver:
    """Resolves the calls of one function body to indexed definitions."""

    def __init__(self, index: ProgramIndex, module: ModuleInfo, fn: FunctionInfo):
        self.index = index
        self.module = module
        self.fn = fn
        # name -> candidate callee qualnames bound by local assignment
        self.local_bindings: dict[str, tuple[str, ...]] = {}
        self._collect_local_bindings()

    def _collect_local_bindings(self) -> None:
        for child in _walk_same_function(self.fn.node):
            if not isinstance(child, ast.Assign):
                continue
            names = [t.id for t in child.targets if isinstance(t, ast.Name)]
            if not names:
                continue
            candidates = self._value_candidates(child.value)
            if candidates:
                for name in names:
                    self.local_bindings[name] = tuple(candidates)

    def _value_candidates(self, value: ast.AST) -> list[str]:
        """Function qualnames an expression may evaluate to."""
        ref = _function_ref(value)
        if ref is not None:
            resolved = _resolve_dotted(self.index, self.module, ref)
            if resolved is not None:
                return [resolved]
        if isinstance(value, ast.Subscript):
            table = self._dispatch_table(value.value)
            if table is not None:
                return list(table)
        return []

    def _dispatch_table(self, node: ast.AST) -> tuple[str, ...] | None:
        """Dispatch-table entries for ``NAME[...]`` / ``mod.NAME[...]``."""
        if isinstance(node, ast.Name):
            table = self.module.dispatch_tables.get(node.id)
            if table is not None:
                return table
            target = self.module.imports.get(node.id)
            if target is not None:
                owner, _, symbol = target.rpartition(".")
                owner_info = self.index.modules.get(owner)
                if owner_info is not None:
                    return owner_info.dispatch_tables.get(symbol)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            target = self.module.imports.get(node.value.id)
            owner_info = self.index.modules.get(target) if target else None
            if owner_info is not None:
                return owner_info.dispatch_tables.get(node.attr)
        return None

    def resolve_call(self, call: ast.Call) -> list[str]:
        """Candidate callee qualnames for one call (may be empty)."""
        func = call.func
        out: list[str] = []
        if isinstance(func, ast.Name):
            out.extend(self._resolve_name_call(func.id))
        elif isinstance(func, ast.Attribute):
            out.extend(self._resolve_attribute_call(func))
        elif isinstance(func, ast.Subscript):
            table = self._dispatch_table(func.value)
            if table:
                out.extend(table)
        resolved: list[str] = []
        for candidate in out:
            materialized = self._materialize(candidate)
            if materialized is not None and materialized not in resolved:
                resolved.append(materialized)
        return resolved

    def _materialize(self, candidate: str) -> str | None:
        """Map ``class:X`` to its constructor; pass functions through."""
        if candidate.startswith("class:"):
            qualname = candidate[len("class:"):]
            info = self.index.classes.get(qualname)
            if info is None:
                return None
            init = info.methods.get("__init__")
            return init
        return candidate if candidate in self.index.functions else None

    def _resolve_name_call(self, name: str) -> list[str]:
        # Nested function defined in this (or an enclosing) function body.
        scope: str | None = self.fn.qualname
        while scope is not None:
            nested = f"{scope}.<locals>.{name}"
            if nested in self.index.functions:
                return [nested]
            scope = self.index.functions[scope].parent if scope in self.index.functions else None
        if name in self.local_bindings:
            return list(self.local_bindings[name])
        resolved = _resolve_dotted(self.index, self.module, name)
        return [resolved] if resolved else []

    def _resolve_attribute_call(self, func: ast.Attribute) -> list[str]:
        owner = func.value
        attr = func.attr
        if isinstance(owner, ast.Name):
            # Imported module / class attribute: mod.fn(...), Class.method(...)
            resolved = _resolve_dotted(self.index, self.module, f"{owner.id}.{attr}")
            if resolved is not None:
                return [resolved]
            if owner.id in {"self", "cls"} and self.fn.class_name is not None:
                found = self._resolve_self_method(attr)
                if found is not None:
                    return [found]
        # Dynamic dispatch: every indexed method of that name is a
        # candidate — except dunders and builtin-collection names, whose
        # unknown receivers are overwhelmingly dicts/lists/strs.
        if attr.startswith("__") or attr in _UBIQUITOUS_METHODS:
            return []
        return list(self.index.methods_by_name.get(attr, ()))

    def _resolve_self_method(self, attr: str) -> str | None:
        class_info = self.module.classes.get(self.fn.class_name or "")
        if class_info is None:
            # method of a class defined in another scanned module? fall back
            class_info = self.index.classes.get(
                f"{self.fn.module}.{self.fn.class_name}"
            )
        seen: set[str] = set()
        while class_info is not None and class_info.qualname not in seen:
            seen.add(class_info.qualname)
            if attr in class_info.methods:
                return class_info.methods[attr]
            parent: ClassInfo | None = None
            for base in class_info.bases:
                parent = self.index._class_by_dotted(class_info.module, base)
                if parent is not None:
                    break
            class_info = parent
        return None


# -- op registration ---------------------------------------------------------

def _op_from_decorator(
    index: ProgramIndex,
    module: ModuleInfo,
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
) -> OpRegistration | None:
    for decorator in fn_node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if not _is_register_op(index, module, decorator.func):
            continue
        name = _constant_str(decorator.args[0]) if decorator.args else None
        if name is None:
            continue
        inline_only = any(
            keyword.arg == "inline_only"
            and isinstance(keyword.value, ast.Constant)
            and bool(keyword.value.value)
            for keyword in decorator.keywords
        )
        return OpRegistration(
            name=name,
            function=qualname,
            inline_only=inline_only,
            path=module.path,
            line=decorator.lineno,
        )
    return None


def _is_register_op(index: ProgramIndex, module: ModuleInfo, func: ast.AST) -> bool:
    """Whether an expression names ``register_op`` (directly or aliased)."""
    if isinstance(func, ast.Attribute):
        return func.attr == _REGISTER_OP
    if isinstance(func, ast.Name):
        if func.id == _REGISTER_OP:
            return True
        seen: set[str] = set()
        name = func.id
        while name in module.aliases and name not in seen:
            seen.add(name)
            name = module.aliases[name]
            if name == _REGISTER_OP:
                return True
        target = module.imports.get(name)
        return bool(target and target.rsplit(".", 1)[-1] == _REGISTER_OP)
    return False


def _constant_str(node: ast.AST) -> str | None:
    return node.value if isinstance(node, ast.Constant) and isinstance(node.value, str) else None


def _collect_ops(index: ProgramIndex) -> None:
    for module in index.modules.values():
        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = module.functions[statement.name]
                registration = _op_from_decorator(index, module, statement, qualname)
                if registration is not None:
                    index.ops[registration.name] = registration
                continue
            # Call-form registration: register_op("x")(fn) — possibly
            # through a wrapper call, possibly assigned.
            value: ast.AST | None = None
            if isinstance(statement, ast.Expr):
                value = statement.value
            elif isinstance(statement, ast.Assign):
                value = statement.value
            if not isinstance(value, ast.Call):
                continue
            inner = value.func
            if not isinstance(inner, ast.Call):
                continue
            if not _is_register_op(index, module, inner.func):
                continue
            name = _constant_str(inner.args[0]) if inner.args else None
            if name is None or not value.args:
                continue
            target_qual = _registered_target(index, module, value.args[0])
            if target_qual is None:
                continue
            inline_only = any(
                keyword.arg == "inline_only"
                and isinstance(keyword.value, ast.Constant)
                and bool(keyword.value.value)
                for keyword in inner.keywords
            )
            index.ops[name] = OpRegistration(
                name=name,
                function=target_qual,
                inline_only=inline_only,
                path=module.path,
                line=value.lineno,
            )


def _registered_target(
    index: ProgramIndex, module: ModuleInfo, node: ast.AST
) -> str | None:
    """The function a call-form registration registers.

    Sees through one wrapper call (``register_op("x")(traced(fn))``) by
    taking the first resolvable Name argument.
    """
    ref = _function_ref(node)
    if ref is not None:
        resolved = _resolve_dotted(index, module, ref)
        if resolved and not resolved.startswith("class:"):
            return resolved
    if isinstance(node, ast.Call):
        for argument in node.args:
            inner = _registered_target(index, module, argument)
            if inner is not None:
                return inner
    return None


# -- graph assembly ----------------------------------------------------------

def build_program_index(paths: Sequence[str | Path]) -> ProgramIndex:
    """Index every Python file under ``paths`` and resolve the call graph."""
    index = ProgramIndex()
    for entry in paths:
        root = Path(entry)
        for file_path in iter_python_files([root]):
            _index_module(index, file_path, root)
    for methods in index.methods_by_name.values():
        methods.sort()
    _collect_ops(index)
    for fn in list(index.functions.values()):
        module = index.modules.get(fn.module)
        if module is None:
            continue
        resolver = _CallResolver(index, module, fn)
        flows = return_flow_calls(fn.node)
        for call in _calls_of(fn.node):
            for callee in resolver.resolve_call(call):
                existing = index.edges.setdefault(fn.qualname, {}).get(callee)
                to_return = id(call) in flows
                if existing is None:
                    index.edges[fn.qualname][callee] = CallSite(
                        line=call.lineno, to_return=to_return
                    )
                elif to_return and not existing.to_return:
                    index.edges[fn.qualname][callee] = CallSite(
                        line=existing.line, to_return=True
                    )
    return index


def _calls_of(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes of one function body, excluding nested def/class scopes.

    Lambdas defined inline are *included*: they execute with the function's
    bindings and typically run within the same task.
    """
    if isinstance(node, ast.Lambda):
        for child in ast.walk(node.body):
            if isinstance(child, ast.Call):
                yield child
        return
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))
