"""Layer 3 policy: the anonymizer-boundary taint rules (``REP101``–``REP104``).

The paper's comparison framework is only meaningful if the released table
is the *sole* channel through which tuple data leaves the system — a raw
quasi-identifier or sensitive value escaping through an exception
message, a log line, an unsanctioned file write or a provenance sidecar
breaks the privacy guarantee no matter what the property vectors say.
This module instantiates the generic dataflow engine of
:mod:`repro.lint.dataflow` with the repo's boundary policy:

**Sources** (introduce taint)
    ``Dataset`` cell/column reads — ``.column()``, ``.value()`` (on a
    dataset-shaped receiver), ``.distinct()``,
    ``.quasi_identifier_tuple[s]()``, the ``.rows`` attribute, iteration
    and indexing of dataset-named objects (tag ``qi-cell``) — and raw
    rows produced by ``csv.reader`` (tag ``raw-io``).  Reads from a
    clearly *released* table (``release``/``released`` receivers) are
    sanctioned output and not sources.

**Sanitizers** (kill taint)
    The sanctioned recoding surface: ``recode``/``recode_node``,
    hierarchy ``generalize``/``generalizations``/``generalize_cell``,
    ``mask``, cut ``map_value``/``loss``/``released_loss``, ``suppress``,
    ``anonymize`` and the diagnostics helper
    :func:`repro.lint.redact.redact_value`.

**Sinks** (must never receive taint)
    Exception constructors (``REP101``), ``print``/logging/warnings
    (``REP102``) and file/CSV/JSON writers including provenance
    serialization (``REP103``).

``REP104`` flags the interprocedural variant: a module-local function
whose *return value* carries source taint feeding a sink in the same
module.  Both directions of call summaries are computed — taint entering
a callee through its parameters is propagated context-insensitively onto
the callee's own sinks, which is how the analyzer sees through helpers
like a CSV cell parser that interpolates its argument into an error.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Mapping

from . import dataflow
from .dataflow import EMPTY, Env, Taint, TaintPolicy
from .diagnostics import Diagnostic, Severity
from .engine import LintContext, Rule, register

#: Taint tag: a raw quasi-identifier / sensitive cell (or row of them).
TAG_CELL = "qi-cell"
#: Taint tag: raw bytes/rows read from an input file.
TAG_IO = "raw-io"
#: Marker: taint originated inside a module-local callee and flowed out
#: through its return value (drives ``REP104``).
MARK_RET = "via-return"
#: Marker: taint entered the function through a parameter some local call
#: site fed with tainted data.
MARK_CALL = "via-call"

#: The tags that denote actual raw data (markers excluded).
REAL_TAGS = frozenset({TAG_CELL, TAG_IO})
_MARKERS = frozenset({MARK_RET, MARK_CALL})
_PARAM_PREFIX = "param:"

#: Methods that read raw cells regardless of receiver spelling.
_SOURCE_METHODS = frozenset(
    {"column", "distinct", "quasi_identifier_tuple", "quasi_identifier_tuples"}
)
#: Receiver names that denote the raw microdata table.
_DATASET_NAMES = frozenset(
    {
        "dataset",
        "data",
        "table",
        "table1",
        "microdata",
        "adult",
        "original",
        "raw",
        "workload",
    }
)
_DATASET_SUFFIXES = ("_dataset", "_table", "_data")
#: Attribute names that denote the raw table when read off another object.
_DATASET_ATTRS = frozenset({"dataset", "original", "microdata", "_dataset"})
#: Receivers that denote the *released* (already recoded) table.
_RELEASED_NAMES = frozenset({"release", "released"})

#: The sanctioned recoding surface: calls that launder raw values into
#: releasable tokens (plus the diagnostics redaction helper).
_SANITIZER_NAMES = frozenset(
    {
        "generalize",
        "generalizations",
        "generalize_cell",
        "mask",
        "recode",
        "recode_node",
        "map_value",
        "suppress",
        "anonymize",
        "redact",
        "redact_value",
        "loss",
        "released_loss",
    }
)

#: Builtins whose results carry no cell content.
_SAFE_CALLS = frozenset(
    {"len", "isinstance", "issubclass", "hasattr", "callable", "bool", "type", "id", "range"}
)

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)
_LOG_RECEIVERS = frozenset(
    {"logger", "logging", "log", "_logger", "_log", "warnings"}
)
_WRITE_METHODS = frozenset({"write", "writelines", "writerow", "writerows"})
_DUMP_RECEIVERS = frozenset({"json", "pickle", "marshal", "yaml", "toml"})
_SAVE_RECEIVERS = frozenset({"np", "numpy"})

_EXCEPTION_NAMES = frozenset(
    {"Exception", "BaseException", "StopIteration", "SystemExit", "KeyboardInterrupt"}
)
_EXCEPTION_PATTERN = re.compile(r"^[A-Z]\w*(Error|Exception|Warning)$")

_SINK_LABELS = {
    "exception": "an exception message",
    "log": "a print/log call",
    "write": "a file/CSV write",
}

_TAG_LABELS = {
    TAG_CELL: "raw QI/sensitive cell",
    TAG_IO: "raw input row",
}


def _is_exception_name(name: str) -> bool:
    return name in _EXCEPTION_NAMES or bool(_EXCEPTION_PATTERN.match(name))


def _receiver_name(func: ast.Attribute) -> str | None:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _datasetish(node: ast.expr) -> bool:
    """Whether an expression names the raw microdata table."""
    if isinstance(node, ast.Name):
        name = node.id
        if name in _RELEASED_NAMES:
            return False
        return name in _DATASET_NAMES or name.endswith(_DATASET_SUFFIXES)
    if isinstance(node, ast.Attribute):
        return node.attr in _DATASET_ATTRS
    return False


def _releasedish(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _RELEASED_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _RELEASED_NAMES
    return False


@dataclass(frozen=True)
class FunctionInfo:
    """One function definition the module analysis tracks."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    params: tuple[str, ...]


def _collect_functions(tree: ast.Module) -> list[FunctionInfo]:
    """Every function/method in the module, with dotted qualnames."""
    functions: list[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                arguments = child.args
                params = tuple(
                    a.arg
                    for a in (
                        list(arguments.posonlyargs)
                        + list(arguments.args)
                        + list(arguments.kwonlyargs)
                    )
                )
                functions.append(FunctionInfo(child, qualname, params))
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return functions


class PrivacyTaintPolicy(TaintPolicy):
    """The anonymizer-boundary policy over one module's call summaries."""

    def __init__(
        self,
        index: Mapping[str, list[FunctionInfo]],
        summaries: Mapping[str, Taint],
    ):
        self.index = index
        self.summaries = summaries

    # -- sources ------------------------------------------------------------

    def source_call(self, node: ast.Call) -> Taint | None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "reader" and isinstance(func.value, ast.Name) and (
            func.value.id == "csv"
        ):
            return frozenset({TAG_IO})
        if _releasedish(func.value):
            return None
        if func.attr in _SOURCE_METHODS:
            return frozenset({TAG_CELL})
        if func.attr == "value" and _datasetish(func.value):
            return frozenset({TAG_CELL})
        return None

    def source_attribute(self, node: ast.Attribute) -> Taint | None:
        if node.attr in ("rows", "_rows") and _datasetish(node.value):
            return frozenset({TAG_CELL})
        return None

    def iteration_taint(self, node: ast.expr, env: Env) -> Taint:
        if _datasetish(node):
            return frozenset({TAG_CELL})
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
            node.func.id in ("enumerate", "sorted", "reversed", "iter", "list", "tuple")
        ):
            tags = EMPTY
            for arg in node.args:
                tags |= self.iteration_taint(arg, env)
            return tags
        return EMPTY

    # -- sanitizers / sinks -------------------------------------------------

    def is_sanitizer(self, node: ast.Call) -> bool:
        name = dataflow._call_name(node)
        return name in _SANITIZER_NAMES

    def is_safe_call(self, node: ast.Call) -> bool:
        return isinstance(node.func, ast.Name) and node.func.id in _SAFE_CALLS

    def sink_kind(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                return "log"
            if _is_exception_name(func.id):
                return "exception"
            return None
        if isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = _receiver_name(func)
            if _is_exception_name(attr):
                return "exception"
            if attr in _WRITE_METHODS:
                return "write"
            if attr == "dump" and receiver in _DUMP_RECEIVERS:
                return "write"
            if attr in ("save", "savetxt") and receiver in _SAVE_RECEIVERS:
                return "write"
            if attr in _LOG_METHODS and receiver in _LOG_RECEIVERS:
                return "log"
        return None

    # -- module-local call summaries ----------------------------------------

    def _candidates(self, node: ast.Call) -> list[FunctionInfo]:
        name = dataflow._call_name(node)
        if name is None:
            return []
        return self.index.get(name, [])

    def local_params(self, node: ast.Call) -> list[str] | None:
        candidates = self._candidates(node)
        if not candidates:
            return None
        return list(candidates[0].params)

    def local_call(
        self, node: ast.Call, arg_taints: Mapping[str, Taint]
    ) -> Taint | None:
        candidates = self._candidates(node)
        if not candidates:
            return None
        result: Taint = EMPTY
        for info in candidates:
            summary = self.summaries.get(info.qualname, EMPTY)
            for tag in summary:
                if tag.startswith(_PARAM_PREFIX):
                    # Pass-through: the caller's own taint in, so no
                    # via-return marker — it did not originate in the callee.
                    result |= arg_taints.get(tag[len(_PARAM_PREFIX):], EMPTY)
                elif tag in REAL_TAGS:
                    result |= frozenset({tag, MARK_RET})
                elif tag in _MARKERS:
                    result |= frozenset({tag})
        return result


@dataclass(frozen=True)
class TaintFinding:
    """One boundary violation located at a sink node."""

    rule: str
    node: ast.AST
    message: str


@dataclass
class ModuleTaintReport:
    """All Layer-3 findings for one module."""

    findings: list[TaintFinding] = field(default_factory=list)


def _seed_env(info: FunctionInfo, extra: Mapping[str, Taint]) -> dict[str, Taint]:
    env: dict[str, Taint] = {}
    for param, tags in extra.items():
        if tags:
            env[param] = tags
    return env


def _symbolic_seed(info: FunctionInfo) -> dict[str, Taint]:
    return {
        param: frozenset({f"{_PARAM_PREFIX}{param}"})
        for param in info.params
        if param not in ("self", "cls")
    }


def analyze_module_taint(tree: ast.Module) -> ModuleTaintReport:
    """Run the two-pass taint analysis over one parsed module.

    Pass 1 computes per-function summaries (which parameters and direct
    sources reach the return value) to a fixpoint, with parameters held
    symbolic.  Pass 2 re-runs every function with concrete taints, seeding
    callee parameters from tainted arguments observed at module-local call
    sites until no new seeds appear, then classifies every sink hit.
    """
    functions = _collect_functions(tree)
    index: dict[str, list[FunctionInfo]] = {}
    for info in functions:
        index.setdefault(info.node.name, []).append(info)

    # Pass 1 — symbolic summaries to a fixpoint.
    summaries: dict[str, Taint] = {info.qualname: EMPTY for info in functions}
    for _round in range(len(functions) + 2):
        changed = False
        policy = PrivacyTaintPolicy(index, summaries)
        for info in functions:
            result = dataflow.analyze_function(
                info.node.body, policy, _symbolic_seed(info)
            )
            merged = summaries[info.qualname] | result.return_taint
            if merged != summaries[info.qualname]:
                summaries[info.qualname] = merged
                changed = True
        if not changed:
            break

    # Pass 2 — concrete runs with call-site parameter seeding.
    policy = PrivacyTaintPolicy(index, summaries)
    seeds: dict[str, dict[str, Taint]] = {info.qualname: {} for info in functions}
    callers: dict[str, set[str]] = {info.qualname: set() for info in functions}
    results: dict[str, dataflow.FunctionDataflow] = {}
    pending = deque(functions)
    queued = {info.qualname for info in functions}
    by_qualname = {info.qualname: info for info in functions}

    rounds = 0
    while pending and rounds < 10 * max(1, len(functions)):
        rounds += 1
        info = pending.popleft()
        queued.discard(info.qualname)
        result = dataflow.analyze_function(
            info.node.body, policy, _seed_env(info, seeds[info.qualname])
        )
        results[info.qualname] = result
        for record in result.call_args:
            real = record.tags & REAL_TAGS
            if not real:
                continue
            propagated = real | frozenset({MARK_CALL}) | (record.tags & _MARKERS)
            for callee in index.get(record.callee, []):
                if record.param not in callee.params:
                    continue
                current = seeds[callee.qualname].get(record.param, EMPTY)
                if propagated <= current:
                    continue
                seeds[callee.qualname][record.param] = current | propagated
                callers[callee.qualname].add(info.qualname)
                if callee.qualname not in queued:
                    pending.append(callee)
                    queued.add(callee.qualname)

    report = ModuleTaintReport()
    for info in functions:
        result = results.get(info.qualname)
        if result is None:
            continue
        for hit in result.sink_hits:
            real = hit.tags & REAL_TAGS
            if not real:
                continue
            report.findings.append(
                _classify(info, hit, real, sorted(callers[info.qualname]))
            )
    report.findings.sort(
        key=lambda finding: (
            getattr(finding.node, "lineno", 0),
            getattr(finding.node, "col_offset", 0),
            finding.rule,
        )
    )
    return report


def _classify(
    info: FunctionInfo,
    hit: dataflow.SinkHit,
    real: Taint,
    caller_names: list[str],
) -> TaintFinding:
    source_label = " / ".join(_TAG_LABELS[tag] for tag in sorted(real))
    sink_label = _SINK_LABELS.get(hit.kind, hit.kind)
    suffix = ""
    if MARK_CALL in hit.tags and caller_names:
        suffix = (
            "; tainted argument received from module-local caller(s): "
            + ", ".join(caller_names)
        )
    if MARK_RET in hit.tags:
        rule = "REP104"
        message = (
            f"value returned by a module-local call carries {source_label} "
            f"taint into {sink_label} in {info.qualname}(){suffix}"
        )
    else:
        rule = {
            "exception": "REP101",
            "log": "REP102",
            "write": "REP103",
        }[hit.kind]
        message = (
            f"{source_label} can reach {sink_label} in {info.qualname}()"
            f"{suffix}"
        )
    return TaintFinding(rule, hit.node, message)


@lru_cache(maxsize=8)
def _cached_module_findings(tree: ast.Module) -> tuple[TaintFinding, ...]:
    return tuple(analyze_module_taint(tree).findings)


class _BoundaryRule(Rule):
    """Shared plumbing: each REP1xx rule filters the cached module report."""

    severity = Severity.ERROR

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Yield this rule's share of the module taint report."""
        for finding in _cached_module_findings(context.tree):
            if finding.rule == self.id:
                yield self.diagnostic(context, finding.node, finding.message)


@register
class TaintedExceptionRule(_BoundaryRule):
    """``REP101`` — raw cell data interpolated into an exception.

    Exception messages routinely end up in logs, CI output and bug
    reports; a raw quasi-identifier or sensitive value in one escapes the
    anonymizer boundary entirely.  Route values through
    :func:`repro.lint.redact.redact_value` instead.
    """

    id = "REP101"
    title = "raw QI/sensitive value reaches an exception message"
    hint = "wrap the value in repro.lint.redact.redact_value()"


@register
class TaintedLogRule(_BoundaryRule):
    """``REP102`` — raw cell data reaches ``print``/logging/warnings.

    Logs are the classic anonymization side channel: they outlive the
    process, ship to aggregators and are rarely access-controlled like
    the microdata itself.
    """

    id = "REP102"
    title = "raw QI/sensitive value reaches a print/log call"
    hint = "log redact_value(...) or aggregate statistics instead"


@register
class UnsanitizedWriteRule(_BoundaryRule):
    """``REP103`` — raw cell data written without passing a sanitizer.

    Every persisted byte must go through the sanctioned recoding surface
    (``recode``, hierarchy ``generalize``/``mask``, suppression); a writer
    fed raw cells creates a shadow release.  The one sanctioned raw-data
    writer (the release serializer itself) carries an audited inline
    ``# lint: disable=REP103`` waiver.
    """

    id = "REP103"
    title = "raw QI/sensitive value written to a file/CSV/JSON sink"
    hint = "recode or redact before writing, or add an audited waiver"


@register
class TaintThroughReturnRule(_BoundaryRule):
    """``REP104`` — taint flows through a local function's return into a sink.

    The intraprocedural rules cannot see a helper that *returns* raw data
    which the caller then leaks; the module call summaries can.  Flagged
    at the sink, with the originating callee implied by the dataflow.
    """

    id = "REP104"
    title = "raw value returned by a local helper reaches a sink"
    hint = "sanitize inside the helper or redact at the sink"
