"""Layer 2 — the AST rule engine.

A self-contained visitor framework plus rule registry in the style of
``flake8`` plugins: each rule is a class with a stable id, a severity, a
fix hint and a ``check(context)`` generator; the engine parses each file
once and hands every registered (and path-applicable) rule the shared
:class:`LintContext`.  Rules are registered with the :func:`register`
decorator; :func:`lint_paths` walks directories, parses and dispatches.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may inspect about one source file."""

    path: str
    tree: ast.Module
    source: str

    @property
    def parts(self) -> tuple[str, ...]:
        """Path components, for scope filters (always POSIX-style)."""
        return Path(self.path).as_posix().split("/")


class Rule(abc.ABC):
    """One codebase lint rule.

    Subclasses declare the class attributes and implement :meth:`check`;
    :meth:`diagnostic` builds a correctly-located record for a node.
    """

    #: Stable rule identifier, e.g. ``"REP001"``.
    id: str = "REP000"
    #: One-line description shown in ``--help`` and the docs.
    title: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: Short fix suggestion attached to every finding.
    hint: str = ""
    #: Path components that must be present for the rule to run (any match).
    require_parts: tuple[str, ...] = ()
    #: Path suffixes exempt from the rule.
    exempt_suffixes: tuple[str, ...] = ()

    def applies_to(self, context: LintContext) -> bool:
        """Whether the rule runs on this file (path scoping)."""
        posix = Path(context.path).as_posix()
        if any(posix.endswith(suffix) for suffix in self.exempt_suffixes):
            return False
        if self.require_parts:
            return any(part in context.parts for part in self.require_parts)
        return True

    @abc.abstractmethod
    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Yield findings for one parsed file."""

    def diagnostic(
        self,
        context: LintContext,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> Diagnostic:
        """A finding anchored at ``node``'s source location."""
        return Diagnostic(
            rule=self.id,
            message=message,
            severity=severity or self.severity,
            path=context.path,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", -1) + 1,
            hint=self.hint,
        )


class RuleVisitor(ast.NodeVisitor):
    """Base visitor for rules that prefer dispatch over manual walks.

    Collects findings in :attr:`findings`; :meth:`run` visits the tree and
    returns them.  Subclasses implement ``visit_*`` methods and call
    :meth:`report`.
    """

    def __init__(self, rule: Rule, context: LintContext):
        self.rule = rule
        self.context = context
        self.findings: list[Diagnostic] = []

    def report(
        self, node: ast.AST, message: str, severity: Severity | None = None
    ) -> None:
        """Record one finding at ``node``."""
        self.findings.append(
            self.rule.diagnostic(self.context, node, message, severity)
        )

    def run(self, tree: ast.Module) -> list[Diagnostic]:
        """Visit the whole module and return the collected findings."""
        self.visit(tree)
        return self.findings


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[Rule]]:
    """The rule registry, keyed by rule id (a copy; mutation-safe)."""
    return dict(sorted(_REGISTRY.items()))


def _instantiate(select: Sequence[str] | None) -> list[Rule]:
    registry = registered_rules()
    if select is None:
        return [rule_class() for rule_class in registry.values()]
    unknown = [rule_id for rule_id in select if rule_id not in registry]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {unknown}; registered: {sorted(registry)}"
        )
    return [registry[rule_id]() for rule_id in select]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Run the (selected) registered rules over one source string.

    Syntax errors are reported as a ``REP000`` error diagnostic rather than
    raised, so one unparsable file cannot abort a whole-tree run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="REP000",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 0,
                column=exc.offset or 0,
            )
        ]
    context = LintContext(path=path, tree=tree, source=source)
    findings: list[Diagnostic] = []
    for rule in _instantiate(select):
        if rule.applies_to(context):
            findings.extend(rule.check(context))
    return findings


def lint_file(
    path: str | Path, select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the rules over one file on disk."""
    file_path = Path(path)
    return lint_source(
        file_path.read_text(encoding="utf-8"),
        path=str(file_path),
        select=select,
    )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """All ``.py`` files under the given files/directories, sorted.

    Hidden directories and ``__pycache__`` are skipped.  A path that does
    not exist raises ``ValueError`` — silently linting nothing would let a
    typo'd CI invocation pass.
    """
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            raise ValueError(f"lint path does not exist: {root}")
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            parts = candidate.parts
            if any(part.startswith(".") or part == "__pycache__" for part in parts[:-1]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the rules over every Python file under ``paths``."""
    _instantiate(select)  # validate the selection even when no files match
    findings: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, select=select))
    return findings
