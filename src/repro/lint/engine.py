"""Layer 2 — the AST rule engine.

A self-contained visitor framework plus rule registry in the style of
``flake8`` plugins: each rule is a class with a stable id, a severity, a
fix hint and a ``check(context)`` generator; the engine parses each file
once and hands every registered (and path-applicable) rule the shared
:class:`LintContext`.  Rules are registered with the :func:`register`
decorator; :func:`lint_paths` walks directories, parses and dispatches.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may inspect about one source file."""

    path: str
    tree: ast.Module
    source: str

    @property
    def parts(self) -> tuple[str, ...]:
        """Path components, for scope filters (always POSIX-style)."""
        return Path(self.path).as_posix().split("/")


class Rule(abc.ABC):
    """One codebase lint rule.

    Subclasses declare the class attributes and implement :meth:`check`;
    :meth:`diagnostic` builds a correctly-located record for a node.
    """

    #: Stable rule identifier, e.g. ``"REP001"``.
    id: str = "REP000"
    #: One-line description shown in ``--help`` and the docs.
    title: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: Short fix suggestion attached to every finding.
    hint: str = ""
    #: Path components that must be present for the rule to run (any match).
    require_parts: tuple[str, ...] = ()
    #: Path suffixes exempt from the rule.
    exempt_suffixes: tuple[str, ...] = ()

    def applies_to(self, context: LintContext) -> bool:
        """Whether the rule runs on this file (path scoping)."""
        posix = Path(context.path).as_posix()
        if any(posix.endswith(suffix) for suffix in self.exempt_suffixes):
            return False
        if self.require_parts:
            return any(part in context.parts for part in self.require_parts)
        return True

    @abc.abstractmethod
    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Yield findings for one parsed file."""

    def diagnostic(
        self,
        context: LintContext,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> Diagnostic:
        """A finding anchored at ``node``'s source location."""
        return Diagnostic(
            rule=self.id,
            message=message,
            severity=severity or self.severity,
            path=context.path,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", -1) + 1,
            hint=self.hint,
        )


class RuleVisitor(ast.NodeVisitor):
    """Base visitor for rules that prefer dispatch over manual walks.

    Collects findings in :attr:`findings`; :meth:`run` visits the tree and
    returns them.  Subclasses implement ``visit_*`` methods and call
    :meth:`report`.
    """

    def __init__(self, rule: Rule, context: LintContext):
        self.rule = rule
        self.context = context
        self.findings: list[Diagnostic] = []

    def report(
        self, node: ast.AST, message: str, severity: Severity | None = None
    ) -> None:
        """Record one finding at ``node``."""
        self.findings.append(
            self.rule.diagnostic(self.context, node, message, severity)
        )

    def run(self, tree: ast.Module) -> list[Diagnostic]:
        """Visit the whole module and return the collected findings."""
        self.visit(tree)
        return self.findings


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[Rule]]:
    """The rule registry, keyed by rule id (a copy; mutation-safe)."""
    return dict(sorted(_REGISTRY.items()))


def expand_selection(
    select: Sequence[str], universe: Iterable[str] | None = None
) -> list[str]:
    """Expand rule-id selectors (exact ids or prefixes) to known ids.

    ``REP1`` selects the whole ``REP1xx`` family; ``REP001`` selects just
    that rule.  One code path serves every rule family: ``universe``
    defaults to the AST-rule registry, but callers owning a larger id
    space (the CLI unions in the whole-program ``REP2xx`` rules and the
    ``ART*`` artifact checkers) pass it explicitly and get identical
    prefix semantics.  A selector matching nothing raises ``ValueError`` —
    a typo'd family in CI must fail loudly, not lint nothing.
    """
    known = sorted(registered_rules() if universe is None else universe)
    expanded: list[str] = []
    unknown: list[str] = []
    for selector in select:
        matches = [
            rule_id
            for rule_id in known
            if rule_id == selector or rule_id.startswith(selector)
        ]
        if not matches:
            unknown.append(selector)
        for rule_id in matches:
            if rule_id not in expanded:
                expanded.append(rule_id)
    if unknown:
        raise ValueError(f"unknown rule id(s) {unknown}; registered: {known}")
    return expanded


def _instantiate(select: Sequence[str] | None) -> list[Rule]:
    registry = registered_rules()
    if select is None:
        return [rule_class() for rule_class in registry.values()]
    return [registry[rule_id]() for rule_id in expand_selection(select)]


#: Inline suppression comment: ``# lint: disable=REP101`` (comma-separated
#: ids allowed).  Scoped to the physical line the comment sits on — for a
#: multi-line call, that is the line where the call expression starts.
_SUPPRESSION_PATTERN = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)"
)

#: Engine-level diagnostic ids that are not registry rules (parse failures
#: and malformed suppressions); valid in ``--select``-less runs and known
#: to the suppression validator.
_ENGINE_IDS = frozenset({"REP000", "REP006"})

#: Ids of the Layer 4 whole-program rules (:mod:`repro.lint.purity`).
#: They are not per-file registry rules — the program pass applies its own
#: suppressions — but their disable comments live in ordinary source lines,
#: so the per-file suppression validator must recognize them instead of
#: reporting REP006.
PROGRAM_RULE_IDS = frozenset(
    {"REP200", "REP201", "REP202", "REP203", "REP204", "REP205", "REP206"}
)

#: Ids of the Layer 5 whole-program rules (:mod:`repro.lint.resources`),
#: recognized by the suppression validator for the same reason as the
#: Layer 4 ids above.
RESOURCE_RULE_IDS = frozenset(
    {"REP300", "REP301", "REP302", "REP303", "REP304", "REP305"}
)


def parse_suppressions(source: str) -> tuple[dict[int, set[str]], list[Diagnostic]]:
    """Per-line suppressed rule ids, plus diagnostics for unknown ids.

    Returns ``({line: {rule ids}}, [REP006 findings])``.  An unknown rule
    id in a disable comment is itself a finding — a typo'd suppression
    that silently suppresses nothing (or the wrong thing) must surface.
    """
    known = (
        set(registered_rules())
        | _ENGINE_IDS
        | PROGRAM_RULE_IDS
        | RESOURCE_RULE_IDS
    )
    suppressions: dict[int, set[str]] = {}
    malformed: list[tuple[int, str]] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_PATTERN.search(line)
        if match is None:
            continue
        for token in match.group(1).split(","):
            rule_id = token.strip()
            if not rule_id:
                continue
            if rule_id in known:
                suppressions.setdefault(line_number, set()).add(rule_id)
            else:
                malformed.append((line_number, rule_id))
    findings = [
        Diagnostic(
            rule="REP006",
            message=(
                f"unknown rule id {rule_id!r} in suppression comment; "
                f"registered ids: {sorted(known)}"
            ),
            severity=Severity.WARNING,
            path="",
            line=line_number,
            column=0,
            hint="fix the rule id or drop the disable comment",
        )
        for line_number, rule_id in malformed
    ]
    return suppressions, findings


def apply_suppressions(
    findings: Iterable[Diagnostic], suppressions: Mapping[int, set[str]]
) -> list[Diagnostic]:
    """Drop findings whose line carries a matching disable comment.

    Engine diagnostics (``REP000`` syntax errors, ``REP006`` malformed
    suppressions) are never suppressible — a disable comment cannot vouch
    for a file the engine could not even read correctly.
    """
    return [
        finding
        for finding in findings
        if finding.rule in _ENGINE_IDS
        or finding.rule not in suppressions.get(finding.line, set())
    ]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Run the (selected) registered rules over one source string.

    Syntax errors are reported as a ``REP000`` error diagnostic rather than
    raised, so one unparsable file cannot abort a whole-tree run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="REP000",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 0,
                column=exc.offset or 0,
            )
        ]
    return _lint_parsed(source, tree, path, select)


def _lint_parsed(
    source: str,
    tree: ast.Module,
    path: str,
    select: Sequence[str] | None,
) -> list[Diagnostic]:
    """Rule dispatch over an already-parsed module."""
    context = LintContext(path=path, tree=tree, source=source)
    findings: list[Diagnostic] = []
    for rule in _instantiate(select):
        if rule.applies_to(context):
            findings.extend(rule.check(context))
    suppressions, bad_suppressions = parse_suppressions(source)
    findings = apply_suppressions(findings, suppressions)
    for finding in bad_suppressions:
        findings.append(replace(finding, path=path))
    return findings


#: Shared parse cache: resolved path -> ((mtime_ns, size), source, tree).
#: Layers 2–5 all need each linted file's AST; with the cache a file is
#: read and parsed exactly once per process no matter how many passes run
#: (per-file rules, the call-graph indexer, the artifact checkers).  A
#: ``None`` tree records a syntax error so broken files are not re-parsed
#: either.
_PARSE_CACHE: dict[Path, tuple[tuple[int, int], str, ast.Module | None]] = {}


def parse_cached(path: str | Path) -> tuple[str, ast.Module | None]:
    """Read + parse a file once, keyed on ``(mtime_ns, size)``.

    Returns ``(source, tree)``; ``tree`` is ``None`` when the file does
    not parse (callers fall back to :func:`lint_source` for the REP000
    diagnostic).  Hits and fresh parses are counted on the ambient
    metrics registry (``lint.parse.hit`` / ``lint.parse.fresh``) so the
    lint CLI's trace can assert the sharing actually happens.
    """
    from ..obs import metrics

    file_path = Path(path).resolve()
    stat = file_path.stat()
    fingerprint = (stat.st_mtime_ns, stat.st_size)
    entry = _PARSE_CACHE.get(file_path)
    if entry is not None and entry[0] == fingerprint:
        metrics().inc("lint.parse.hit")
        return entry[1], entry[2]
    metrics().inc("lint.parse.fresh")
    source = file_path.read_text(encoding="utf-8")
    try:
        tree: ast.Module | None = ast.parse(source, filename=str(file_path))
    except SyntaxError:
        tree = None
    _PARSE_CACHE[file_path] = (fingerprint, source, tree)
    return source, tree


def lint_file(
    path: str | Path, select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the rules over one file on disk (AST shared via the cache)."""
    file_path = Path(path)
    source, tree = parse_cached(file_path)
    if tree is None:  # reproduce the REP000 diagnostic with positions
        return lint_source(source, path=str(file_path), select=select)
    return _lint_parsed(source, tree, str(file_path), select)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """All ``.py`` files under the given files/directories, sorted.

    Hidden directories and ``__pycache__`` are skipped.  A path that does
    not exist raises ``ValueError`` — silently linting nothing would let a
    typo'd CI invocation pass.
    """
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            raise ValueError(f"lint path does not exist: {root}")
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            parts = candidate.parts
            if any(part.startswith(".") or part == "__pycache__" for part in parts[:-1]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the rules over every Python file under ``paths``."""
    _instantiate(select)  # validate the selection even when no files match
    findings: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, select=select))
    return findings
