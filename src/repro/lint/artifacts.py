"""Layer 1 — static validation of anonymization artifacts.

These checkers inspect the *objects* a comparison run is configured with —
generalization hierarchies, the full-domain lattice, privacy-model
parameters, quality indices, r-property profiles and property vectors —
without anonymizing anything.  A malformed hierarchy or an out-of-range
privacy parameter invalidates every property vector and every ▶-better
verdict computed downstream (Theorem 1 presumes per-tuple properties are
measured correctly), so the engine refuses to recode with artifacts that
fail these checks.

Rule ids
--------
========  ====================================================
``ART001``  hierarchy completeness (chain to the root)
``ART002``  hierarchy monotonicity (levels must coarsen)
``ART003``  hierarchy loss contract (0 at raw, 1 at top, monotone)
``ART004``  lattice well-formedness
``ART005``  privacy-parameter sanity
``ART006``  unary quality-index contract (Definition 3)
``ART007``  r-property profile contract (Definition 2)
``ART008``  property-vector length (Definition 1)
``ART009``  runtime run-log contract (manifest + events)
``ART010``  content-addressed cache store integrity
``ART011``  observability artifact contract (trace + metrics files)
``ART012``  benchmark trajectory contract (``BENCH_*.json`` files)
``ART013``  serve benchmark contract (``BENCH_serve.json`` documents)
========  ====================================================
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..hierarchy.base import SUPPRESSED, Hierarchy, HierarchyError
from ..hierarchy.lattice import Lattice
from .diagnostics import Diagnostic, DiagnosticCollector

#: Cap on the lattice size for the exhaustive reachability walk.
_REACHABILITY_LIMIT = 50_000

#: Number of probe points sampled from a numeric hierarchy's bounds.
_NUMERIC_SAMPLE_POINTS = 17


def domain_sample(hierarchy: Hierarchy, sample: Iterable[Any] | None = None) -> list[Any]:
    """A deterministic list of domain values to probe a hierarchy with.

    Explicit ``sample`` wins; otherwise taxonomy leaves, a declared masking
    domain, or a uniform grid over numeric bounds are used.  Returns an
    empty list when no domain is discoverable (domain checks are skipped).
    """
    if sample is not None:
        return list(sample)
    leaves = getattr(hierarchy, "leaves", None)
    if leaves:
        return list(leaves)
    domain = getattr(hierarchy, "domain", None)
    if domain:
        return sorted(domain, key=str)
    bounds = getattr(hierarchy, "bounds", None)
    if bounds:
        low, high = bounds
        step = (high - low) / (_NUMERIC_SAMPLE_POINTS - 1)
        return [low + step * i for i in range(_NUMERIC_SAMPLE_POINTS)]
    return []


def check_hierarchy(
    hierarchy: Hierarchy,
    sample: Iterable[Any] | None = None,
    label: str | None = None,
) -> list[Diagnostic]:
    """Validate one generalization hierarchy (``ART001``–``ART003``).

    Checks, over a domain sample (see :func:`domain_sample`):

    * **completeness** — every value generalizes at every level ``0..height``
      without error, is itself at level 0, and reaches the suppression token
      at the top (the chain-to-root requirement of full-domain recoding);
    * **monotonicity** — the partition induced at level ``l+1`` coarsens the
      one at level ``l``: values mapped together stay together.  A level
      that coarsens nothing at all is reported as a warning;
    * **loss contract** — ``loss`` is within ``[0, 1]``, 0 at level 0,
      1 at the top, and non-decreasing along the chain.
    """
    out = DiagnosticCollector()
    where = {"path": label or f"hierarchy:{getattr(hierarchy, 'name', '?')}"}

    height = getattr(hierarchy, "height", None)
    if not isinstance(height, int) or height < 1:
        out.error(
            "ART001",
            f"hierarchy height must be a positive integer, got {height!r}",
            hint="a hierarchy needs at least the raw level and the suppression top",
            **where,
        )
        return out.findings

    values = domain_sample(hierarchy, sample)
    if not values:
        out.info(
            "ART001",
            "no domain sample available; value-level checks skipped",
            hint="pass sample= with representative domain values",
            **where,
        )
        return out.findings

    chains: dict[int, tuple[Any, ...]] = {}
    for position, value in enumerate(values):
        try:
            chain = tuple(
                hierarchy.generalize(value, level) for level in range(height + 1)
            )
        except (HierarchyError, ValueError, KeyError, TypeError) as exc:
            out.error(
                "ART001",
                f"value {value!r} has no complete generalization chain: {exc}",
                hint="every domain value must generalize at all levels 0..height",
                **where,
            )
            continue
        chains[position] = chain
        if chain[0] != value:
            out.error(
                "ART001",
                f"generalize({value!r}, 0) returned {chain[0]!r}; "
                "level 0 must be the identity",
                hint="return the raw value at level 0",
                **where,
            )
        if chain[-1] != SUPPRESSED:
            out.error(
                "ART001",
                f"generalize({value!r}, {height}) returned {chain[-1]!r} "
                f"instead of the suppression token {SUPPRESSED!r}",
                hint="the top level must collapse the domain to '*'",
                **where,
            )

    # Monotonicity: between consecutive levels, a level-l token must map to
    # exactly one level-(l+1) token across the whole sample.
    for level in range(height):
        parent_of: dict[Any, Any] = {}
        coarsened = False
        for chain in chains.values():
            token, parent = chain[level], chain[level + 1]
            seen = parent_of.setdefault(token, parent)
            if seen != parent:
                out.error(
                    "ART002",
                    f"monotonicity broken between levels {level} and {level + 1}: "
                    f"token {token!r} generalizes to both {seen!r} and {parent!r}",
                    hint="values grouped at a level must stay grouped above it",
                    **where,
                )
            if token != parent:
                coarsened = True
        if chains and not coarsened:
            out.warning(
                "ART002",
                f"level {level + 1} coarsens nothing over level {level}",
                hint="drop the redundant level or merge it with its neighbor",
                **where,
            )

    for position, value in enumerate(values):
        if position not in chains:
            continue
        try:
            losses = [hierarchy.loss(value, level) for level in range(height + 1)]
        except (HierarchyError, ValueError, KeyError, TypeError) as exc:
            out.error(
                "ART003",
                f"loss of value {value!r} is not computable at all levels: {exc}",
                hint="loss(value, level) must accept every level 0..height",
                **where,
            )
            continue
        if any(not 0.0 <= loss <= 1.0 for loss in losses):
            out.error(
                "ART003",
                f"loss of value {value!r} leaves [0, 1]: {losses}",
                hint="normalize the loss metric to the unit interval",
                **where,
            )
        if losses and losses[0] != 0.0:
            out.error(
                "ART003",
                f"loss({value!r}, 0) = {losses[0]}; raw values must cost 0",
                **where,
            )
        if losses and losses[-1] != 1.0:
            out.error(
                "ART003",
                f"loss({value!r}, {height}) = {losses[-1]}; suppression must cost 1",
                **where,
            )
        if any(b < a for a, b in zip(losses, losses[1:])):
            out.error(
                "ART003",
                f"loss of value {value!r} decreases along the chain: {losses}",
                hint="generalizing further can never recover information",
                **where,
            )
    return out.findings


def check_hierarchies(
    hierarchies: Mapping[str, Hierarchy],
    samples: Mapping[str, Iterable[Any]] | None = None,
) -> list[Diagnostic]:
    """Validate a per-attribute hierarchy mapping (``ART001``–``ART003``).

    Also reports a mapping whose key disagrees with the hierarchy's own
    ``name`` — a config-splicing smell that silently recodes the wrong
    attribute.
    """
    out = DiagnosticCollector()
    for attribute, hierarchy in hierarchies.items():
        label = f"hierarchy:{attribute}"
        name = getattr(hierarchy, "name", attribute)
        if name != attribute:
            out.warning(
                "ART001",
                f"mapping key {attribute!r} does not match hierarchy name {name!r}",
                hint="keep the mapping key and Hierarchy.name in sync",
                path=label,
            )
        sample = None if samples is None else samples.get(attribute)
        out.extend(check_hierarchy(hierarchy, sample=sample, label=label))
    return out.findings


def check_lattice(lattice: Lattice, label: str = "lattice") -> list[Diagnostic]:
    """Validate a full-domain generalization lattice (``ART004``).

    Checks height consistency against the per-attribute DGH depths, the
    node count against the product of ``height + 1``, the bottom/top
    elements, and — for lattices up to a size cap — that every node is
    reachable from the bottom through immediate generalizations.
    """
    out = DiagnosticCollector()
    where = {"path": label}

    hierarchies = tuple(getattr(lattice, "hierarchies", ()))
    heights = tuple(getattr(lattice, "heights", ()))
    if len(hierarchies) != len(heights):
        out.error(
            "ART004",
            f"lattice has {len(hierarchies)} hierarchies but "
            f"{len(heights)} heights",
            **where,
        )
        return out.findings
    for hierarchy, height in zip(hierarchies, heights):
        if hierarchy.height != height:
            out.error(
                "ART004",
                f"lattice height {height} disagrees with DGH depth "
                f"{hierarchy.height} of hierarchy {hierarchy.name!r}",
                hint="rebuild the lattice after changing a hierarchy",
                **where,
            )
    expected_size = 1
    for height in heights:
        expected_size *= height + 1
    actual_size = len(lattice)
    if actual_size != expected_size:
        out.error(
            "ART004",
            f"lattice reports {actual_size} nodes; the heights imply "
            f"{expected_size}",
            **where,
        )
    bottom = lattice.bottom
    top = lattice.top
    if bottom != (0,) * len(heights):
        out.error("ART004", f"lattice bottom {bottom!r} is not the all-raw node", **where)
    if top != heights:
        out.error(
            "ART004",
            f"lattice top {top!r} disagrees with the heights {heights!r}",
            **where,
        )
    if lattice.max_height != sum(heights):
        out.error(
            "ART004",
            f"lattice max height {lattice.max_height} is not the height sum "
            f"{sum(heights)}",
            **where,
        )

    if expected_size > _REACHABILITY_LIMIT:
        out.info(
            "ART004",
            f"lattice has {expected_size} nodes; reachability walk skipped "
            f"(limit {_REACHABILITY_LIMIT})",
            **where,
        )
        return out.findings
    seen = {bottom}
    frontier = [bottom]
    while frontier:
        node = frontier.pop()
        for successor in lattice.successors(node):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    if len(seen) != actual_size:
        out.error(
            "ART004",
            f"only {len(seen)} of {actual_size} nodes are reachable from the "
            "bottom via immediate generalizations",
            hint="successors() must raise every attribute one level at a time",
            **where,
        )
    return out.findings


def _distinct_count(values: Iterable[Any] | None) -> int | None:
    if values is None:
        return None
    return len(set(values))


def check_privacy_parameters(
    models: Iterable[Any],
    rows: int | None = None,
    sensitive_values: Iterable[Any] | None = None,
) -> list[Diagnostic]:
    """Validate privacy-model parameters against the workload (``ART005``).

    Duck-typed over the parameter attributes the models expose:

    * ``k`` — must satisfy ``1 <= k <= N`` (a k above the table size can
      only be met by total suppression);
    * ``l`` — must satisfy ``l >= 1`` and ``l <=`` the number of distinct
      sensitive values (``l == 1`` is flagged as vacuous);
    * ``t`` — must lie in ``[0, 1]``;
    * ``p`` — must satisfy ``1 <= p <= min(k, distinct sensitive values)``
      (a class of k tuples cannot hold more than k distinct values);
    * ``c`` — recursive-(c, l) constant, must be positive.
    """
    out = DiagnosticCollector()
    distinct = _distinct_count(sensitive_values)
    for model in models:
        label = f"privacy:{getattr(model, 'name', type(model).__name__)}"
        where = {"path": label}
        k = getattr(model, "k", None)
        l = getattr(model, "l", None)
        t = getattr(model, "t", None)
        p = getattr(model, "p", None)
        c = getattr(model, "c", None)
        if k is not None:
            if not isinstance(k, int) or k < 1:
                out.error("ART005", f"k must be a positive integer, got {k!r}", **where)
            elif rows is not None and k > rows:
                out.error(
                    "ART005",
                    f"k={k} exceeds the table size N={rows}",
                    hint="no release can satisfy k > N without suppressing everything",
                    **where,
                )
        if l is not None:
            if l < 1:
                out.error("ART005", f"l must be at least 1, got {l!r}", **where)
            elif l == 1:
                out.warning(
                    "ART005",
                    "l=1 is vacuous: every class trivially has one sensitive value",
                    **where,
                )
            if distinct is not None and l > distinct:
                out.error(
                    "ART005",
                    f"l={l} exceeds the {distinct} distinct sensitive values",
                    hint="no class can contain more distinct values than the domain has",
                    **where,
                )
        if t is not None and not 0.0 <= float(t) <= 1.0:
            out.error("ART005", f"t must lie in [0, 1], got {t!r}", **where)
        if p is not None:
            if not isinstance(p, int) or p < 1:
                out.error("ART005", f"p must be a positive integer, got {p!r}", **where)
            else:
                if isinstance(k, int) and p > k:
                    out.error(
                        "ART005",
                        f"p={p} exceeds k={k}: a class of k tuples cannot "
                        f"contain {p} distinct sensitive values",
                        **where,
                    )
                if distinct is not None and p > distinct:
                    out.error(
                        "ART005",
                        f"p={p} exceeds the {distinct} distinct sensitive values",
                        **where,
                    )
        if c is not None and not c > 0:
            out.error("ART005", f"recursive-(c, l) constant must be positive, got {c!r}", **where)
    return out.findings


def check_unary_index(index: Any, label: str | None = None) -> list[Diagnostic]:
    """Validate a unary quality index against Definition 3 (``ART006``).

    The contract is structural: a non-empty ``name``, a boolean
    ``larger_is_better`` orientation, and callable ``value`` / ``prefers``
    members.
    """
    out = DiagnosticCollector()
    where = {"path": label or f"index:{getattr(index, 'name', type(index).__name__)}"}
    name = getattr(index, "name", None)
    if not isinstance(name, str) or not name:
        out.error(
            "ART006",
            f"unary index {type(index).__name__} lacks a non-empty name",
            hint="set the class attribute `name`",
            **where,
        )
    orientation = getattr(index, "larger_is_better", None)
    if not isinstance(orientation, bool):
        out.error(
            "ART006",
            f"unary index {type(index).__name__} must declare boolean "
            f"larger_is_better, got {orientation!r}",
            hint="comparators cannot orient an index without it",
            **where,
        )
    for member in ("value", "prefers"):
        if not callable(getattr(index, member, None)):
            out.error(
                "ART006",
                f"unary index {type(index).__name__} lacks callable {member}()",
                **where,
            )
    return out.findings


def check_index_registry(registry: Mapping[str, Any]) -> list[Diagnostic]:
    """Validate a name->index registry (``ART006``).

    Each entry must satisfy :func:`check_unary_index`; a key that differs
    from the index's own ``name`` is reported, since lookups and reports
    would then disagree about what was measured.
    """
    out = DiagnosticCollector()
    for key, index in registry.items():
        label = f"index:{key}"
        out.extend(check_unary_index(index, label=label))
        name = getattr(index, "name", None)
        if isinstance(name, str) and name and name != key:
            out.warning(
                "ART006",
                f"registry key {key!r} does not match index name {name!r}",
                hint="register indices under their own name",
                path=label,
            )
    return out.findings


def check_profile(
    profile: Any,
    declared_properties: Iterable[str] | None = None,
    label: str = "profile",
) -> list[Diagnostic]:
    """Validate an r-property profile against Definition 2 (``ART007``).

    The profile must expose at least one property name; when the study
    declares its property universe, every profile property must be a member
    of it — an undeclared property means the Υ sets would silently carry a
    vector no comparator was configured for.
    """
    out = DiagnosticCollector()
    where = {"path": label}
    names = tuple(getattr(profile, "names", ()))
    r = getattr(profile, "r", len(names))
    if r < 1 or not names:
        out.error(
            "ART007",
            "r-property profile must declare at least one property",
            **where,
        )
        return out.findings
    if len(set(names)) != len(names):
        out.error(
            "ART007",
            f"profile property names are not unique: {list(names)}",
            **where,
        )
    if r != len(names):
        out.error(
            "ART007",
            f"profile reports r={r} but declares {len(names)} properties",
            **where,
        )
    if declared_properties is not None:
        declared = set(declared_properties)
        unknown = [name for name in names if name not in declared]
        if unknown:
            out.error(
                "ART007",
                f"profile references undeclared properties {unknown}; "
                f"declared: {sorted(declared)}",
                hint="declare every property the r-property set references",
                **where,
            )
    return out.findings


def check_property_vectors(
    vectors: Sequence[Any],
    rows: int,
    label: str = "vectors",
) -> list[Diagnostic]:
    """Validate property vectors against Definition 1 (``ART008``).

    Every vector must have exactly one measurement per tuple of the data
    set (length N); a mixed-orientation family is reported as a warning
    because comparators require explicit negation first.
    """
    out = DiagnosticCollector()
    where = {"path": label}
    orientations = set()
    for position, vector in enumerate(vectors):
        size = len(vector)
        if size != rows:
            out.error(
                "ART008",
                f"property vector #{position} ({getattr(vector, 'name', '?')!r}) "
                f"has {size} measurements for a data set of {rows} tuples",
                hint="property vectors are N-dimensional by Definition 1",
                **where,
            )
        orientations.add(getattr(vector, "higher_is_better", True))
    if len(orientations) > 1:
        out.warning(
            "ART008",
            "vectors mix orientations; negate the lower-is-better ones "
            "before comparing",
            **where,
        )
    return out.findings


#: Manifest statuses the executor writes.
_RUN_STATUSES = {"running", "completed", "failed"}


def check_run_artifacts(run_dir: str | Path, label: str | None = None) -> list[Diagnostic]:
    """Validate a runtime run directory (``ART009``).

    A run directory (``repro study --run-dir``) holds ``manifest.json`` and
    ``events.jsonl`` (see :mod:`repro.runtime.events`).  Checks the manifest
    shape (status, task count vs task ids, tally consistency), every event
    against the executor's vocabulary, timestamp monotonicity, and that
    task-level events only reference tasks the manifest declares.  A stale
    ``running`` status is a warning — it marks an interrupted run that will
    resume from cache, not a broken artifact.
    """
    # Late import: repro.runtime imports the anonymization engine, which
    # gates through lint.api — importing it at module scope would cycle.
    from ..runtime.events import EVENT_KINDS, read_events, read_manifest

    out = DiagnosticCollector()
    run_path = Path(run_dir)
    where = {"path": label or f"run:{run_path}"}
    manifest_path = run_path / "manifest.json"
    if not manifest_path.exists():
        out.error(
            "ART009",
            f"run directory {run_path} has no manifest.json",
            hint="pass --run-dir to repro study, or point at a real run",
            **where,
        )
        return out.findings
    try:
        manifest = read_manifest(run_path)
    except (json.JSONDecodeError, OSError) as exc:
        out.error("ART009", f"manifest.json is unreadable: {exc}", **where)
        return out.findings

    status = manifest.get("status")
    if status not in _RUN_STATUSES:
        out.error(
            "ART009",
            f"manifest status {status!r} is not one of {sorted(_RUN_STATUSES)}",
            **where,
        )
    elif status == "running":
        out.warning(
            "ART009",
            "manifest still reports status 'running': the run was interrupted "
            "(it will resume from cache) or is in flight",
            **where,
        )
    task_ids = manifest.get("task_ids", [])
    tasks = manifest.get("tasks")
    if not isinstance(task_ids, list) or not all(isinstance(t, str) for t in task_ids):
        out.error("ART009", "manifest task_ids must be a list of strings", **where)
        task_ids = [t for t in task_ids if isinstance(t, str)] if isinstance(task_ids, list) else []
    if len(set(task_ids)) != len(task_ids):
        out.error("ART009", "manifest task_ids contain duplicates", **where)
    if tasks != len(task_ids):
        out.error(
            "ART009",
            f"manifest reports {tasks!r} tasks but lists {len(task_ids)} task ids",
            **where,
        )
    if status in {"completed", "failed"}:
        tallies = {
            key: manifest.get(key)
            for key in ("completed", "failed", "blocked", "cache_hits", "executed")
        }
        if all(isinstance(value, int) for value in tallies.values()):
            settled = tallies["completed"] + tallies["failed"] + tallies["blocked"]
            if settled != len(task_ids):
                out.error(
                    "ART009",
                    f"tallies do not cover the graph: completed+failed+blocked="
                    f"{settled} for {len(task_ids)} tasks",
                    **where,
                )
            if tallies["cache_hits"] + tallies["executed"] != tallies["completed"]:
                out.error(
                    "ART009",
                    f"cache_hits({tallies['cache_hits']}) + executed"
                    f"({tallies['executed']}) != completed({tallies['completed']})",
                    hint="every completed task is either a hit or was executed",
                    **where,
                )
        else:
            missing = sorted(k for k, v in tallies.items() if not isinstance(v, int))
            out.error(
                "ART009",
                f"finished manifest lacks integer tallies for {missing}",
                **where,
            )

    events = read_events(run_path / "events.jsonl")
    if not events:
        out.warning(
            "ART009",
            "events.jsonl is missing or empty; the run left no history",
            **where,
        )
        return out.findings
    known = set(task_ids)
    last_ts = None
    hit_events = 0
    for position, event in enumerate(events):
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            out.error(
                "ART009",
                f"event #{position} has unknown kind {kind!r}",
                hint=f"executor vocabulary: {sorted(EVENT_KINDS)}",
                **where,
            )
        if kind == "cache-hit":
            hit_events += 1
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            out.error("ART009", f"event #{position} lacks a numeric ts", **where)
        elif last_ts is not None and ts < last_ts:
            out.error(
                "ART009",
                f"event #{position} goes back in time ({ts} < {last_ts}); "
                "the log is append-only",
                **where,
            )
        else:
            last_ts = ts
        task = event.get("task")
        if task is not None and known and task not in known:
            out.error(
                "ART009",
                f"event #{position} references task {task!r} the manifest "
                "does not declare",
                **where,
            )
    kinds = {event.get("event") for event in events}
    if "run-start" not in kinds:
        out.error("ART009", "event log has no run-start record", **where)
    if status in {"completed", "failed"} and "run-finish" not in kinds:
        out.error(
            "ART009",
            f"manifest is {status} but the event log has no run-finish record",
            **where,
        )
    if status in {"completed", "failed"} and isinstance(manifest.get("cache_hits"), int):
        # A merged multi-writer log may hold more cache-hit events than
        # unique cache-hit tasks (two cooperating executors can each
        # settle the same task from cache); such manifests carry the raw
        # event count under cache_hit_events, which is what must match.
        expected_hits = manifest["cache_hits"]
        if isinstance(manifest.get("cache_hit_events"), int):
            expected_hits = manifest["cache_hit_events"]
        if hit_events != expected_hits:
            out.error(
                "ART009",
                f"event log shows {hit_events} cache-hit event(s) but the "
                f"manifest tallies {expected_hits}",
                **where,
            )
    return out.findings


def check_cache_store(root: str | Path, label: str | None = None) -> list[Diagnostic]:
    """Validate a content-addressed result store (``ART010``).

    Walks ``objects/<shard>/<digest>.pkl`` under ``root`` and checks that
    every entry lives in the shard matching its digest prefix, unpickles to
    the ``{"key", "value"}`` envelope, and that the stored key's recomputed
    digest equals the filename — a mismatch means the content address lies
    and memoization would return the wrong result.  Entries from another
    code epoch are warnings (dead weight, never returned as hits).
    """
    from ..runtime.task import CODE_EPOCH, CacheKey

    out = DiagnosticCollector()
    store_root = Path(root)
    where = {"path": label or f"cache:{store_root}"}
    objects = store_root / "objects"
    if not objects.exists():
        out.info(
            "ART010",
            f"cache store {store_root} has no objects/ directory (empty store)",
            **where,
        )
        return out.findings
    entries = 0
    for path in sorted(objects.rglob("*")):
        if path.is_dir():
            continue
        digest = path.stem
        if path.suffix != ".pkl" or len(digest) != 64 or any(
            c not in "0123456789abcdef" for c in digest
        ):
            out.warning(
                "ART010",
                f"stray file {path.relative_to(store_root)} is not a cache entry",
                hint="the store only holds objects/<2-hex>/<sha256>.pkl files",
                **where,
            )
            continue
        entries += 1
        if path.parent.name != digest[:2]:
            out.error(
                "ART010",
                f"entry {digest[:12]}… lives in shard {path.parent.name!r} "
                f"instead of {digest[:2]!r}",
                **where,
            )
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
        except Exception as exc:  # noqa: BLE001 — any unpickling failure is corruption
            out.error(
                "ART010",
                f"entry {digest[:12]}… does not unpickle: {exc}",
                hint="the runtime deletes corrupt entries on read; or clear() the store",
                **where,
            )
            continue
        if not isinstance(entry, dict) or "key" not in entry or "value" not in entry:
            out.error(
                "ART010",
                f"entry {digest[:12]}… is not a {{key, value}} envelope",
                **where,
            )
            continue
        try:
            key = CacheKey(**entry["key"])
        except TypeError as exc:
            out.error(
                "ART010",
                f"entry {digest[:12]}… has a malformed key: {exc}",
                **where,
            )
            continue
        if key.digest() != digest:
            out.error(
                "ART010",
                f"entry {digest[:12]}… fails content addressing: stored key "
                f"hashes to {key.digest()[:12]}…",
                hint="a lying address would memoize the wrong result",
                **where,
            )
        if key.epoch != CODE_EPOCH:
            out.warning(
                "ART010",
                f"entry {digest[:12]}… was written under code epoch "
                f"{key.epoch!r} (current: {CODE_EPOCH!r}) and can never hit",
                hint="clear the store or let eviction reclaim it",
                **where,
            )
    if entries == 0:
        out.info("ART010", "cache store holds no entries", **where)
    return out.findings


def _check_trace_payload(
    payload: Mapping[str, Any], out: DiagnosticCollector, where: Mapping[str, Any]
) -> None:
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        out.error("ART011", "trace file has no traceEvents list", **where)
        return
    span_ids: set[int] = set()
    parents: list[tuple[int, int]] = []
    last_ts = None
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            out.error("ART011", f"trace event #{position} is not an object", **where)
            continue
        phase = event.get("ph")
        if phase not in {"X", "M"}:
            out.error(
                "ART011",
                f"trace event #{position} has phase {phase!r}; the exporter "
                "only emits complete ('X') and metadata ('M') events",
                **where,
            )
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        dur = event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            out.error(
                "ART011",
                f"trace event #{position} lacks a non-negative numeric ts",
                **where,
            )
        elif last_ts is not None and ts < last_ts:
            out.error(
                "ART011",
                f"trace event #{position} goes back in time ({ts} < {last_ts}); "
                "the exporter sorts events by start",
                **where,
            )
        else:
            last_ts = ts
        if not isinstance(dur, (int, float)) or dur < 0:
            out.error(
                "ART011",
                f"trace event #{position} lacks a non-negative duration",
                **where,
            )
        name = event.get("name")
        if not isinstance(name, str) or not name:
            out.error("ART011", f"trace event #{position} has no name", **where)
        args = event.get("args", {})
        span_id = args.get("span") if isinstance(args, dict) else None
        if not isinstance(span_id, int):
            out.error(
                "ART011",
                f"trace event #{position} lacks an integer args.span id",
                hint="span/parent ids in args make the tree recoverable",
                **where,
            )
            continue
        if span_id in span_ids:
            out.error(
                "ART011",
                f"trace event #{position} reuses span id {span_id}",
                **where,
            )
        span_ids.add(span_id)
        parent = args.get("parent")
        if parent is not None:
            if not isinstance(parent, int):
                out.error(
                    "ART011",
                    f"trace event #{position} has a non-integer parent id",
                    **where,
                )
            else:
                parents.append((position, parent))
    for position, parent in parents:
        if parent not in span_ids:
            out.error(
                "ART011",
                f"trace event #{position} references parent span {parent} "
                "which the file does not contain",
                hint="the exporter drops parents outside the exported slice",
                **where,
            )
    if not span_ids:
        out.warning("ART011", "trace file contains no spans", **where)


#: Relative tolerance for the histogram sum-bounds check (float summation).
_HISTOGRAM_TOLERANCE = 1e-9


def _check_metrics_payload(
    payload: Mapping[str, Any], out: DiagnosticCollector, where: Mapping[str, Any]
) -> None:
    schema = payload.get("schema")
    if schema != "repro.obs/metrics@1":
        out.error(
            "ART011",
            f"metrics snapshot has schema {schema!r}; expected 'repro.obs/metrics@1'",
            **where,
        )
    counters = payload.get("counters", {})
    if not isinstance(counters, dict):
        out.error("ART011", "metrics counters must be an object", **where)
        counters = {}
    for name, value in counters.items():
        if not isinstance(value, (int, float)) or value < 0:
            out.error(
                "ART011",
                f"counter {name!r} must be a non-negative number, got {value!r}",
                hint="counters are monotone sums; a negative value means corruption",
                **where,
            )
    histograms = payload.get("histograms", {})
    if not isinstance(histograms, dict):
        out.error("ART011", "metrics histograms must be an object", **where)
        histograms = {}
    for name, stats in histograms.items():
        if not isinstance(stats, dict):
            out.error("ART011", f"histogram {name!r} is not an object", **where)
            continue
        count = stats.get("count")
        total = stats.get("sum")
        low = stats.get("min")
        high = stats.get("max")
        if not isinstance(count, int) or count < 1:
            out.error(
                "ART011",
                f"histogram {name!r} count must be a positive integer, got {count!r}",
                hint="empty histograms are omitted from snapshots",
                **where,
            )
            continue
        numeric = all(isinstance(v, (int, float)) for v in (total, low, high))
        if not numeric:
            out.error(
                "ART011",
                f"histogram {name!r} needs numeric sum/min/max",
                **where,
            )
            continue
        if low > high:
            out.error(
                "ART011",
                f"histogram {name!r} has min {low} > max {high}",
                **where,
            )
            continue
        slack = _HISTOGRAM_TOLERANCE * max(abs(total), count * max(abs(low), abs(high)), 1.0)
        if not (count * low - slack <= total <= count * high + slack):
            out.error(
                "ART011",
                f"histogram {name!r} sum {total} leaves the bounds implied by "
                f"count={count}, min={low}, max={high}",
                hint="count·min <= sum <= count·max must hold for any sample set",
                **where,
            )


def check_obs_artifacts(path: str | Path, label: str | None = None) -> list[Diagnostic]:
    """Validate an exported trace or metrics file (``ART011``).

    Dispatches on content: an object with a ``traceEvents`` list is checked
    as a Chrome-trace export (phases restricted to the exporter's ``X``/``M``
    vocabulary, monotone non-negative timestamps, non-negative durations,
    unique integer span ids, parent references resolvable within the file);
    an object carrying the ``repro.obs/metrics@1`` schema (or ``counters``/
    ``histograms`` keys) is checked as a metrics snapshot (non-negative
    counters, histogram ``count >= 1`` with ``count·min <= sum <= count·max``).
    Anything else is an error — the file is not an observability artifact.
    """
    out = DiagnosticCollector()
    file_path = Path(path)
    where = {"path": label or str(file_path)}
    try:
        with file_path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        out.error("ART011", f"{file_path} does not exist", **where)
        return out.findings
    except (json.JSONDecodeError, OSError) as exc:
        out.error("ART011", f"{file_path} is not readable JSON: {exc}", **where)
        return out.findings
    if not isinstance(payload, dict):
        out.error("ART011", "observability artifacts are JSON objects", **where)
        return out.findings
    if isinstance(payload.get("traceEvents"), list):
        _check_trace_payload(payload, out, where)
    elif payload.get("schema") == "repro.obs/metrics@1" or (
        "counters" in payload and "histograms" in payload
    ):
        _check_metrics_payload(payload, out, where)
    else:
        out.error(
            "ART011",
            f"{file_path} is neither a trace (no traceEvents) nor a metrics "
            "snapshot (no repro.obs/metrics@1 schema)",
            hint="point at the trace.json / metrics.json a traced run exported",
            **where,
        )
    return out.findings


#: Required fields of one benchmark case: (name, strictly_positive,
#: integral).  Counts (n, repeats) must be positive integers — a float
#: ``n`` would make scale-tier entries ambiguous; wall times are
#: non-negative numbers.
_BENCH_CASE_FIELDS = (
    ("n", True, True),
    ("repeats", True, True),
    ("p50_wall_s", False, False),
    ("p95_wall_s", False, False),
)

#: Cases at or above this many rows must name the kernel backend that
#: produced them — scale-tier timings are meaningless without knowing
#: whether the numpy kernels or the pure-python fallback ran the sweep.
_BENCH_KERNEL_FLOOR = 100_000

#: Schema id of benchmark trajectory files (``BENCH_*.json``).
BENCH_SCHEMA = "repro.bench/trajectory@1"


def check_bench_artifacts(path: str | Path, label: str | None = None) -> list[Diagnostic]:
    """Validate a committed benchmark trajectory file (``ART012``).

    A ``BENCH_<suite>.json`` file records wall-time percentiles over the
    repo's history so performance regressions are diffable in review.  The
    contract: the ``repro.bench/trajectory@1`` schema, a non-empty suite
    name, and a list of entries each carrying the git revision that
    produced it, a ``quick`` flag, and per-size cases with integral
    ``n``/``repeats``, ``p50_wall_s <= p95_wall_s`` and a true
    ``plane_equivalent`` flag (a recorded plane divergence is itself an
    error — the benchmark doubles as an equivalence witness).  Scale-tier
    cases (``n`` >= 100k) must additionally name the ``kernel`` backend
    that produced the timing.
    """
    out = DiagnosticCollector()
    file_path = Path(path)
    where = {"path": label or str(file_path)}
    try:
        with file_path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        out.error("ART012", f"{file_path} does not exist", **where)
        return out.findings
    except (json.JSONDecodeError, OSError) as exc:
        out.error("ART012", f"{file_path} is not readable JSON: {exc}", **where)
        return out.findings
    if not isinstance(payload, dict):
        out.error("ART012", "a benchmark trajectory is a JSON object", **where)
        return out.findings
    if payload.get("schema") != BENCH_SCHEMA:
        out.error(
            "ART012",
            f"schema is {payload.get('schema')!r}, expected {BENCH_SCHEMA!r}",
            **where,
        )
        return out.findings
    suite = payload.get("suite")
    if not isinstance(suite, str) or not suite:
        out.error("ART012", "suite must be a non-empty string", **where)
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        out.error(
            "ART012",
            "entries must be a non-empty list (one entry per recorded run)",
            hint="regenerate with benchmarks/test_bench_recode.py --quick --bench-json",
            **where,
        )
        return out.findings
    for position, entry in enumerate(entries):
        tag = f"entries[{position}]"
        if not isinstance(entry, dict):
            out.error("ART012", f"{tag} must be an object", **where)
            continue
        git_rev = entry.get("git_rev")
        if not isinstance(git_rev, str) or not git_rev:
            out.error("ART012", f"{tag}.git_rev must be a non-empty string", **where)
        if not isinstance(entry.get("quick"), bool):
            out.error("ART012", f"{tag}.quick must be a boolean", **where)
        cases = entry.get("cases")
        if not isinstance(cases, list) or not cases:
            out.error("ART012", f"{tag}.cases must be a non-empty list", **where)
            continue
        for case_position, case in enumerate(cases):
            case_tag = f"{tag}.cases[{case_position}]"
            if not isinstance(case, dict):
                out.error("ART012", f"{case_tag} must be an object", **where)
                continue
            bad = False
            for field_name, strictly_positive, integral in _BENCH_CASE_FIELDS:
                value = case.get(field_name)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    out.error(
                        "ART012",
                        f"{case_tag}.{field_name} must be a number",
                        **where,
                    )
                    bad = True
                elif integral and not isinstance(value, int):
                    out.error(
                        "ART012",
                        f"{case_tag}.{field_name} must be an integer, "
                        f"got {value!r}",
                        **where,
                    )
                    bad = True
                elif strictly_positive and value <= 0:
                    out.error(
                        "ART012",
                        f"{case_tag}.{field_name} must be positive, got {value}",
                        **where,
                    )
                    bad = True
                elif value < 0:
                    out.error(
                        "ART012",
                        f"{case_tag}.{field_name} must be non-negative, got {value}",
                        **where,
                    )
                    bad = True
            if not bad and case["p50_wall_s"] > case["p95_wall_s"]:
                out.error(
                    "ART012",
                    f"{case_tag} has p50_wall_s {case['p50_wall_s']} > "
                    f"p95_wall_s {case['p95_wall_s']}",
                    **where,
                )
            if case.get("plane_equivalent") is not True:
                out.error(
                    "ART012",
                    f"{case_tag}.plane_equivalent must be true; a recorded "
                    "plane divergence invalidates the trajectory",
                    hint="investigate the row/columnar divergence before committing",
                    **where,
                )
            if not bad and case["n"] >= _BENCH_KERNEL_FLOOR:
                kernel = case.get("kernel")
                if not isinstance(kernel, str) or not kernel:
                    out.error(
                        "ART012",
                        f"{case_tag} has n={case['n']} (scale tier) but "
                        "does not name the kernel backend",
                        hint='add "kernel": "numpy" or "python" to the case',
                        **where,
                    )
    return out.findings


#: Schema id of serve benchmark documents (``BENCH_serve.json``).
SERVE_BENCH_SCHEMA = "repro.bench/serve@1"

#: Per-endpoint latency percentile fields, in non-decreasing order.
_SERVE_PERCENTILE_FIELDS = ("p50_ms", "p95_ms", "p99_ms")


def check_serve_bench_artifacts(
    path: str | Path, label: str | None = None
) -> list[Diagnostic]:
    """Validate a serve benchmark document (``ART013``).

    ``BENCH_serve.json`` is the flat single-run record ``repro bench
    serve`` writes: the ``repro.bench/serve@1`` schema, the concurrent
    client count, run-level ``throughput_rps > 0``, the producing
    ``git_rev``, and one latency block per exercised endpoint with
    ``p50_ms <= p95_ms <= p99_ms``.  Unlike the ART012 trajectories it is
    a snapshot, not an append-only history — every bench run replaces it.
    """
    out = DiagnosticCollector()
    file_path = Path(path)
    where = {"path": label or str(file_path)}
    try:
        with file_path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        out.error("ART013", f"{file_path} does not exist", **where)
        return out.findings
    except (json.JSONDecodeError, OSError) as exc:
        out.error("ART013", f"{file_path} is not readable JSON: {exc}", **where)
        return out.findings
    if not isinstance(payload, dict):
        out.error("ART013", "a serve benchmark document is a JSON object", **where)
        return out.findings
    if payload.get("schema") != SERVE_BENCH_SCHEMA:
        out.error(
            "ART013",
            f"schema is {payload.get('schema')!r}, expected {SERVE_BENCH_SCHEMA!r}",
            **where,
        )
        return out.findings
    git_rev = payload.get("git_rev")
    if not isinstance(git_rev, str) or not git_rev:
        out.error("ART013", "git_rev must be a non-empty string", **where)
    clients = payload.get("clients")
    if isinstance(clients, bool) or not isinstance(clients, int) or clients < 1:
        out.error(
            "ART013",
            f"clients must be a positive integer, got {clients!r}",
            **where,
        )
    throughput = payload.get("throughput_rps")
    if (
        isinstance(throughput, bool)
        or not isinstance(throughput, (int, float))
        or throughput <= 0
    ):
        out.error(
            "ART013",
            f"throughput_rps must be a positive number, got {throughput!r}",
            hint="a zero-throughput run recorded no completed requests",
            **where,
        )
    endpoints = payload.get("endpoints")
    if not isinstance(endpoints, dict) or not endpoints:
        out.error(
            "ART013",
            "endpoints must be a non-empty object "
            "(one latency block per exercised endpoint)",
            hint="regenerate with `repro bench serve`",
            **where,
        )
        return out.findings
    for endpoint in sorted(endpoints):
        block = endpoints[endpoint]
        tag = f"endpoints[{endpoint}]"
        if not isinstance(block, dict):
            out.error("ART013", f"{tag} must be an object", **where)
            continue
        requests = block.get("requests")
        if (
            isinstance(requests, bool)
            or not isinstance(requests, int)
            or requests < 1
        ):
            out.error(
                "ART013",
                f"{tag}.requests must be a positive integer, got {requests!r}",
                **where,
            )
        bad = False
        for field_name in _SERVE_PERCENTILE_FIELDS:
            value = block.get(field_name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                out.error(
                    "ART013", f"{tag}.{field_name} must be a number", **where
                )
                bad = True
            elif value < 0:
                out.error(
                    "ART013",
                    f"{tag}.{field_name} must be non-negative, got {value}",
                    **where,
                )
                bad = True
        if not bad:
            ordered = [block[name] for name in _SERVE_PERCENTILE_FIELDS]
            if not (ordered[0] <= ordered[1] <= ordered[2]):
                out.error(
                    "ART013",
                    f"{tag} percentiles must be non-decreasing "
                    f"(p50 <= p95 <= p99), got {ordered}",
                    **where,
                )
    return out.findings


#: Artifact rule ids -> one-line descriptions, for ``--select`` validation
#: (artifact rules live outside the AST-rule registry in :mod:`.engine`).
ARTIFACT_RULES: dict[str, str] = {
    "ART001": "hierarchy completeness (chain to the root)",
    "ART002": "hierarchy monotonicity (levels must coarsen)",
    "ART003": "hierarchy loss contract (0 at raw, 1 at top, monotone)",
    "ART004": "lattice well-formedness",
    "ART005": "privacy-parameter sanity",
    "ART006": "unary quality-index contract (Definition 3)",
    "ART007": "r-property profile contract (Definition 2)",
    "ART008": "property-vector length (Definition 1)",
    "ART009": "runtime run-log contract (manifest + events)",
    "ART010": "content-addressed cache store integrity",
    "ART011": "observability artifact contract (trace + metrics files)",
    "ART012": "benchmark trajectory contract (BENCH_*.json files)",
    "ART013": "serve benchmark contract (BENCH_serve.json documents)",
}
