"""The ``repro lint`` subcommand implementation.

Kept separate from :mod:`repro.cli` so the top-level CLI only wires
arguments; all lint policy (what runs, what blocks, how findings render)
lives with the lint subsystem.

Exit codes: 0 — clean (or INFO-only); 1 — errors, or warnings under
``--strict``; 2 — bad invocation (unknown rule id, nonexistent path,
unreadable baseline, or — under ``--strict`` — a malformed suppression
comment, which means some disable comment is not doing what its author
thinks).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

from . import api
from .baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .diagnostics import Diagnostic, has_blocking
from .engine import expand_selection
from .report import FORMATS, render


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` arguments to a subcommand parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids (e.g. REP001 REP003)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to --baseline instead of reporting",
    )
    parser.add_argument(
        "--artifacts",
        action="store_true",
        help="also run artifact analysis on the shipped paper/Adult artifacts",
    )
    parser.add_argument(
        "--no-code",
        action="store_true",
        help="skip the codebase rules (artifact analysis only)",
    )
    parser.add_argument(
        "--runtime",
        nargs="+",
        metavar="PATH",
        help="validate runtime artifacts at PATH: a study run directory "
        "(manifest.json + events.jsonl, ART009; trace.json/metrics.json, "
        "ART011), a content-addressed cache store (objects/, ART010), an "
        "exported trace/metrics JSON file (ART011), or a BENCH_*.json "
        "benchmark file (trajectory ART012, serve document ART013 — "
        "routed by schema tag)",
    )
    parser.add_argument(
        "--certify-ops",
        metavar="FILE",
        help="run the Layer 4 parallel-safety analysis over the lint paths "
        "and write per-op effect certificates (JSON) to FILE",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a Chrome trace of the lint passes to FILE (spans per "
        "pass, plus parse-cache hit/fresh counters)",
    )


def _partition_selectors(
    select: Sequence[str] | None,
) -> tuple[list[str] | None, list[str], list[str], list[str]]:
    """Partition ``--select`` into (code, program, resource, artifact) ids.

    One code path for every rule family: the selectors are expanded over
    the union of the AST-rule registry, the Layer 4 program rules, the
    Layer 5 resource rules and the artifact checkers with
    :func:`repro.lint.engine.expand_selection`, so ``REP1``, ``REP2``,
    ``REP3``, ``ART`` and exact ids all get identical prefix semantics.
    Raises ``ValueError`` on a selector matching nothing.
    """
    if select is None:
        return None, [], [], []
    registry = set(api.registered_rules())
    universe = (
        registry
        | set(api.PROGRAM_RULES)
        | set(api.RESOURCE_RULES)
        | set(api.ARTIFACT_RULES)
    )
    expanded = expand_selection(select, universe=universe)
    code = [rule_id for rule_id in expanded if rule_id in registry]
    program = [rule_id for rule_id in expanded if rule_id in api.PROGRAM_RULES]
    resource = [rule_id for rule_id in expanded if rule_id in api.RESOURCE_RULES]
    artifact = [rule_id for rule_id in expanded if rule_id in api.ARTIFACT_RULES]
    return (code or None), program, resource, artifact


def _check_bench_file(target: Path) -> list[Diagnostic]:
    """Route one ``BENCH_*.json`` file to its checker by schema tag.

    Serve benchmark documents (``repro.bench/serve@1``) validate under
    ART013; everything else — including unreadable files — falls through
    to the ART012 trajectory checker, which reports the failure.
    """
    try:
        with target.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = payload.get("schema") if isinstance(payload, dict) else None
    except (json.JSONDecodeError, OSError):
        schema = None
    if schema == api.SERVE_BENCH_SCHEMA:
        return api.check_serve_bench_artifacts(target)
    return api.check_bench_artifacts(target)


def run(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` and return the process exit code."""
    if args.update_baseline and not args.baseline:
        print("--update-baseline requires --baseline FILE")
        return 2
    findings: list[Diagnostic] = []
    # Under --trace every pass runs inside a span and the parse-cache
    # hit/fresh counters land in the trace args, making the shared-AST
    # speedup (files parsed once across Layers 2-5) observable.
    from ..obs import NULL_OBSERVATION, Observation, observing

    observation = Observation() if args.trace else NULL_OBSERVATION
    tracer = observation.trace
    try:
        with observing(observation):
            (
                code_select,
                program_select,
                resource_select,
                artifact_select,
            ) = _partition_selectors(args.select)
            # A --select naming only artifact/program rules asks for those
            # checks, not a full code sweep under "no filter".
            run_code = not args.no_code and not (
                args.select and code_select is None
            )
            if run_code:
                with tracer.span("lint.code", category="lint"):
                    findings.extend(api.lint_paths(args.paths, select=code_select))
            if program_select:
                with tracer.span("lint.parallel_safety", category="lint"):
                    findings.extend(
                        api.check_parallel_safety(
                            args.paths, select=program_select
                        )
                    )
            if resource_select:
                with tracer.span("lint.resource_safety", category="lint"):
                    findings.extend(
                        api.check_resource_safety(
                            args.paths, select=resource_select
                        )
                    )
            if args.certify_ops:
                with tracer.span("lint.certify_ops", category="lint"):
                    certificates = api.write_op_certificates(
                        args.paths, args.certify_ops
                    )
                verdicts = [
                    op["verdict"] for op in certificates["ops"].values()
                ]
                print(
                    f"wrote {len(verdicts)} op certificate(s) to "
                    f"{args.certify_ops} "
                    f"({verdicts.count('certified')} certified, "
                    f"{verdicts.count('inline-only')} inline-only, "
                    f"{verdicts.count('uncertified')} uncertified)"
                )
    except ValueError as exc:  # unknown rule id or nonexistent path
        print(exc)
        return 2
    if args.trace:
        from ..obs.export import write_chrome_trace

        counters = observation.metrics.snapshot().get("counters", {})
        with tracer.span(
            "lint.parse_cache",
            category="lint",
            hits=counters.get("lint.parse.hit", 0),
            fresh=counters.get("lint.parse.fresh", 0),
        ):
            pass
        write_chrome_trace(tracer.spans, args.trace, process_name="repro-lint")
        print(
            f"wrote lint trace to {args.trace} "
            f"(parse cache: {counters.get('lint.parse.fresh', 0)} fresh, "
            f"{counters.get('lint.parse.hit', 0)} hit)"
        )
    if args.artifacts:
        findings.extend(api.check_shipped_artifacts())
    for runtime_path in args.runtime or ():
        target = Path(runtime_path)
        if not target.exists():
            print(f"--runtime path does not exist: {runtime_path}")
            return 2
        if target.is_file():
            if target.name.startswith("BENCH_") and target.suffix == ".json":
                findings.extend(_check_bench_file(target))
            else:
                findings.extend(api.check_obs_artifacts(target))
            continue
        is_run = (target / "manifest.json").exists() or (
            target / "events.jsonl"
        ).exists()
        is_store = (target / "objects").exists()
        if not is_run and not is_store:
            print(
                f"--runtime path {runtime_path} is neither a run directory "
                "(no manifest.json/events.jsonl), a cache store (no objects/), "
                "nor a trace/metrics file"
            )
            return 2
        if is_run:
            findings.extend(api.check_run_artifacts(target))
            for artifact_name in ("trace.json", "metrics.json"):
                artifact_path = target / artifact_name
                if artifact_path.exists():
                    findings.extend(api.check_obs_artifacts(artifact_path))
        if is_store:
            findings.extend(api.check_cache_store(target))

    if artifact_select:
        # Code/program findings were already narrowed by their passes;
        # filter the artifact findings too so --select governs the report.
        # Expanded ids are exact, so plain membership suffices.
        selected = (
            set(artifact_select)
            | set(program_select)
            | set(resource_select)
            | set(code_select or ())
        )
        findings = [finding for finding in findings if finding.rule in selected]

    baseline_note = ""
    if args.baseline and args.update_baseline:
        count = write_baseline(findings, args.baseline)
        print(f"wrote {count} finding(s) to baseline {args.baseline}")
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(exc)
            return 2
        findings, matched = apply_baseline(findings, baseline)
        baseline_note = f"baseline {args.baseline}: {matched} finding(s) matched"

    print(render(findings, format=args.format))
    if baseline_note and args.format == "text":
        print(baseline_note)
    if args.strict and any(f.rule == "REP006" for f in findings):
        # A malformed suppression means some disable comment is silently
        # suppressing nothing: that is an invocation-level error.
        return 2
    return 1 if has_blocking(findings, strict=args.strict) else 0
