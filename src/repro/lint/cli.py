"""The ``repro lint`` subcommand implementation.

Kept separate from :mod:`repro.cli` so the top-level CLI only wires
arguments; all lint policy (what runs, what blocks, how findings render)
lives with the lint subsystem.

Exit codes: 0 — clean (or INFO-only); 1 — errors, or warnings under
``--strict``; 2 — bad invocation (unknown rule id, nonexistent path,
unreadable baseline, or — under ``--strict`` — a malformed suppression
comment, which means some disable comment is not doing what its author
thinks).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from . import api
from .baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .diagnostics import Diagnostic, has_blocking
from .report import FORMATS, render


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` arguments to a subcommand parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids (e.g. REP001 REP003)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to --baseline instead of reporting",
    )
    parser.add_argument(
        "--artifacts",
        action="store_true",
        help="also run artifact analysis on the shipped paper/Adult artifacts",
    )
    parser.add_argument(
        "--no-code",
        action="store_true",
        help="skip the codebase rules (artifact analysis only)",
    )
    parser.add_argument(
        "--runtime",
        nargs="+",
        metavar="PATH",
        help="validate runtime artifacts at PATH: a study run directory "
        "(manifest.json + events.jsonl, ART009; trace.json/metrics.json, "
        "ART011), a content-addressed cache store (objects/, ART010), or "
        "an exported trace/metrics JSON file (ART011)",
    )


def _split_selectors(select: Sequence[str] | None) -> tuple[list[str] | None, list[str]]:
    """Partition ``--select`` into (code selectors, artifact selectors).

    Artifact rules (``ART...``) live outside the AST-rule registry, so they
    are validated here against :data:`repro.lint.artifacts.ARTIFACT_RULES`
    with the same prefix semantics the code-rule engine uses.  Raises
    ``ValueError`` on a selector matching neither family.
    """
    if select is None:
        return None, []
    code: list[str] = []
    artifact: list[str] = []
    for selector in select:
        if selector.upper().startswith("ART"):
            matches = [
                rule_id
                for rule_id in api.ARTIFACT_RULES
                if rule_id == selector or rule_id.startswith(selector)
            ]
            if not matches:
                raise ValueError(
                    f"unknown artifact rule selector {selector!r}; "
                    f"known: {sorted(api.ARTIFACT_RULES)}"
                )
            artifact.append(selector)
        else:
            code.append(selector)
    return (code or None), artifact


def run(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` and return the process exit code."""
    if args.update_baseline and not args.baseline:
        print("--update-baseline requires --baseline FILE")
        return 2
    findings: list[Diagnostic] = []
    try:
        code_select, artifact_select = _split_selectors(args.select)
        # A --select naming only artifact rules asks for artifact checks, not
        # a full code sweep under "no filter".
        run_code = not args.no_code and not (args.select and code_select is None)
        if run_code:
            findings.extend(api.lint_paths(args.paths, select=code_select))
    except ValueError as exc:  # unknown rule id or nonexistent path
        print(exc)
        return 2
    if args.artifacts:
        findings.extend(api.check_shipped_artifacts())
    for runtime_path in args.runtime or ():
        target = Path(runtime_path)
        if not target.exists():
            print(f"--runtime path does not exist: {runtime_path}")
            return 2
        if target.is_file():
            findings.extend(api.check_obs_artifacts(target))
            continue
        is_run = (target / "manifest.json").exists() or (
            target / "events.jsonl"
        ).exists()
        is_store = (target / "objects").exists()
        if not is_run and not is_store:
            print(
                f"--runtime path {runtime_path} is neither a run directory "
                "(no manifest.json/events.jsonl), a cache store (no objects/), "
                "nor a trace/metrics file"
            )
            return 2
        if is_run:
            findings.extend(api.check_run_artifacts(target))
            for artifact_name in ("trace.json", "metrics.json"):
                artifact_path = target / artifact_name
                if artifact_path.exists():
                    findings.extend(api.check_obs_artifacts(artifact_path))
        if is_store:
            findings.extend(api.check_cache_store(target))

    if artifact_select:
        # Code findings were already narrowed by the engine; apply the same
        # prefix filter across everything so --select governs the report.
        selectors = tuple(artifact_select) + tuple(code_select or ())
        findings = [
            finding
            for finding in findings
            if any(
                finding.rule == selector or finding.rule.startswith(selector)
                for selector in selectors
            )
        ]

    baseline_note = ""
    if args.baseline and args.update_baseline:
        count = write_baseline(findings, args.baseline)
        print(f"wrote {count} finding(s) to baseline {args.baseline}")
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(exc)
            return 2
        findings, matched = apply_baseline(findings, baseline)
        baseline_note = f"baseline {args.baseline}: {matched} finding(s) matched"

    print(render(findings, format=args.format))
    if baseline_note and args.format == "text":
        print(baseline_note)
    if args.strict and any(f.rule == "REP006" for f in findings):
        # A malformed suppression means some disable comment is silently
        # suppressing nothing: that is an invocation-level error.
        return 2
    return 1 if has_blocking(findings, strict=args.strict) else 0
