"""Public lint API — the single entry point other subsystems use.

Re-exports the Layer 1 artifact checkers and the Layer 2 path runner, and
adds the two integration surfaces:

* :func:`ensure_valid_hierarchies` — the memoized hard gate the recoding
  engine calls before touching microdata: a hierarchy failing completeness
  (``ART001``) or monotonicity (``ART002``) raises :class:`LintError`
  carrying the diagnostics instead of silently producing a wrong release;
* :func:`check_shipped_artifacts` — full artifact analysis of everything
  the package ships (the paper's Tables 1–3 schemes and the Adult
  workload), used by ``repro lint --artifacts`` and CI.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Mapping

from ..hierarchy.base import Hierarchy
from .artifacts import (
    ARTIFACT_RULES,
    SERVE_BENCH_SCHEMA,
    check_bench_artifacts,
    check_cache_store,
    check_hierarchies,
    check_hierarchy,
    check_index_registry,
    check_lattice,
    check_obs_artifacts,
    check_privacy_parameters,
    check_profile,
    check_property_vectors,
    check_run_artifacts,
    check_serve_bench_artifacts,
    check_unary_index,
)
from .diagnostics import (
    Diagnostic,
    LintError,
    Severity,
    has_blocking,
    sort_diagnostics,
)
from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import (
    expand_selection,
    lint_file,
    lint_paths,
    lint_source,
    registered_rules,
)
from .purity import (
    PROGRAM_RULES,
    check_parallel_safety,
    op_certificates,
    render_certificates,
    write_op_certificates,
)
from .redact import redact_value
from .report import render
from .resources import RESOURCE_RULES, check_resource_safety
from . import rules as _rules  # noqa: F401 — importing registers REP001-REP005
from . import taint as _taint  # noqa: F401 — importing registers REP101-REP104

__all__ = [
    "apply_baseline",
    "ARTIFACT_RULES",
    "SERVE_BENCH_SCHEMA",
    "check_bench_artifacts",
    "check_cache_store",
    "check_hierarchies",
    "check_hierarchy",
    "check_index_registry",
    "check_lattice",
    "check_obs_artifacts",
    "check_parallel_safety",
    "check_privacy_parameters",
    "check_profile",
    "check_property_vectors",
    "check_resource_safety",
    "check_run_artifacts",
    "check_serve_bench_artifacts",
    "check_shipped_artifacts",
    "check_unary_index",
    "Diagnostic",
    "ensure_valid_hierarchies",
    "expand_selection",
    "has_blocking",
    "lint_file",
    "lint_paths",
    "lint_source",
    "LintError",
    "load_baseline",
    "op_certificates",
    "PROGRAM_RULES",
    "redact_value",
    "registered_rules",
    "render",
    "render_certificates",
    "RESOURCE_RULES",
    "Severity",
    "sort_diagnostics",
    "write_baseline",
    "write_op_certificates",
]

#: Rules whose ERROR findings make a recoding semantically wrong and
#: therefore block the engine (loss-contract issues only distort utility
#: metrics and stay advisory at the gate).
_GATE_RULES = {"ART001", "ART002"}

#: Hierarchies already validated by the gate (identity-keyed, weak).
_validated_hierarchies: "weakref.WeakSet[Hierarchy]" = weakref.WeakSet()


def gate_diagnostics(hierarchy: Hierarchy) -> list[Diagnostic]:
    """The blocking findings for one hierarchy (``ART001``/``ART002`` errors)."""
    return [
        diagnostic
        for diagnostic in check_hierarchy(hierarchy)
        if diagnostic.rule in _GATE_RULES
        and diagnostic.severity is Severity.ERROR
    ]


def ensure_valid_hierarchies(hierarchies: Mapping[str, Hierarchy]) -> None:
    """Refuse malformed hierarchies before they recode any microdata.

    Validates each hierarchy's completeness and monotonicity once per
    object (results are memoized in a weak set, so the per-node hot path
    of a lattice search pays nothing after the first call) and raises
    :class:`LintError` with the structured diagnostics when a hierarchy is
    broken.
    """
    blocking: list[Diagnostic] = []
    validated: list[Hierarchy] = []
    for hierarchy in hierarchies.values():
        try:
            if hierarchy in _validated_hierarchies:
                continue
        except TypeError:  # unhashable/weakref-less stub: validate every time
            pass
        blocking.extend(gate_diagnostics(hierarchy))
        validated.append(hierarchy)
    if blocking:
        ordered = sort_diagnostics(blocking)
        summary = "; ".join(diagnostic.format() for diagnostic in ordered[:3])
        if len(ordered) > 3:
            summary += f"; … {len(ordered) - 3} more"
        raise LintError(
            f"refusing to recode with malformed hierarchies: {summary}",
            ordered,
        )
    for hierarchy in validated:
        try:
            _validated_hierarchies.add(hierarchy)  # lint: disable=REP201 -- idempotent weak-set memo of a pure validation; never observed by results
        except TypeError:
            pass


def check_shipped_artifacts() -> list[Diagnostic]:
    """Artifact analysis of every artifact the package ships.

    Covers the paper's running example (Table 1 schema, the T3a/T3b/T3c
    generalization schemes of Tables 2–3) and the synthetic Adult workload:
    hierarchies, the full-domain lattice over the Adult QIs, the default
    privacy models sized against the workload, the unary index registry
    and the stock r-property profiles.
    """
    # Late imports: datasets/core pull in the anonymization engine, which
    # itself imports this module for the gate.
    from ..core import indices as index_module
    from ..core.properties import equivalence_class_size
    from ..core.rproperty import privacy_profile, privacy_utility_profile
    from ..datasets import adult_dataset, adult_hierarchies
    from ..datasets import paper_tables
    from ..hierarchy.lattice import Lattice
    from ..privacy import (
        DistinctLDiversity,
        KAnonymity,
        PSensitiveKAnonymity,
        TCloseness,
    )

    findings: list[Diagnostic] = []

    # Paper running example: every scheme's hierarchies, sampled on Table 1.
    table1 = paper_tables.table1()
    age_sample = table1.column("Age")
    paper_checks = {
        "paper:zip": (paper_tables.zip_hierarchy(), table1.column("Zip Code")),
        "paper:marital": (
            paper_tables.marital_hierarchy(),
            table1.column(paper_tables.SENSITIVE_ATTRIBUTE),
        ),
        "paper:age[T3a]": (paper_tables.age_hierarchy(10, 5), age_sample),
        "paper:age[T3b]": (paper_tables.age_hierarchy(20, 15), age_sample),
        "paper:age[T4]": (paper_tables.age_hierarchy(20, 0), age_sample),
    }
    for label, (hierarchy, sample) in paper_checks.items():
        findings.extend(check_hierarchy(hierarchy, sample=sample, label=label))
    for scheme_name, release in paper_tables.all_generalizations().items():
        findings.extend(
            check_property_vectors(
                [equivalence_class_size(release)],
                rows=len(release),
                label=f"paper:{scheme_name}:vectors",
            )
        )

    # Adult workload: hierarchies, lattice, privacy parameters.
    adult = adult_dataset(64, seed=0)
    hierarchies = adult_hierarchies()
    adult_samples = {name: adult.column(name) for name in adult.schema.names}
    findings.extend(check_hierarchies(hierarchies, samples=adult_samples))
    qi_names = adult.schema.quasi_identifier_names
    findings.extend(
        check_lattice(
            Lattice([hierarchies[name] for name in qi_names]),
            label="adult:lattice",
        )
    )
    sensitive = adult.column(adult.schema.sensitive_names[0])
    findings.extend(
        check_privacy_parameters(
            [
                KAnonymity(5),
                DistinctLDiversity(2),
                TCloseness(0.3),
                PSensitiveKAnonymity(2, 5),
            ],
            rows=len(adult),
            sensitive_values=sensitive,
        )
    )

    # Quality-index and profile contracts.
    registry = {
        "minimum": index_module.MinimumIndex(),
        "mean": index_module.MeanIndex(),
        "maximum": index_module.MaximumIndex(),
        "gini": index_module.GiniIndex(),
    }
    findings.extend(check_index_registry(registry))
    profile = privacy_profile(adult.schema.sensitive_names[0])
    declared = {
        "equivalence-class-size",
        "sensitive-value-count",
        "tuple-utility",
        "breach-probability",
    }
    findings.extend(
        check_profile(profile, declared_properties=declared, label="profile:privacy")
    )
    findings.extend(
        check_profile(
            privacy_utility_profile(hierarchies),
            declared_properties=declared,
            label="profile:privacy-utility",
        )
    )
    return findings


def clear_validation_cache() -> None:
    """Drop the memoized hierarchy validations (for tests)."""
    _validated_hierarchies.clear()


def select_artifact_errors(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Only the ERROR-severity findings (convenience filter for gates)."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def summarize_rules() -> dict[str, dict[str, Any]]:
    """Metadata for every registered codebase rule (id, title, severity)."""
    return {
        rule_id: {
            "title": rule_class.title,
            "severity": rule_class.severity.value,
            "hint": rule_class.hint,
        }
        for rule_id, rule_class in registered_rules().items()
    }
