"""Structured lint diagnostics.

Both analysis layers — the artifact checkers of :mod:`repro.lint.artifacts`
and the AST rules of :mod:`repro.lint.rules` — speak one record type: a
:class:`Diagnostic` carries the rule id, a severity, an optional source
location and a fix hint, so reporters, the CLI exit-code policy and the
engine gate (:func:`repro.lint.api.ensure_valid_hierarchies`) never care
which layer produced a finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


class LintError(ValueError):
    """Raised when an artifact fails lint validation at a hard gate.

    Carries the offending diagnostics so callers can render or filter them.
    """

    def __init__(self, message: str, diagnostics: Sequence["Diagnostic"] = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class Severity(enum.Enum):
    """How bad a finding is; drives exit codes and strict mode."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Total order for sorting: errors first, infos last."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Parameters
    ----------
    rule:
        Stable rule id (``REP001`` .. ``REP005`` for codebase rules,
        ``ART001`` .. ``ART008`` for artifact checkers).
    message:
        Human-readable statement of the defect.
    severity:
        :class:`Severity` of the finding.
    path:
        Source file (codebase rules) or artifact label (artifact checkers).
    line:
        1-based source line, 0 when not applicable.
    column:
        1-based source column, 0 when not applicable.
    hint:
        A short suggestion for fixing the finding.
    """

    rule: str
    message: str
    severity: Severity = Severity.ERROR
    path: str = ""
    line: int = 0
    column: int = 0
    hint: str = ""

    def format(self) -> str:
        """The canonical one-line rendering: ``path:line:col: ID message``."""
        location = self.path or "<artifact>"
        if self.line:
            location += f":{self.line}:{self.column or 1}"
        text = f"{location}: {self.rule} [{self.severity.value}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping of the record."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
        }


@dataclass
class DiagnosticCollector:
    """Accumulates diagnostics for one checker run.

    Checkers call :meth:`add` (or the severity shorthands); the collector
    keeps insertion order, which reporters then sort for display.
    """

    findings: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Record one finding."""
        self.findings.append(diagnostic)

    def error(self, rule: str, message: str, **location: Any) -> None:
        """Record an :data:`Severity.ERROR` finding."""
        self.add(Diagnostic(rule, message, Severity.ERROR, **location))

    def warning(self, rule: str, message: str, **location: Any) -> None:
        """Record a :data:`Severity.WARNING` finding."""
        self.add(Diagnostic(rule, message, Severity.WARNING, **location))

    def info(self, rule: str, message: str, **location: Any) -> None:
        """Record a :data:`Severity.INFO` finding."""
        self.add(Diagnostic(rule, message, Severity.INFO, **location))

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Record several findings."""
        self.findings.extend(diagnostics)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Deterministic display order: path, line, column, rule id."""
    return sorted(
        diagnostics,
        key=lambda d: (d.path, d.line, d.column, d.rule, d.message),
    )


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The most severe level present, or ``None`` for a clean run."""
    worst: Severity | None = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity.rank < worst.rank:
            worst = diagnostic.severity
    return worst


def has_blocking(
    diagnostics: Iterable[Diagnostic], strict: bool = False
) -> bool:
    """Whether the findings should fail the run.

    Errors always block; in ``strict`` mode warnings block too.  INFO
    findings never block.
    """
    blocking = {Severity.ERROR, Severity.WARNING} if strict else {Severity.ERROR}
    return any(d.severity in blocking for d in diagnostics)
