"""Layer 4, part 2 — effect summaries and the parallel-safety rules.

Built on the call graph of :mod:`repro.lint.callgraph`, this module
computes a per-function *effect summary* and certifies every registered
task operation for distributed execution.  The effect lattice has five
categories:

``writes-global``
    assigns a module global, mutates module-level container state, or
    writes ``os.environ`` — state a worker process would fork away from
    the coordinator;
``ambient``
    reads ambient nondeterminism: wall-clock time, environment variables,
    the process-global ``random`` state (or an *unseeded* generator
    constructor — seeded ones, the ``derive_seed``-threading idiom, are
    exempt), or the filesystem outside the sanctioned cache/run-dir
    modules;
``mutates-argument``
    mutates one of its parameters in place (recorded in certificates;
    not itself a REP2xx rule since callers may pass fresh values);
``unordered``
    a dict/set-iteration order may flow into the return value
    (:class:`~repro.lint.rules.UnorderedIterationRule` made
    interprocedural);
``unpicklable``
    the return value may hold a lambda, locally-defined function or
    generator — values that cannot cross a process boundary.

Summaries are sets of *origin* witness sites, propagated to a fixpoint in
reverse call order: ``writes-global``/``ambient``/``mutates-argument``
flow to every caller unconditionally (calling an effectful function is
effectful), ``unordered``/``unpicklable`` only along call edges whose
result may reach the caller's return value.  The pass then reports:

========  ==========================================================
REP200    a REP2xx waiver comment without a justification (unaudited)
REP201    a registered task op reaches a global/module-state write
REP202    a task op reaches ambient nondeterminism
REP203    a TaskSpec payload or op return is not picklable
REP204    an op result depends on an input outside its cache key
REP205    dict/set iteration order reaches an op's returned value
REP206    an inline-only op is reachable from a parallel-eligible op
========  ==========================================================

Waivers use the ordinary disable-comment syntax plus a mandatory
justification: ``# lint: disable=REP201 -- deterministic idempotent
memo``.  A waiver without the ``--`` justification is itself reported
(REP200), which is what "zero unaudited waivers" means in CI.

:func:`op_certificates` distills the same analysis into a machine-readable
document (schema ``repro.lint/op-certificates@1``) the future distributed
scheduler can refuse to ship uncertified operations over.  Rendering is
canonical — sorted keys, no timestamps — so regeneration is byte-stable.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from .callgraph import (
    FunctionInfo,
    ModuleInfo,
    OpRegistration,
    ProgramIndex,
    _walk_same_function,
    build_program_index,
    returned_name_closure,
)
from .diagnostics import Diagnostic, Severity
from .engine import _SUPPRESSION_PATTERN, PROGRAM_RULE_IDS
from .rules import _RANDOM_GLOBAL, _call_args_seeded, _is_set_expression

#: Rule metadata for the whole-program pass, mirroring the shape of
#: :func:`repro.lint.api.summarize_rules` for the per-file registry.
PROGRAM_RULES: dict[str, dict[str, str]] = {
    "REP200": {
        "title": "REP2xx waiver comment without a justification",
        "severity": "warning",
        "hint": "append ` -- <why this effect is safe>` to the disable comment",
    },
    "REP201": {
        "title": "task op reaches a global/module-state write",
        "severity": "error",
        "hint": "thread the state through params/results, or waive with a justification",
    },
    "REP202": {
        "title": "task op reaches ambient nondeterminism",
        "severity": "error",
        "hint": "derive randomness from derive_seed-threaded params, not ambient state",
    },
    "REP203": {
        "title": "TaskSpec payload or op return is not picklable by construction",
        "severity": "error",
        "hint": "register the op inline_only, or pass data instead of callables",
    },
    "REP204": {
        "title": "op result depends on an input outside its ResultCache key",
        "severity": "error",
        "hint": "thread the input through params (with_seed) so it reaches the cache key",
    },
    "REP205": {
        "title": "dict/set iteration order reaches an op's returned value",
        "severity": "warning",
        "hint": "iterate sorted(...) before the value escapes into a task result",
    },
    "REP206": {
        "title": "inline-only op reachable from a parallel-eligible op",
        "severity": "error",
        "hint": "split the inline dependency out of the parallel op's call path",
    },
}

# Effect categories.
WRITES_GLOBAL = "writes-global"
AMBIENT = "ambient"
MUTATES_ARGUMENT = "mutates-argument"
UNORDERED = "unordered"
UNPICKLABLE = "unpicklable"

#: Categories that flow to every caller (calling an effectful function is
#: itself effectful) vs. those that only matter when the callee's result
#: can reach the caller's return value.
_UNCONDITIONAL = (WRITES_GLOBAL, AMBIENT, MUTATES_ARGUMENT)
_RETURN_FLOW = (UNORDERED, UNPICKLABLE)

CATEGORIES = (*_UNCONDITIONAL, *_RETURN_FLOW)

#: Modules whose filesystem access is sanctioned: the content-addressed
#: cache store and the run directory are *designed* to be written from
#: tasks' surroundings, and the IO there is keyed by content digests.
_SANCTIONED_IO_MODULES = frozenset(
    {"repro.runtime.cache", "repro.runtime.rundir", "repro.runtime.run"}
)

#: ``time`` members whose call reads the wall clock / process clock.
_TIME_MEMBERS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "localtime",
        "gmtime", "ctime",
    }
)

#: ``os`` members that read or enumerate ambient process/filesystem state.
_OS_AMBIENT_MEMBERS = frozenset(
    {"getenv", "getcwd", "getpid", "urandom", "listdir", "walk", "scandir"}
)

#: Attribute method names specific enough to be filesystem access on any
#: plausible receiver (``pathlib.Path`` and file objects).
_FS_METHODS = frozenset(
    {
        "read_text", "write_text", "read_bytes", "write_bytes", "mkdir",
        "rmdir", "unlink", "touch", "iterdir", "rglob", "hardlink_to",
        "symlink_to", "rename_to",
    }
)

#: Container-mutating method names: calling one on a module global is a
#: module-state write; on a parameter, an argument mutation.
_MUTATING_METHODS = frozenset(
    {
        "add", "append", "extend", "update", "setdefault", "pop", "popitem",
        "clear", "remove", "discard", "insert", "sort", "reverse",
    }
)


def _portable_path(path: str | Path) -> str:
    """POSIX rendering, relative to the working directory when under it.

    Certificates must not encode how the analysis was invoked: scanning
    ``src`` and scanning ``/abs/path/to/src`` from the repo root have to
    produce identical bytes, so absolute paths inside the working tree
    collapse to their relative form.
    """
    candidate = Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(Path.cwd())
        except ValueError:
            pass
    return candidate.as_posix()


@dataclass(frozen=True, order=True)
class Origin:
    """One witness site for an effect: where it syntactically happens."""

    category: str
    path: str
    line: int
    function: str  # qualname of the function containing the site
    description: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping with POSIX paths (certificate stability)."""
        return {
            "category": self.category,
            "path": _portable_path(self.path),
            "line": self.line,
            "function": self.function,
            "description": self.description,
        }


@dataclass
class ProgramAnalysis:
    """The call graph plus converged per-function effect summaries."""

    index: ProgramIndex
    summaries: dict[str, dict[str, frozenset[Origin]]]

    def effects_of(self, qualname: str) -> dict[str, frozenset[Origin]]:
        """One function's converged effect summary (empty if unindexed)."""
        return self.summaries.get(qualname, {})


# -- local (intraprocedural) effect detection --------------------------------

class _ModuleAliases:
    """Import aliases one module's effect detector needs."""

    def __init__(self, module: ModuleInfo):
        self.time: set[str] = set()
        self.os: set[str] = set()
        self.random: set[str] = set()
        self.numpy_random: set[str] = set()
        self.from_random: set[str] = set()
        self.from_numpy_random: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.modules: set[str] = set()  # every name bound to a module
        for bound, target in module.imports.items():
            head = target.split(".")[0]
            if target == "time":
                self.time.add(bound)
            elif target == "os":
                self.os.add(bound)
            elif target == "random":
                self.random.add(bound)
            elif target in {"numpy.random", "np.random"}:
                self.numpy_random.add(bound)
            elif head == "random" and "." in target:
                self.from_random.add(bound)
            elif target.startswith("numpy.random."):
                self.from_numpy_random.add(bound)
            elif target in {"datetime.datetime", "datetime.date"}:
                self.datetime_classes.add(bound)
            # Module-or-symbol: a plain `import x` or `from pkg import mod`.
            self.modules.add(bound)


def _bound_target_names(target: ast.AST):
    """Names an assignment target *binds* (``x``, ``a, b`` — not ``x[k]``).

    A subscript/attribute target mutates an existing object rather than
    binding a local, so its base name must NOT count as locally bound —
    otherwise ``_MEMO[key] = ...`` would hide the module global ``_MEMO``
    from the effect analysis.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _bound_target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_target_names(element)


def _local_names(node: ast.AST) -> set[str]:
    """Names bound locally in one function (params, assignments, loops)."""
    names: set[str] = set()
    arguments = getattr(node, "args", None)
    if isinstance(arguments, ast.arguments):
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ):
            names.add(arg.arg)
        if arguments.vararg:
            names.add(arguments.vararg.arg)
        if arguments.kwarg:
            names.add(arguments.kwarg.arg)
    for child in _walk_same_function(node):
        if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            for target in targets:
                names.update(_bound_target_names(target))
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(child.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
        elif isinstance(child, ast.comprehension):
            for sub in ast.walk(child.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _parameter_names(node: ast.AST) -> set[str]:
    arguments = getattr(node, "args", None)
    if not isinstance(arguments, ast.arguments):
        return set()
    names = {
        arg.arg
        for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
    }
    names.discard("self")
    names.discard("cls")
    return names


def _declared_globals(node: ast.AST) -> set[str]:
    declared: set[str] = set()
    for child in _walk_same_function(node):
        if isinstance(child, (ast.Global, ast.Nonlocal)):
            declared.update(child.names)
    return declared


def _base_name(node: ast.AST) -> str | None:
    """The root Name of a subscript/attribute chain (``a.b[c].d`` -> ``a``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _local_effects(
    fn: FunctionInfo, module: ModuleInfo, aliases: _ModuleAliases
) -> set[Origin]:
    """Effect origins visible in one function body (no propagation)."""
    node = fn.node
    origins: set[Origin] = set()
    locals_bound = _local_names(node)
    parameters = _parameter_names(node)
    declared_globals = _declared_globals(node)
    shadowed = locals_bound - declared_globals
    module_state = (module.module_globals | aliases.modules) - shadowed
    # For method-call mutation (``X.add(...)``) only module-level
    # *variables* count: ``np.sort(x)`` is a function call on an imported
    # module, not a mutation of it.
    mutable_globals = module.module_globals - shadowed
    sanctioned_io = module.name in _SANCTIONED_IO_MODULES

    def witness(category: str, site: ast.AST, description: str) -> None:
        origins.add(
            Origin(
                category=category,
                path=module.path,
                line=getattr(site, "lineno", fn.line),
                function=fn.qualname,
                description=description,
            )
        )

    def classify_target(target: ast.AST, site: ast.AST) -> None:
        """A store/delete target: global write or argument mutation?"""
        if isinstance(target, ast.Name):
            if target.id in declared_globals:
                witness(
                    WRITES_GLOBAL, site, f"assigns module global {target.id!r}"
                )
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = _base_name(target)
            if base is None or base in {"self", "cls"}:
                return
            if base in parameters:
                witness(MUTATES_ARGUMENT, site, f"mutates parameter {base!r}")
            elif base in module_state:
                if _is_environ_target(target, aliases):
                    witness(
                        WRITES_GLOBAL, site, "writes os.environ (process state)"
                    )
                else:
                    witness(
                        WRITES_GLOBAL,
                        site,
                        f"mutates module-level state {base!r}",
                    )

    for child in _walk_same_function(node):
        if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            for target in targets:
                classify_target(target, child)
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                classify_target(target, child)
        elif isinstance(child, ast.Call):
            _classify_call(
                child,
                witness,
                aliases,
                parameters,
                mutable_globals,
                sanctioned_io,
            )

    origins.update(_return_effects(fn, module))
    return origins


def _is_environ_target(target: ast.AST, aliases: _ModuleAliases) -> bool:
    for sub in ast.walk(target):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "environ"
            and isinstance(sub.value, ast.Name)
            and sub.value.id in aliases.os
        ):
            return True
    return False


def _classify_call(
    call: ast.Call,
    witness,
    aliases: _ModuleAliases,
    parameters: set[str],
    mutable_globals: set[str],
    sanctioned_io: bool,
) -> None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open" and not sanctioned_io:
            witness(AMBIENT, call, "opens a file outside the cache/run-dir plane")
        elif func.id in aliases.from_random and func.id in _RANDOM_GLOBAL:
            witness(
                AMBIENT, call, f"random.{func.id}() samples the process-global state"
            )
        elif func.id in aliases.from_random and func.id == "Random":
            if not _call_args_seeded(call):
                witness(AMBIENT, call, "random.Random() constructed without a seed")
        elif func.id in aliases.from_numpy_random and func.id == "default_rng":
            if not _call_args_seeded(call):
                witness(
                    AMBIENT, call, "numpy.random.default_rng() without a seed"
                )
        return
    if not isinstance(func, ast.Attribute):
        return
    owner = func.value
    attr = func.attr
    if isinstance(owner, ast.Name):
        if owner.id in aliases.time and attr in _TIME_MEMBERS:
            witness(AMBIENT, call, f"reads the clock via time.{attr}()")
            return
        if owner.id in aliases.os:
            if attr in _OS_AMBIENT_MEMBERS and (
                sanctioned_io is False or attr in {"getenv", "urandom"}
            ):
                witness(AMBIENT, call, f"reads ambient state via os.{attr}()")
            return
        if owner.id in aliases.random:
            if attr in _RANDOM_GLOBAL or attr == "seed":
                witness(
                    AMBIENT,
                    call,
                    f"random.{attr}() samples the process-global state",
                )
            elif attr == "Random" and not _call_args_seeded(call):
                witness(AMBIENT, call, "random.Random() constructed without a seed")
            return
        if owner.id in aliases.numpy_random or owner.id in aliases.datetime_classes:
            if attr == "default_rng" and not _call_args_seeded(call):
                witness(AMBIENT, call, "numpy.random.default_rng() without a seed")
            elif attr in {"now", "utcnow", "today"}:
                witness(AMBIENT, call, f"reads the clock via {owner.id}.{attr}()")
            return
    # os.environ.get(...) — owner is the Attribute `os.environ`.
    if (
        isinstance(owner, ast.Attribute)
        and owner.attr == "environ"
        and isinstance(owner.value, ast.Name)
        and owner.value.id in aliases.os
    ):
        witness(AMBIENT, call, "reads os.environ")
        return
    if attr in _FS_METHODS and not sanctioned_io:
        witness(AMBIENT, call, f".{attr}() touches the filesystem")
        return
    if attr in _MUTATING_METHODS and isinstance(owner, (ast.Name, ast.Subscript, ast.Attribute)):
        base = _base_name(owner)
        if base is None or base in {"self", "cls"}:
            return
        if base in parameters:
            witness(MUTATES_ARGUMENT, call, f"mutates parameter {base!r} via .{attr}()")
        elif base in mutable_globals:
            witness(
                WRITES_GLOBAL,
                call,
                f"mutates module-level state {base!r} via .{attr}()",
            )


def _return_effects(fn: FunctionInfo, module: ModuleInfo) -> set[Origin]:
    """``unordered`` and ``unpicklable`` origins tied to the return value."""
    node = fn.node
    origins: set[Origin] = set()
    closure = returned_name_closure(node)

    def witness(category: str, site: ast.AST, description: str) -> None:
        origins.add(
            Origin(
                category=category,
                path=module.path,
                line=getattr(site, "lineno", fn.line),
                function=fn.qualname,
                description=description,
            )
        )

    # unpicklable: generators, returned lambdas, returned local functions.
    nested_defs = {
        child.name
        for child in ast.walk(node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not node
    }
    for child in _walk_same_function(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            witness(UNPICKLABLE, child, "generator results cannot cross a process boundary")
        elif isinstance(child, ast.Return) and child.value is not None:
            for sub in ast.walk(child.value):
                if isinstance(sub, ast.Lambda):
                    witness(UNPICKLABLE, sub, "returns a lambda")
                elif isinstance(sub, ast.Name) and sub.id in nested_defs:
                    witness(
                        UNPICKLABLE,
                        sub,
                        f"returns locally-defined function {sub.id!r}",
                    )
    if isinstance(node, ast.Lambda):
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Lambda):
                witness(UNPICKLABLE, sub, "returns a lambda")

    # unordered: set-iteration whose value can reach the return value.
    set_names: set[str] = set()
    for child in _walk_same_function(node):
        if isinstance(child, ast.Assign) and _is_set_expression(child.value, set()):
            set_names.update(
                target.id for target in child.targets if isinstance(target, ast.Name)
            )

    def unordered_sites(expr: ast.AST) -> list[tuple[ast.AST, str]]:
        sites: list[tuple[ast.AST, str]] = []
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if any(
                    _is_set_expression(generator.iter, set_names)
                    for generator in sub.generators
                ):
                    sites.append((sub, "comprehension iterates a set in hash order"))
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in {"list", "tuple"}
                and len(sub.args) == 1
                and _is_set_expression(sub.args[0], set_names)
            ):
                sites.append(
                    (sub, f"{sub.func.id}() materializes a set in hash order")
                )
        return sites

    for child in _walk_same_function(node):
        if isinstance(child, ast.Return) and child.value is not None:
            for site, description in unordered_sites(child.value):
                witness(UNORDERED, site, description)
        elif isinstance(child, ast.Assign):
            targets = {
                target.id for target in child.targets if isinstance(target, ast.Name)
            }
            if targets & closure:
                for site, description in unordered_sites(child.value):
                    witness(UNORDERED, site, description)
        elif isinstance(child, (ast.For, ast.AsyncFor)) and _is_set_expression(
            child.iter, set_names
        ):
            if _loop_feeds_closure(child, closure):
                witness(
                    UNORDERED,
                    child,
                    "for-loop over a set feeds the returned value in hash order",
                )
    if isinstance(node, ast.Lambda):
        for site, description in unordered_sites(node.body):
            witness(UNORDERED, site, description)
    return origins


def _loop_feeds_closure(loop: ast.For | ast.AsyncFor, closure: set[str]) -> bool:
    """Whether a loop body stores/appends into a name that may be returned."""
    for child in ast.walk(loop):
        if isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            for target in targets:
                base = (
                    target.id
                    if isinstance(target, ast.Name)
                    else _base_name(target)
                    if isinstance(target, (ast.Subscript, ast.Attribute))
                    else None
                )
                if base in closure:
                    return True
        elif (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in _MUTATING_METHODS
        ):
            base = _base_name(child.func.value)
            if base in closure:
                return True
    return False


# -- interprocedural fixpoint ------------------------------------------------

def _fixpoint(
    index: ProgramIndex, local: Mapping[str, set[Origin]]
) -> dict[str, dict[str, frozenset[Origin]]]:
    """Propagate effect origins to a fixpoint over the call graph.

    A plain worklist over the (small) program graph: monotone set union,
    so convergence is guaranteed; the deterministic iteration order makes
    the result — and hence the certificates — run-stable.
    """
    summaries: dict[str, dict[str, set[Origin]]] = {
        qualname: {category: set() for category in CATEGORIES}
        for qualname in index.functions
    }
    for qualname, origins in local.items():
        for origin in origins:
            summaries[qualname][origin.category].add(origin)
    changed = True
    while changed:
        changed = False
        for caller in sorted(index.edges):
            if caller not in summaries:
                continue
            caller_summary = summaries[caller]
            for callee, site in sorted(index.edges[caller].items()):
                callee_summary = summaries.get(callee)
                if callee_summary is None:
                    continue
                categories: Iterable[str] = (
                    CATEGORIES if site.to_return else _UNCONDITIONAL
                )
                for category in categories:
                    incoming = callee_summary[category]
                    if incoming - caller_summary[category]:
                        caller_summary[category] |= incoming
                        changed = True
    return {
        qualname: {
            category: frozenset(origins)
            for category, origins in by_category.items()
        }
        for qualname, by_category in summaries.items()
    }


_ANALYSIS_MEMO: dict[tuple, ProgramAnalysis] = {}
_ANALYSIS_MEMO_LIMIT = 4


def analyze_program(paths: Sequence[str | Path]) -> ProgramAnalysis:
    """Index ``paths`` and converge effect summaries (memoized on mtimes)."""
    from .engine import iter_python_files

    fingerprint = tuple(
        (str(file_path), file_path.stat().st_mtime_ns, file_path.stat().st_size)
        for file_path in iter_python_files([Path(p) for p in paths])
    )
    cached = _ANALYSIS_MEMO.get(fingerprint)
    if cached is not None:
        return cached
    index = build_program_index(paths)
    local: dict[str, set[Origin]] = {}
    alias_cache: dict[str, _ModuleAliases] = {}
    for qualname, fn in index.functions.items():
        module = index.modules.get(fn.module)
        if module is None:
            continue
        aliases = alias_cache.get(module.name)
        if aliases is None:
            aliases = alias_cache[module.name] = _ModuleAliases(module)
        local[qualname] = _local_effects(fn, module, aliases)
    analysis = ProgramAnalysis(index=index, summaries=_fixpoint(index, local))
    if len(_ANALYSIS_MEMO) >= _ANALYSIS_MEMO_LIMIT:
        _ANALYSIS_MEMO.pop(next(iter(_ANALYSIS_MEMO)))
    _ANALYSIS_MEMO[fingerprint] = analysis
    return analysis


# -- findings ----------------------------------------------------------------

@dataclass
class _RawFinding:
    """A pre-suppression finding with the ops it certifiably taints."""

    diagnostic: Diagnostic
    ops: tuple[str, ...]


def _severity(rule: str) -> Severity:
    return Severity(PROGRAM_RULES[rule]["severity"])


def _diag(
    rule: str, message: str, path: str, line: int, column: int = 0
) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        message=message,
        severity=_severity(rule),
        path=path,
        line=line,
        column=column,
        hint=PROGRAM_RULES[rule]["hint"],
    )


_CATEGORY_RULE = {
    WRITES_GLOBAL: "REP201",
    AMBIENT: "REP202",
    UNPICKLABLE: "REP203",
    UNORDERED: "REP205",
}

_CATEGORY_VERB = {
    WRITES_GLOBAL: "reaches a module-state write",
    AMBIENT: "reaches ambient nondeterminism",
    UNPICKLABLE: "may return an unpicklable value",
    UNORDERED: "lets unordered iteration reach its result",
}


def _chain(index: ProgramIndex, origin_fn: str, op_fn: str) -> str:
    path = index.call_path(op_fn, origin_fn)
    if not path or len(path) == 1:
        return ""
    names = [index.functions[q].short if q in index.functions else q for q in path]
    return " -> ".join(names)


def _op_effect_findings(analysis: ProgramAnalysis) -> list[_RawFinding]:
    """REP201/202/203/205 — one finding per effect origin, naming all ops."""
    index = analysis.index
    by_origin: dict[Origin, list[str]] = {}
    for op_name in sorted(index.ops):
        registration = index.ops[op_name]
        summary = analysis.effects_of(registration.function)
        for category in (WRITES_GLOBAL, AMBIENT, UNPICKLABLE, UNORDERED):
            for origin in summary.get(category, ()):
                by_origin.setdefault(origin, []).append(op_name)
    findings: list[_RawFinding] = []
    for origin in sorted(by_origin):
        ops = by_origin[origin]
        rule = _CATEGORY_RULE[origin.category]
        first_fn = index.ops[ops[0]].function
        chain = _chain(index, origin.function, first_fn)
        message = (
            f"task op{'s' if len(ops) > 1 else ''} "
            f"{', '.join(repr(op) for op in ops)} "
            f"{_CATEGORY_VERB[origin.category]}: {origin.description}"
        )
        if chain:
            message += f" [via {chain}]"
        findings.append(
            _RawFinding(
                diagnostic=_diag(rule, message, origin.path, origin.line),
                ops=tuple(ops),
            )
        )
    return findings


def _taskspec_findings(analysis: ProgramAnalysis) -> list[_RawFinding]:
    """REP203 — TaskSpec payloads holding callables for non-inline ops."""
    index = analysis.index
    findings: list[_RawFinding] = []
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        module = index.modules.get(fn.module)
        if module is None:
            continue
        for call in _taskspec_calls(fn.node):
            op_name = _taskspec_op(call)
            if op_name is None:
                continue
            registration = index.ops.get(op_name)
            if registration is not None and registration.inline_only:
                continue
            payload = _taskspec_params(call)
            if payload is None:
                continue
            for key, value in zip(payload.keys, payload.values):
                if isinstance(value, ast.Lambda):
                    label = (
                        repr(key.value) if isinstance(key, ast.Constant) else "<key>"
                    )
                    findings.append(
                        _RawFinding(
                            diagnostic=_diag(
                                "REP203",
                                f"TaskSpec for op {op_name!r} carries a lambda "
                                f"under params[{label}]; the payload cannot "
                                "cross a process boundary",
                                module.path,
                                value.lineno,
                            ),
                            ops=(op_name,) if registration else (),
                        )
                    )
    return findings


def _taskspec_calls(node: ast.AST):
    for child in _walk_same_function(node):
        if (
            isinstance(child, ast.Call)
            and (
                (isinstance(child.func, ast.Name) and child.func.id == "TaskSpec")
                or (
                    isinstance(child.func, ast.Attribute)
                    and child.func.attr == "TaskSpec"
                )
            )
        ):
            yield child


def _taskspec_op(call: ast.Call) -> str | None:
    for keyword in call.keywords:
        if keyword.arg == "op" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            return value if isinstance(value, str) else None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        value = call.args[1].value
        return value if isinstance(value, str) else None
    return None


def _taskspec_params(call: ast.Call) -> ast.Dict | None:
    for keyword in call.keywords:
        if keyword.arg == "params" and isinstance(keyword.value, ast.Dict):
            return keyword.value
    if len(call.args) >= 3 and isinstance(call.args[2], ast.Dict):
        return call.args[2]
    return None


def _cache_key_findings(analysis: ProgramAnalysis) -> list[_RawFinding]:
    """REP204 — executor-seed dependence and pinned-epoch cache keys."""
    index = analysis.index
    findings: list[_RawFinding] = []
    for op_name in sorted(index.ops):
        registration = index.ops[op_name]
        fn = index.functions.get(registration.function)
        if fn is None or isinstance(fn.node, ast.Lambda):
            continue
        arguments = fn.node.args
        positional = [*arguments.posonlyargs, *arguments.args]
        if len(positional) < 3:
            continue
        seed_param = positional[2].arg
        if seed_param in returned_name_closure(fn.node):
            findings.append(
                _RawFinding(
                    diagnostic=_diag(
                        "REP204",
                        f"task op {op_name!r} result depends on the executor "
                        f"seed argument {seed_param!r}, which is not part of "
                        "its ResultCache key; thread the seed through params "
                        "(with_seed) instead",
                        fn.path,
                        fn.line,
                    ),
                    ops=(op_name,),
                )
            )
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        module = index.modules.get(fn.module)
        if module is None:
            continue
        for call in _walk_same_function(fn.node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            is_cache_key = (
                isinstance(func, ast.Name) and func.id == "CacheKey"
            ) or (isinstance(func, ast.Attribute) and func.attr == "CacheKey")
            if not is_cache_key:
                continue
            for keyword in call.keywords:
                if keyword.arg == "epoch" and isinstance(
                    keyword.value, ast.Constant
                ):
                    findings.append(
                        _RawFinding(
                            diagnostic=_diag(
                                "REP204",
                                "CacheKey constructed with a literal epoch "
                                f"({keyword.value.value!r}); pinning the epoch "
                                "bypasses CODE_EPOCH sensitivity and lets "
                                "stale cache entries satisfy new code",
                                module.path,
                                call.lineno,
                            ),
                            ops=(),
                        )
                    )
    return findings


def _inline_reach_findings(analysis: ProgramAnalysis) -> list[_RawFinding]:
    """REP206 — a parallel-eligible op whose call graph hits an inline op."""
    index = analysis.index
    inline_functions = {
        registration.function: name
        for name, registration in index.ops.items()
        if registration.inline_only
    }
    findings: list[_RawFinding] = []
    for op_name in sorted(index.ops):
        registration = index.ops[op_name]
        if registration.inline_only:
            continue
        reached = index.reachable([registration.function]) & set(inline_functions)
        for inline_fn in sorted(reached):
            inline_name = inline_functions[inline_fn]
            chain = _chain(index, inline_fn, registration.function)
            message = (
                f"parallel-eligible op {op_name!r} reaches inline-only op "
                f"{inline_name!r}; the executor cannot honor inline_only "
                "inside a worker process"
            )
            if chain:
                message += f" [via {chain}]"
            findings.append(
                _RawFinding(
                    diagnostic=_diag(
                        "REP206", message, registration.path, registration.line
                    ),
                    ops=(op_name,),
                )
            )
    return findings


# -- suppressions & waivers --------------------------------------------------

@dataclass(frozen=True)
class Waiver:
    """One audited (or unaudited) REP2xx disable comment that fired."""

    rule: str
    path: str
    line: int
    justification: str
    ops: tuple[str, ...]


def _file_suppressions(
    source: str,
    known_ids: frozenset[str] = PROGRAM_RULE_IDS,
) -> dict[int, tuple[set[str], str]]:
    """line -> (suppressed ids among ``known_ids``, text after ``--``).

    Shared by the Layer 4 (REP2xx) and Layer 5 (REP3xx) passes: both apply
    their own waivers because their findings are whole-program, not
    per-file, and both audit justification-less waivers (REP200/REP300).
    """
    table: dict[int, tuple[set[str], str]] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_PATTERN.search(line)
        if match is None:
            continue
        ids = {
            token.strip()
            for token in match.group(1).split(",")
            if token.strip() in known_ids
        }
        if not ids:
            continue
        remainder = line[match.end():].lstrip()
        justification = remainder[2:].strip() if remainder.startswith("--") else ""
        table[line_number] = (ids, justification)
    return table


def _apply_program_suppressions(
    analysis: ProgramAnalysis, raw: list[_RawFinding]
) -> tuple[list[_RawFinding], list[Waiver], list[Diagnostic]]:
    """Split raw findings into (surviving, waived, REP200 audit warnings)."""
    suppression_cache: dict[str, dict[int, tuple[set[str], str]]] = {}
    surviving: list[_RawFinding] = []
    waivers: list[Waiver] = []
    unaudited: dict[tuple[str, int], Diagnostic] = {}
    sources = {
        module.path: module.source for module in analysis.index.modules.values()
    }
    for finding in raw:
        diagnostic = finding.diagnostic
        table = suppression_cache.get(diagnostic.path)
        if table is None:
            source = sources.get(diagnostic.path)
            table = _file_suppressions(source) if source is not None else {}
            suppression_cache[diagnostic.path] = table
        entry = table.get(diagnostic.line)
        if entry is None or diagnostic.rule not in entry[0]:
            surviving.append(finding)
            continue
        ids, justification = entry
        waivers.append(
            Waiver(
                rule=diagnostic.rule,
                path=diagnostic.path,
                line=diagnostic.line,
                justification=justification,
                ops=finding.ops,
            )
        )
        if not justification:
            key = (diagnostic.path, diagnostic.line)
            unaudited.setdefault(
                key,
                _diag(
                    "REP200",
                    f"waiver for {', '.join(sorted(ids))} has no justification; "
                    "append ` -- <reason>` so the audit trail explains why "
                    "the effect is safe",
                    diagnostic.path,
                    diagnostic.line,
                ),
            )
    return surviving, waivers, list(unaudited.values())


# -- public pass -------------------------------------------------------------

def _raw_findings(analysis: ProgramAnalysis) -> list[_RawFinding]:
    return [
        *_op_effect_findings(analysis),
        *_taskspec_findings(analysis),
        *_cache_key_findings(analysis),
        *_inline_reach_findings(analysis),
    ]


def check_parallel_safety(
    paths: Sequence[str | Path], select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the Layer 4 pass over ``paths`` and return surviving findings.

    ``select`` narrows to specific REP2xx ids (already expanded by the
    caller); ``None`` runs all of them.  Waived findings are dropped, but
    an unjustified waiver surfaces as REP200 — zero unaudited waivers is
    part of the strict-mode contract.
    """
    analysis = analyze_program(paths)
    surviving, _waivers, audit = _apply_program_suppressions(
        analysis, _raw_findings(analysis)
    )
    findings = [finding.diagnostic for finding in surviving] + audit
    if select is not None:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    return findings


# -- certificates ------------------------------------------------------------

CERTIFICATE_SCHEMA = "repro.lint/op-certificates@2"

VERDICT_CERTIFIED = "certified"
VERDICT_INLINE_ONLY = "inline-only"
VERDICT_UNCERTIFIED = "uncertified"


def op_certificates(paths: Sequence[str | Path]) -> dict[str, Any]:
    """Per-op effect summaries + shipping verdicts, as a JSON-able dict.

    The verdict a distributed scheduler consumes: ``certified`` ops are
    safe to ship to a worker over the shared ResultCache, ``inline-only``
    ops must stay in the coordinator, ``uncertified`` ops have at least
    one unwaived REP2xx finding and must not be shipped at all.  Since
    schema ``@2`` every op also carries a ``crash_safety`` block — the
    Layer 5 (REP3xx) verdict over the same reachable set, so one file
    answers both "can this op run in parallel" and "can it die mid-write".
    Contains no timestamps, hostnames or git state — regeneration over the
    same tree is byte-identical.
    """
    # Late import: resources imports helpers from this module, so the
    # dependency must point resources -> purity only at module load.
    from .resources import analyze_resources, crash_safety_by_op

    analysis = analyze_program(paths)
    crash_safety = crash_safety_by_op(analyze_resources(analysis.index))
    surviving, waivers, audit = _apply_program_suppressions(
        analysis, _raw_findings(analysis)
    )
    tainted: dict[str, list[str]] = {}
    for finding in surviving:
        for op_name in finding.ops:
            tainted.setdefault(op_name, []).append(
                f"{finding.diagnostic.rule}: {finding.diagnostic.message}"
            )
    ops: dict[str, Any] = {}
    for op_name in sorted(analysis.index.ops):
        registration = analysis.index.ops[op_name]
        summary = analysis.effects_of(registration.function)
        effects = {
            category: [
                origin.to_dict()
                for origin in sorted(summary.get(category, ()))
            ]
            for category in CATEGORIES
            if summary.get(category)
        }
        op_waivers = [
            {
                "rule": waiver.rule,
                "path": _portable_path(waiver.path),
                "line": waiver.line,
                "justification": waiver.justification,
            }
            for waiver in sorted(
                (w for w in waivers if op_name in w.ops),
                key=lambda w: (w.path, w.line, w.rule),
            )
        ]
        if registration.inline_only:
            verdict = VERDICT_INLINE_ONLY
        elif tainted.get(op_name):
            verdict = VERDICT_UNCERTIFIED
        else:
            verdict = VERDICT_CERTIFIED
        ops[op_name] = {
            "function": registration.function,
            "path": _portable_path(registration.path),
            "line": registration.line,
            "inline_only": registration.inline_only,
            "effects": effects,
            "waivers": op_waivers,
            "findings": sorted(tainted.get(op_name, [])),
            "verdict": verdict,
            "crash_safety": crash_safety.get(op_name, {}),
        }
    return {
        "schema": CERTIFICATE_SCHEMA,
        "ops": ops,
        "unaudited_waivers": len(audit),
    }


def render_certificates(certificates: Mapping[str, Any]) -> str:
    """Canonical byte-stable rendering (sorted keys, fixed indent)."""
    return json.dumps(certificates, indent=2, sort_keys=True) + "\n"


def write_op_certificates(
    paths: Sequence[str | Path], output: str | Path
) -> dict[str, Any]:
    """Generate certificates for ``paths`` and write them to ``output``."""
    # Late import: repro.utility's package init reaches back into lint.api
    # via the anonymize engine, so lint modules must not import it at top.
    from ..utility.atomic import atomic_write_text

    certificates = op_certificates(paths)
    atomic_write_text(output, render_certificates(certificates))
    return certificates
