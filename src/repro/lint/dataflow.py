"""Layer 3 dataflow machinery: per-function CFGs and taint fixpoints.

This module is the *mechanism* half of the taint analysis: it builds a
statement-level control-flow graph for one function, runs a forward
may-taint dataflow to a fixpoint over it, and evaluates expression taint
with strong updates on assignment.  The *policy* half — what counts as a
source, a sanitizer or a sink for the anonymizer boundary — lives in
:mod:`repro.lint.taint` and is injected through :class:`TaintPolicy`.

The abstract state maps variable names to frozensets of taint tags; the
join at CFG merge points is key-wise union, so the analysis computes the
standard MFP solution of a monotone framework over a finite lattice and
always terminates.  Transfer functions cover plain and annotated
assignment, augmented assignment, tuple/list unpacking (arity-precise
when the right-hand side is a matching literal), walrus bindings
(including their PEP 572 escape from comprehension scopes), ``for``
targets, ``with`` aliases and comprehension generator variables.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

Taint = frozenset[str]
Env = dict[str, Taint]

EMPTY: Taint = frozenset()


@dataclass
class Block:
    """One basic block: straight-line statements plus successor edges.

    Compound statements appear as *header* entries — the transfer function
    of an ``ast.If`` evaluates only its test, the bodies live in successor
    blocks.  ``exc_successors`` is populated only by the exception-aware
    builder (:func:`build_exception_cfg`): blocks a raising statement may
    transfer control *from*, carrying the block's **entry** state (the
    raising statement never completed, so its effects have not happened).
    """

    id: int
    statements: list[ast.AST] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    exc_successors: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    blocks: dict[int, Block]
    entry: int

    def successors(self, block_id: int) -> list[int]:
        """Successor block ids of ``block_id``."""
        return self.blocks[block_id].successors


class _CFGBuilder:
    """Builds a :class:`CFG` from a statement list.

    ``break``/``continue`` targets are kept on explicit stacks; ``try``
    bodies get conservative edges into every handler (any statement of the
    body may raise), which is sound for a may-taint analysis.
    """

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self._next_id = 0

    def new_block(self) -> Block:
        block = Block(self._next_id)
        self._next_id += 1
        self.blocks[block.id] = block
        return block

    def edge(self, source: Block, target: Block) -> None:
        if target.id not in source.successors:
            source.successors.append(target.id)

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self.new_block()
        exit_block = self.visit_body(body, entry, [], [])
        # The trailing block may be empty; that is fine — it is the
        # function's implicit fall-through exit.
        del exit_block
        return CFG(self.blocks, entry.id)

    def visit_body(
        self,
        body: Sequence[ast.stmt],
        current: Block,
        break_targets: list[Block],
        continue_targets: list[Block],
    ) -> Block:
        """Thread ``body`` onto ``current``; return the live tail block."""
        for statement in body:
            current = self.visit_statement(
                statement, current, break_targets, continue_targets
            )
        return current

    def visit_statement(
        self,
        statement: ast.stmt,
        current: Block,
        break_targets: list[Block],
        continue_targets: list[Block],
    ) -> Block:
        if isinstance(statement, ast.If):
            current.statements.append(statement)
            join = self.new_block()
            then_entry = self.new_block()
            self.edge(current, then_entry)
            then_tail = self.visit_body(
                statement.body, then_entry, break_targets, continue_targets
            )
            self.edge(then_tail, join)
            if statement.orelse:
                else_entry = self.new_block()
                self.edge(current, else_entry)
                else_tail = self.visit_body(
                    statement.orelse, else_entry, break_targets, continue_targets
                )
                self.edge(else_tail, join)
            else:
                self.edge(current, join)
            return join
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            header = self.new_block()
            header.statements.append(statement)
            self.edge(current, header)
            after = self.new_block()
            body_entry = self.new_block()
            self.edge(header, body_entry)
            self.edge(header, after)
            body_tail = self.visit_body(
                statement.body,
                body_entry,
                break_targets + [after],
                continue_targets + [header],
            )
            self.edge(body_tail, header)
            if statement.orelse:
                else_entry = self.new_block()
                self.edge(header, else_entry)
                else_tail = self.visit_body(
                    statement.orelse, else_entry, break_targets, continue_targets
                )
                self.edge(else_tail, after)
            return after
        if isinstance(statement, ast.Try):
            after = self.new_block()
            body_entry = self.new_block()
            self.edge(current, body_entry)
            before_ids = set(self.blocks)
            body_tail = self.visit_body(
                statement.body, body_entry, break_targets, continue_targets
            )
            orelse_tail = self.visit_body(
                statement.orelse, body_tail, break_targets, continue_targets
            )
            body_block_ids = (set(self.blocks) - before_ids) | {body_entry.id}
            handler_tails = []
            for handler in statement.handlers:
                handler_entry = self.new_block()
                if handler.name:
                    # Bind `except E as name` — modeled as an opaque
                    # (untainted) binding by the transfer function.
                    handler_entry.statements.append(handler)
                for block_id in body_block_ids:
                    self.edge(self.blocks[block_id], handler_entry)
                handler_tails.append(
                    self.visit_body(
                        handler.body, handler_entry, break_targets, continue_targets
                    )
                )
            if statement.finalbody:
                final_entry = self.new_block()
                self.edge(orelse_tail, final_entry)
                for tail in handler_tails:
                    self.edge(tail, final_entry)
                final_tail = self.visit_body(
                    statement.finalbody, final_entry, break_targets, continue_targets
                )
                self.edge(final_tail, after)
            else:
                self.edge(orelse_tail, after)
                for tail in handler_tails:
                    self.edge(tail, after)
            return after
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            current.statements.append(statement)
            return self.visit_body(
                statement.body, current, break_targets, continue_targets
            )
        if isinstance(statement, ast.Match):
            current.statements.append(statement)
            join = self.new_block()
            self.edge(current, join)  # no case may match
            for case in statement.cases:
                case_entry = self.new_block()
                self.edge(current, case_entry)
                case_tail = self.visit_body(
                    case.body, case_entry, break_targets, continue_targets
                )
                self.edge(case_tail, join)
            return join
        if isinstance(statement, (ast.Break, ast.Continue)):
            targets = break_targets if isinstance(statement, ast.Break) else (
                continue_targets
            )
            if targets:
                self.edge(current, targets[-1])
            return self.new_block()  # unreachable continuation
        if isinstance(statement, (ast.Return, ast.Raise)):
            current.statements.append(statement)
            return self.new_block()  # unreachable continuation
        current.statements.append(statement)
        return current


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """The statement-level CFG of one function body."""
    return _CFGBuilder().build(body)


# -- exception-aware CFG (Layer 5) -------------------------------------------

@dataclass
class ExceptionCFG(CFG):
    """A CFG with explicit exceptional flow and two distinguished exits.

    ``normal_exit`` is where fall-through and ``return`` paths end;
    ``raise_exit`` is where an exception leaving the function ends.  A
    resource held at either exit was not released on that path.
    """

    normal_exit: int = -1
    raise_exit: int = -1


def statement_may_raise(statement: ast.AST) -> bool:
    """Whether a statement can transfer control to an exception landing.

    Conservative-but-focused default: any statement containing a call,
    an explicit ``raise``, an ``assert``, an ``await``, a ``yield`` (the
    caller may throw into a generator — exactly how ``@contextmanager``
    cleanup blocks fire) or a subscript may raise.  Plain name/constant
    moves cannot (in any way the resource analysis cares about), which
    keeps blocks coarse.
    """
    for node in ast.walk(statement):
        if isinstance(
            node,
            (
                ast.Call,
                ast.Raise,
                ast.Assert,
                ast.Await,
                ast.Yield,
                ast.YieldFrom,
                ast.Subscript,
            ),
        ):
            return True
    return False


def _raise_probe(statement: ast.AST) -> list[ast.AST]:
    """The nodes whose raising makes *this* statement's exception edge.

    For a compound statement only the header can raise "as" the statement
    — body statements get their own blocks and their own edges — so
    probing the whole subtree would smear a body raise onto the header's
    entry state (e.g. a ``yield`` inside a ``with`` flagging the ``with``
    itself, whose context manager guarantees cleanup past that point).
    """
    if isinstance(statement, (ast.If, ast.While)):
        return [statement.test]
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return [statement.iter]
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in statement.items]
    if isinstance(statement, ast.Match):
        return [statement.subject]
    return [statement]


def _handler_catches_all(handler: ast.ExceptHandler) -> bool:
    """Whether an ``except`` clause matches every exception.

    A bare ``except:`` or ``except BaseException`` literally does; we also
    treat ``except Exception`` as catch-all — the escapees
    (``KeyboardInterrupt``, ``SystemExit``) abort the process, where
    resource lifecycle findings would be pure noise.
    """
    if handler.type is None:
        return True
    node = handler.type
    name = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else None
    )
    return name in ("BaseException", "Exception")


def _with_suppresses(statement: ast.With | ast.AsyncWith) -> bool:
    """Whether a ``with`` uses a known exception-swallowing manager.

    Recognizes ``contextlib.suppress(...)`` under its usual spellings; a
    suppressing ``with`` routes body exceptions to the statement's own
    continuation instead of outward.
    """
    for item in statement.items:
        call = item.context_expr
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "suppress":
            return True
    return False


class _ExceptionCFGBuilder(_CFGBuilder):
    """CFG builder that threads exceptional flow.

    Every may-raise statement *starts* its own block so the block's entry
    state is exactly the program state at the moment of the (potential)
    raise; exception edges therefore soundly model partial execution.
    ``try`` bodies raise into a per-``try`` dispatch block that fans out
    to every handler *and* the outer landing (the exception may match no
    handler); handler and ``else`` bodies raise past the handlers to the
    outer landing; ``finally`` runs on both the fall-through and the
    re-raise path, so its tail edges to both continuations.  ``return``
    routes through the innermost pending ``finally``.
    """

    def __init__(self, may_raise=statement_may_raise) -> None:
        super().__init__()
        self.may_raise = may_raise
        self._landing: list[Block] = []
        self._finally: list[Block] = []
        self.normal_exit: Block | None = None
        self.raise_exit: Block | None = None

    def build(self, body: Sequence[ast.stmt]) -> ExceptionCFG:
        entry = self.new_block()
        self.normal_exit = self.new_block()
        self.raise_exit = self.new_block()
        self._landing = [self.raise_exit]
        tail = self.visit_body(body, entry, [], [])
        self.edge(tail, self.normal_exit)
        return ExceptionCFG(
            self.blocks,
            entry.id,
            normal_exit=self.normal_exit.id,
            raise_exit=self.raise_exit.id,
        )

    def exc_edge(self, source: Block, target: Block) -> None:
        if target.id not in source.exc_successors:
            source.exc_successors.append(target.id)

    def _place(self, statement: ast.AST, current: Block) -> Block:
        """The block ``statement`` lives in, split so raisers start blocks."""
        if any(self.may_raise(probe) for probe in _raise_probe(statement)):
            if current.statements:
                split = self.new_block()
                self.edge(current, split)
                current = split
            current.statements.append(statement)
            self.exc_edge(current, self._landing[-1])
            return current
        current.statements.append(statement)
        return current

    def visit_statement(
        self,
        statement: ast.stmt,
        current: Block,
        break_targets: list[Block],
        continue_targets: list[Block],
    ) -> Block:
        if isinstance(statement, ast.If):
            current = self._place(statement, current)
            join = self.new_block()
            then_entry = self.new_block()
            self.edge(current, then_entry)
            then_tail = self.visit_body(
                statement.body, then_entry, break_targets, continue_targets
            )
            self.edge(then_tail, join)
            if statement.orelse:
                else_entry = self.new_block()
                self.edge(current, else_entry)
                else_tail = self.visit_body(
                    statement.orelse, else_entry, break_targets, continue_targets
                )
                self.edge(else_tail, join)
            else:
                self.edge(current, join)
            return join
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            header = self.new_block()
            self.edge(current, header)
            header = self._place(statement, header)
            after = self.new_block()
            body_entry = self.new_block()
            self.edge(header, body_entry)
            self.edge(header, after)
            body_tail = self.visit_body(
                statement.body,
                body_entry,
                break_targets + [after],
                continue_targets + [header],
            )
            self.edge(body_tail, header)
            if statement.orelse:
                else_entry = self.new_block()
                self.edge(header, else_entry)
                else_tail = self.visit_body(
                    statement.orelse, else_entry, break_targets, continue_targets
                )
                self.edge(else_tail, after)
            return after
        if isinstance(statement, ast.Try):
            after = self.new_block()
            final_entry = self.new_block() if statement.finalbody else None
            outer = final_entry if final_entry is not None else self._landing[-1]
            dispatch = self.new_block()
            # Unmatched exception types propagate past every handler —
            # unless some handler is a catch-all, which matches them all.
            if not any(_handler_catches_all(h) for h in statement.handlers):
                self.edge(dispatch, outer)
            if final_entry is not None:
                self._finally.append(final_entry)
            body_entry = self.new_block()
            self.edge(current, body_entry)
            self._landing.append(dispatch)
            body_tail = self.visit_body(
                statement.body, body_entry, break_targets, continue_targets
            )
            self._landing.pop()
            # The else clause runs only after an exception-free body; its
            # own exceptions skip this try's handlers.
            self._landing.append(outer)
            orelse_tail = self.visit_body(
                statement.orelse, body_tail, break_targets, continue_targets
            )
            handler_tails = []
            for handler in statement.handlers:
                handler_entry = self.new_block()
                if handler.name:
                    handler_entry.statements.append(handler)
                self.edge(dispatch, handler_entry)
                handler_tails.append(
                    self.visit_body(
                        handler.body, handler_entry, break_targets, continue_targets
                    )
                )
            self._landing.pop()
            if final_entry is not None:
                self._finally.pop()
                self.edge(orelse_tail, final_entry)
                for tail in handler_tails:
                    self.edge(tail, final_entry)
                final_tail = self.visit_body(
                    statement.finalbody, final_entry, break_targets, continue_targets
                )
                self.edge(final_tail, after)
                # Entered exceptionally, the finally re-raises on exit.
                self.edge(final_tail, self._landing[-1])
            else:
                self.edge(orelse_tail, after)
                for tail in handler_tails:
                    self.edge(tail, after)
            return after
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            current = self._place(statement, current)
            if _with_suppresses(statement):
                after = self.new_block()
                self._landing.append(after)
                tail = self.visit_body(
                    statement.body, current, break_targets, continue_targets
                )
                self._landing.pop()
                self.edge(tail, after)
                return after
            return self.visit_body(
                statement.body, current, break_targets, continue_targets
            )
        if isinstance(statement, ast.Match):
            current = self._place(statement, current)
            join = self.new_block()
            self.edge(current, join)  # no case may match
            for case in statement.cases:
                case_entry = self.new_block()
                self.edge(current, case_entry)
                case_tail = self.visit_body(
                    case.body, case_entry, break_targets, continue_targets
                )
                self.edge(case_tail, join)
            return join
        if isinstance(statement, (ast.Break, ast.Continue)):
            targets = break_targets if isinstance(statement, ast.Break) else (
                continue_targets
            )
            if targets:
                self.edge(current, targets[-1])
            return self.new_block()  # unreachable continuation
        if isinstance(statement, ast.Return):
            current = self._place(statement, current)
            assert self.normal_exit is not None
            target = self._finally[-1] if self._finally else self.normal_exit
            self.edge(current, target)
            return self.new_block()  # unreachable continuation
        if isinstance(statement, ast.Raise):
            self._place(statement, current)
            return self.new_block()  # unreachable continuation
        return self._place(statement, current)


def build_exception_cfg(
    body: Sequence[ast.stmt], may_raise=statement_may_raise
) -> ExceptionCFG:
    """The exception-aware CFG of one function body.

    ``may_raise`` decides which statements get exception edges; the
    resource analysis narrows it so that a bare release call (``f.close()``
    inside a ``finally``) does not spuriously raise with the resource
    still held.
    """
    return _ExceptionCFGBuilder(may_raise=may_raise).build(body)


@dataclass(frozen=True)
class SinkHit:
    """Tainted data reached a sink call."""

    node: ast.AST
    kind: str
    tags: Taint


@dataclass(frozen=True)
class LocalCallArg:
    """A call to a module-local function passed a tainted argument."""

    callee: str
    param: str
    tags: Taint
    node: ast.AST


@dataclass
class FunctionDataflow:
    """Everything one fixpoint run learned about a function."""

    return_taint: Taint = EMPTY
    sink_hits: list[SinkHit] = field(default_factory=list)
    call_args: list[LocalCallArg] = field(default_factory=list)


class TaintPolicy:
    """Policy hooks the evaluator consults; override in the taint layer.

    The defaults make every hook a no-op, yielding a pure propagation
    analysis with no sources, sanitizers or sinks.
    """

    def source_call(self, node: ast.Call) -> Taint | None:
        """Taint introduced by a call (``None`` when not a source)."""
        return None

    def source_attribute(self, node: ast.Attribute) -> Taint | None:
        """Taint introduced by an attribute read (``None`` when not)."""
        return None

    def iteration_taint(self, node: ast.expr, env: Env) -> Taint:
        """Extra taint of *elements* when iterating ``node``."""
        return EMPTY

    def is_sanitizer(self, node: ast.Call) -> bool:
        """Whether the call is part of the sanctioned recoding surface."""
        return False

    def is_safe_call(self, node: ast.Call) -> bool:
        """Whether the call's result is value-free (``len`` and friends)."""
        return False

    def sink_kind(self, node: ast.Call) -> str | None:
        """The sink category of a call, or ``None``."""
        return None

    def local_call(
        self, node: ast.Call, arg_taints: Mapping[str, Taint]
    ) -> Taint | None:
        """Result taint via a module-local summary (``None`` = unresolved).

        ``arg_taints`` maps callee parameter names to the taint of the
        argument bound to them at this site.
        """
        return None

    def local_params(self, node: ast.Call) -> list[str] | None:
        """Callee parameter names for binding, or ``None`` if unresolved."""
        return None


def join_envs(envs: Iterable[Env]) -> Env:
    """Key-wise union of several abstract states."""
    joined: Env = {}
    for env in envs:
        for name, tags in env.items():
            if tags:
                joined[name] = joined.get(name, EMPTY) | tags
    return joined


def _env_le(small: Env, big: Env) -> bool:
    return all(tags <= big.get(name, EMPTY) for name, tags in small.items())


class TaintInterpreter:
    """Evaluates expression taint and applies statement transfers.

    One interpreter instance is shared across a whole fixpoint run so it
    can accumulate :class:`SinkHit` / :class:`LocalCallArg` records; the
    per-block environment is passed in explicitly.
    """

    def __init__(self, policy: TaintPolicy, result: FunctionDataflow):
        self.policy = policy
        self.result = result

    # -- expressions --------------------------------------------------------

    def eval(self, node: ast.expr | None, env: Env) -> Taint:
        """The taint of ``node`` under ``env`` (records sink hits)."""
        if node is None:
            return EMPTY
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node, env)
        # Unknown expression kind: union of child expression taints.
        tags = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                tags |= self.eval(child, env)
        return tags

    def _eval_Name(self, node: ast.Name, env: Env) -> Taint:
        return env.get(node.id, EMPTY)

    def _eval_Constant(self, node: ast.Constant, env: Env) -> Taint:
        return EMPTY

    def _eval_JoinedStr(self, node: ast.JoinedStr, env: Env) -> Taint:
        tags = EMPTY
        for value in node.values:
            tags |= self.eval(value, env)
        return tags

    def _eval_FormattedValue(self, node: ast.FormattedValue, env: Env) -> Taint:
        return self.eval(node.value, env)

    def _eval_BinOp(self, node: ast.BinOp, env: Env) -> Taint:
        return self.eval(node.left, env) | self.eval(node.right, env)

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Env) -> Taint:
        return self.eval(node.operand, env)

    def _eval_BoolOp(self, node: ast.BoolOp, env: Env) -> Taint:
        tags = EMPTY
        for value in node.values:
            tags |= self.eval(value, env)
        return tags

    def _eval_Compare(self, node: ast.Compare, env: Env) -> Taint:
        # Evaluate operands for their side effects (walrus bindings, sink
        # calls) but treat the boolean result as value-free.
        self.eval(node.left, env)
        for comparator in node.comparators:
            self.eval(comparator, env)
        return EMPTY

    def _eval_IfExp(self, node: ast.IfExp, env: Env) -> Taint:
        self.eval(node.test, env)
        return self.eval(node.body, env) | self.eval(node.orelse, env)

    def _eval_Tuple(self, node: ast.Tuple, env: Env) -> Taint:
        return self._eval_elements(node.elts, env)

    def _eval_List(self, node: ast.List, env: Env) -> Taint:
        return self._eval_elements(node.elts, env)

    def _eval_Set(self, node: ast.Set, env: Env) -> Taint:
        return self._eval_elements(node.elts, env)

    def _eval_elements(self, elements: Sequence[ast.expr], env: Env) -> Taint:
        tags = EMPTY
        for element in elements:
            tags |= self.eval(element, env)
        return tags

    def _eval_Dict(self, node: ast.Dict, env: Env) -> Taint:
        tags = EMPTY
        for key in node.keys:
            if key is not None:
                tags |= self.eval(key, env)
        for value in node.values:
            tags |= self.eval(value, env)
        return tags

    def _eval_Starred(self, node: ast.Starred, env: Env) -> Taint:
        return self.eval(node.value, env)

    def _eval_Subscript(self, node: ast.Subscript, env: Env) -> Taint:
        base = self.eval(node.value, env)
        self.eval(node.slice, env)  # indices are value-free, but may bind
        return base | self.policy.iteration_taint(node.value, env)

    def _eval_Slice(self, node: ast.Slice, env: Env) -> Taint:
        self.eval(node.lower, env)
        self.eval(node.upper, env)
        self.eval(node.step, env)
        return EMPTY

    def _eval_Attribute(self, node: ast.Attribute, env: Env) -> Taint:
        source = self.policy.source_attribute(node)
        base = self.eval(node.value, env)
        return base | (source or EMPTY)

    def _eval_Await(self, node: ast.Await, env: Env) -> Taint:
        return self.eval(node.value, env)

    def _eval_Yield(self, node: ast.Yield, env: Env) -> Taint:
        return self.eval(node.value, env)

    def _eval_YieldFrom(self, node: ast.YieldFrom, env: Env) -> Taint:
        return self.eval(node.value, env)

    def _eval_Lambda(self, node: ast.Lambda, env: Env) -> Taint:
        return EMPTY  # a function object; its body runs elsewhere

    def _eval_NamedExpr(self, node: ast.NamedExpr, env: Env) -> Taint:
        tags = self.eval(node.value, env)
        self.bind(node.target, tags, env, value_node=node.value)
        return tags

    def _eval_Call(self, node: ast.Call, env: Env) -> Taint:
        positional = [self.eval(arg, env) for arg in node.args]
        keyword = {
            kw.arg: self.eval(kw.value, env)
            for kw in node.keywords
        }
        arg_union = EMPTY
        for tags in positional:
            arg_union |= tags
        for tags in keyword.values():
            arg_union |= tags

        kind = self.policy.sink_kind(node)
        if kind is not None and arg_union:
            self.result.sink_hits.append(SinkHit(node, kind, arg_union))

        # Seed module-local callees even when the call is a sanitizer: a
        # sanitizer cleans its *return* value, but the raw argument still
        # flows into the callee's own body and may leak from there.
        params = self.policy.local_params(node)
        summary = None
        if params is not None:
            bound = self._bind_arguments(params, node, positional, keyword)
            for param, tags in bound.items():
                if tags:
                    callee = _call_name(node)
                    self.result.call_args.append(
                        LocalCallArg(callee or "?", param, tags, node)
                    )
            summary = self.policy.local_call(node, bound)

        if self.policy.is_sanitizer(node):
            return EMPTY
        source = self.policy.source_call(node)
        if source is not None:
            return source
        if self.policy.is_safe_call(node):
            return EMPTY
        if summary is not None:
            return summary

        receiver = EMPTY
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func, env)
        return arg_union | receiver

    @staticmethod
    def _bind_arguments(
        params: Sequence[str],
        node: ast.Call,
        positional: Sequence[Taint],
        keyword: Mapping[str | None, Taint],
    ) -> dict[str, Taint]:
        names = list(params)
        if names and names[0] in ("self", "cls") and isinstance(
            node.func, ast.Attribute
        ):
            names = names[1:]
        bound: dict[str, Taint] = {}
        for name, tags in zip(names, positional):
            bound[name] = tags
        for name, tags in keyword.items():
            if name is not None and name in params:
                bound[name] = bound.get(name, EMPTY) | tags
        return bound

    def _bind_loop_target(
        self, target: ast.expr, iter_node: ast.expr, env: Env
    ) -> None:
        """Bind a loop target to the element taint of ``iter_node``.

        ``enumerate``/``zip`` over a tuple target are unpacked precisely so
        a clean loop index never inherits the taint of the rows it counts.
        """
        if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name):
            elements = (
                target.elts if isinstance(target, (ast.Tuple, ast.List)) else None
            )
            clean = elements is not None and not any(
                isinstance(e, ast.Starred) for e in elements
            )
            if (
                iter_node.func.id == "enumerate"
                and clean
                and len(elements) == 2
                and iter_node.args
            ):
                self.bind(elements[0], EMPTY, env)
                self._bind_loop_target(elements[1], iter_node.args[0], env)
                return
            if (
                iter_node.func.id == "zip"
                and clean
                and len(elements) == len(iter_node.args)
                and iter_node.args
                and not any(isinstance(a, ast.Starred) for a in iter_node.args)
            ):
                for element, arg in zip(elements, iter_node.args):
                    self._bind_loop_target(element, arg, env)
                return
        tags = self.eval(iter_node, env) | self.policy.iteration_taint(
            iter_node, env
        )
        self.bind(target, tags, env)

    def _eval_comprehension(
        self, generators: Sequence[ast.comprehension], env: Env
    ) -> Env:
        """A child scope with generator targets bound (PEP 572 aware)."""
        scoped = dict(env)
        for generator in generators:
            self._bind_loop_target(generator.target, generator.iter, scoped)
            for condition in generator.ifs:
                self.eval(condition, scoped)
        return scoped

    def _comp_targets(self, generators: Sequence[ast.comprehension]) -> set[str]:
        names: set[str] = set()
        for generator in generators:
            for node in ast.walk(generator.target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        return names

    def _finish_comprehension(
        self,
        node: ast.expr,
        generators: Sequence[ast.comprehension],
        scoped: Env,
        env: Env,
    ) -> None:
        """Propagate walrus bindings out of the comprehension scope."""
        targets = self._comp_targets(generators)
        for name, tags in scoped.items():
            if name not in targets and env.get(name, EMPTY) != tags:
                env[name] = tags

    def _eval_ListComp(self, node: ast.ListComp, env: Env) -> Taint:
        scoped = self._eval_comprehension(node.generators, env)
        tags = self.eval(node.elt, scoped)
        self._finish_comprehension(node, node.generators, scoped, env)
        return tags

    _eval_SetComp = _eval_ListComp
    _eval_GeneratorExp = _eval_ListComp

    def _eval_DictComp(self, node: ast.DictComp, env: Env) -> Taint:
        scoped = self._eval_comprehension(node.generators, env)
        tags = self.eval(node.key, scoped) | self.eval(node.value, scoped)
        self._finish_comprehension(node, node.generators, scoped, env)
        return tags

    # -- bindings -----------------------------------------------------------

    def bind(
        self,
        target: ast.expr,
        tags: Taint,
        env: Env,
        value_node: ast.expr | None = None,
    ) -> None:
        """Strong-update ``target`` with ``tags`` (weak for containers)."""
        if isinstance(target, ast.Name):
            env[target.id] = tags
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = target.elts
            values: Sequence[ast.expr] | None = None
            if (
                isinstance(value_node, (ast.Tuple, ast.List))
                and len(value_node.elts) == len(elements)
                and not any(isinstance(e, ast.Starred) for e in elements)
                and not any(isinstance(e, ast.Starred) for e in value_node.elts)
            ):
                values = value_node.elts
            for position, element in enumerate(elements):
                if isinstance(element, ast.Starred):
                    element = element.value
                if values is not None:
                    self.bind(element, self.eval(values[position], env), env)
                else:
                    self.bind(element, tags, env)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            # Writing into a container/attribute poisons the container.
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and tags:
                env[base.id] = env.get(base.id, EMPTY) | tags
            self.eval(target, env)  # slices may contain walrus bindings
            return
        # Starred at top level or exotic targets: fall back to name walk.
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                env[node.id] = env.get(node.id, EMPTY) | tags

    # -- statements ---------------------------------------------------------

    def transfer(self, statement: ast.AST, env: Env) -> None:
        """Apply one statement's effect to ``env`` in place."""
        if isinstance(statement, ast.Assign):
            tags = self.eval(statement.value, env)
            for target in statement.targets:
                self.bind(target, tags, env, value_node=statement.value)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                tags = self.eval(statement.value, env)
                self.bind(statement.target, tags, env, value_node=statement.value)
        elif isinstance(statement, ast.AugAssign):
            tags = self.eval(statement.value, env)
            if isinstance(statement.target, ast.Name):
                previous = env.get(statement.target.id, EMPTY)
                env[statement.target.id] = previous | tags
            else:
                self.bind(statement.target, tags, env)
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value, env)
        elif isinstance(statement, ast.Return):
            self.result.return_taint |= self.eval(statement.value, env)
        elif isinstance(statement, ast.Raise):
            self.eval(statement.exc, env)
            self.eval(statement.cause, env)
        elif isinstance(statement, ast.Assert):
            self.eval(statement.test, env)
            if statement.msg is not None:
                tags = self.eval(statement.msg, env)
                if tags:
                    # assert messages feed AssertionError: an exception sink.
                    self.result.sink_hits.append(
                        SinkHit(statement, "exception", tags)
                    )
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(statement, (ast.If, ast.While)):
            self.eval(statement.test, env)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(statement.target, statement.iter, env)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                tags = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, tags, env)
        elif isinstance(statement, ast.Match):
            tags = self.eval(statement.subject, env)
            for case in statement.cases:
                for node in ast.walk(case.pattern):
                    name = getattr(node, "name", None)
                    if isinstance(name, str):
                        env[name] = env.get(name, EMPTY) | tags
        elif isinstance(statement, ast.ExceptHandler):
            if statement.name:
                env[statement.name] = EMPTY
        elif isinstance(statement, (ast.Import, ast.ImportFrom)):
            for alias in statement.names:
                bound = alias.asname or alias.name.split(".")[0]
                env[bound] = EMPTY
        elif isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            env[statement.name] = EMPTY  # analyzed as its own function
        # Pass/Global/Nonlocal/Break/Continue: no dataflow effect.


def _call_name(node: ast.Call) -> str | None:
    """The bare callee name of a call (``f`` or ``obj.f``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


#: Hard cap on fixpoint sweeps; the monotone lattice converges far sooner,
#: this only guards against a transfer-function bug looping forever.
_MAX_SWEEPS = 64


def analyze_function(
    body: Sequence[ast.stmt],
    policy: TaintPolicy,
    initial_env: Mapping[str, Taint] | None = None,
) -> FunctionDataflow:
    """Run the taint dataflow over one function body to a fixpoint.

    ``initial_env`` seeds the entry state (parameter taints).  Sink hits
    and local-call argument records are deduplicated across fixpoint
    sweeps by (location, kind/param): later sweeps see monotonically
    larger tag sets, and the final sweep's records win.
    """
    cfg = build_cfg(body)
    result = FunctionDataflow()
    interpreter = TaintInterpreter(policy, result)
    entry_env: Env = dict(initial_env or {})
    in_states: dict[int, Env] = {cfg.entry: entry_env}
    out_states: dict[int, Env] = {}

    for _sweep in range(_MAX_SWEEPS):
        changed = False
        # Re-collect per-sweep records so only the final (largest) states
        # contribute; return taint only grows, so it is left cumulative.
        result.sink_hits.clear()
        result.call_args.clear()
        for block_id in sorted(cfg.blocks):
            block = cfg.blocks[block_id]
            env = dict(in_states.get(block_id, {}))
            if block_id == cfg.entry:
                for name, tags in entry_env.items():
                    env[name] = env.get(name, EMPTY) | tags
            for statement in block.statements:
                interpreter.transfer(statement, env)
            out_states[block_id] = env
            for successor in block.successors:
                merged = join_envs([in_states.get(successor, {}), env])
                if not _env_le(merged, in_states.get(successor, {})):
                    in_states[successor] = merged
                    changed = True
        if not changed:
            break

    result.sink_hits = _dedupe_hits(result.sink_hits)
    return result


def _dedupe_hits(hits: list[SinkHit]) -> list[SinkHit]:
    merged: dict[tuple[int, int, str], SinkHit] = {}
    for hit in hits:
        key = (
            getattr(hit.node, "lineno", 0),
            getattr(hit.node, "col_offset", -1),
            hit.kind,
        )
        previous = merged.get(key)
        if previous is None:
            merged[key] = hit
        else:
            merged[key] = SinkHit(hit.node, hit.kind, previous.tags | hit.tags)
    return list(merged.values())
