"""Finding baselines: adopt new rule families incrementally.

A new rule family (say ``REP1xx``) may flag dozens of pre-existing sites
on a dirty tree; blanket-disabling the family until everything is fixed
would also silence *new* violations.  A baseline file records the known
findings — keyed by ``path::rule::message``, deliberately without line
numbers so unrelated edits do not invalidate it — and ``repro lint
--baseline FILE`` reports only findings that are not in it.  Each key
stores a count, so two identical findings in one file are matched
one-for-one and a third becomes visible.

Write mode (``--baseline FILE --update-baseline``) snapshots the current
findings; compare mode is the default when ``--baseline`` is given.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from .diagnostics import Diagnostic

#: Schema version of the baseline document.
_VERSION = 1


def baseline_key(diagnostic: Diagnostic) -> str:
    """The line-number-free identity of a finding."""
    path = Path(diagnostic.path).as_posix() if diagnostic.path else ""
    return f"{path}::{diagnostic.rule}::{diagnostic.message}"


def write_baseline(
    diagnostics: Iterable[Diagnostic], path: str | Path
) -> int:
    """Persist the findings as a baseline document; returns the entry count."""
    # Imported here, not at module top: repro.utility's package init pulls
    # in the anonymize engine, which imports lint.api — a module-level
    # import from a lint module would re-enter that half-initialized api.
    from ..utility.atomic import atomic_write_text

    counts = Counter(baseline_key(d) for d in diagnostics)
    document = {
        "version": _VERSION,
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return sum(counts.values())


class BaselineError(ValueError):
    """Raised for a missing or malformed baseline file."""


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline document written by :func:`write_baseline`."""
    file_path = Path(path)
    if not file_path.exists():
        raise BaselineError(f"baseline file does not exist: {file_path}")
    try:
        document = json.loads(file_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file {file_path} is not valid JSON: {exc}")
    entries = document.get("entries")
    if document.get("version") != _VERSION or not isinstance(entries, dict):
        raise BaselineError(
            f"baseline file {file_path} has an unsupported format"
        )
    counts: Counter = Counter()
    for key, count in entries.items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise BaselineError(
                f"baseline file {file_path} has an invalid entry {key!r}"
            )
        counts[key] = count
    return counts


def apply_baseline(
    diagnostics: Sequence[Diagnostic], baseline: Counter
) -> tuple[list[Diagnostic], int]:
    """Split findings into (new, matched-count) against a baseline.

    Matching consumes baseline budget per key, so a file may contain up to
    the recorded number of identical findings before new ones surface.
    """
    remaining = Counter(baseline)
    fresh: list[Diagnostic] = []
    matched = 0
    for diagnostic in diagnostics:
        key = baseline_key(diagnostic)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched += 1
        else:
            fresh.append(diagnostic)
    return fresh, matched
