"""Layer 5: exception-flow resource-lifecycle analysis (REP300–REP305).

Where Layer 4 (:mod:`repro.lint.purity`) certifies task ops for parallel
*determinism*, this layer certifies them for *crash safety*: every
resource a function acquires — file handles, temp files, pools, locks,
sockets — must be released on **all** paths including exceptional ones,
and every durable write must be atomic (tmp-in-the-target's-directory +
``os.replace``, i.e. :mod:`repro.utility.atomic`).

The mechanism is a forward may-held fixpoint over the exception-aware CFG
(:func:`repro.lint.dataflow.build_exception_cfg`): an acquisition binds an
abstract :class:`Resource` to the assigned name, aliases propagate it,
release calls remove it everywhere, and escapes (returns, stores into
attributes/containers, arguments to unresolved calls) retire it from
tracking.  A resource still held at the function's *normal* or *raise*
exit was not released on that path.  Calls into module-local / repo-local
functions consult interprocedural summaries (released / escaped /
forwarded parameters, fresh-resource returns, blocking behavior) that are
converged over the call graph first, so ``helper(f)`` closing ``f`` two
calls deep still counts as a release.

Rules:

* ``REP300`` — a REP3xx waiver comment without a ``-- justification``.
* ``REP301`` — resource acquired but not released on every path.
* ``REP302`` — non-atomic durable write (bare write-mode ``open`` /
  ``write_text`` / ``write_bytes`` outside the sanctioned atomic writer).
* ``REP303`` — temp file without guaranteed cleanup, or created outside
  the replace target's directory (cross-filesystem ``os.replace`` is not
  atomic).
* ``REP304`` — lock discipline: a cycle in the global lock
  acquisition-order graph, or a known-blocking call while a lock is held.
* ``REP305`` — pool/executor not joined (or shut down) on all paths.

Like the Layer 4 rules these are whole-program findings, so the pass
applies its own inline waivers (a disable comment naming a REP3xx id
plus a ``--`` justification) and folds per-op crash-safety verdicts into
the op certificate file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from .callgraph import FunctionInfo, ModuleInfo, ProgramIndex
from .dataflow import ExceptionCFG, build_exception_cfg, statement_may_raise
from .diagnostics import Diagnostic, Severity
from .purity import _file_suppressions, _portable_path

RESOURCE_RULES: dict[str, dict[str, str]] = {
    "REP300": {
        "title": "REP3xx waiver comment without a justification",
        "severity": "warning",
        "hint": "append ` -- <why this lifecycle is safe>` to the disable comment",
    },
    "REP301": {
        "title": "resource acquired but not released on every path",
        "severity": "error",
        "hint": "use `with`, or release in a `try/finally`",
    },
    "REP302": {
        "title": "non-atomic durable write",
        "severity": "error",
        "hint": "write through repro.utility.atomic (tmp in the target's "
        "directory + os.replace)",
    },
    "REP303": {
        "title": "temp-file lifecycle hazard",
        "severity": "error",
        "hint": "create the tmp with dir=<target's directory> and unlink it "
        "on every failure path",
    },
    "REP304": {
        "title": "lock discipline violation",
        "severity": "error",
        "hint": "acquire locks in one global order and never block while "
        "holding one",
    },
    "REP305": {
        "title": "pool/executor not joined on all paths",
        "severity": "error",
        "hint": "terminate+join (or shutdown) in a `finally`, or use `with`",
    },
}

#: Ids of the Layer 5 rules (used for selector expansion and waivers).
RESOURCE_RULE_IDS = frozenset(RESOURCE_RULES)


# -- the abstract resource domain --------------------------------------------

@dataclass(frozen=True, order=True)
class Resource:
    """One abstract resource: an acquisition site plus its kind."""

    kind: str  # "file" | "tempfile" | "pool" | "lock" | "socket"
    path: str
    line: int
    column: int
    description: str


ResourceSet = frozenset  # frozenset[Resource]

_EMPTY: frozenset = frozenset()

#: Receiver-method names that release a resource, by kind.  A pool is
#: only *safe* once joined (or shut down): ``close``/``terminate`` alone
#: still leaves worker processes to reap.
_RELEASE_METHODS: dict[str, frozenset[str]] = {
    "file": frozenset({"close"}),
    "tempfile": frozenset({"close"}),
    "pool": frozenset({"join", "shutdown"}),
    "lock": frozenset({"release"}),
    "socket": frozenset({"close"}),
}

#: Function-style releases: dotted callee -> resource kinds it releases
#: for every argument it is handed.
_RELEASE_FUNCS: dict[str, frozenset[str]] = {
    "os.unlink": frozenset({"tempfile", "file"}),
    "os.remove": frozenset({"tempfile", "file"}),
    "os.replace": frozenset({"tempfile"}),
    "os.rename": frozenset({"tempfile"}),
    "os.rmdir": frozenset({"tempfile"}),
    "os.close": frozenset({"file"}),
    "os.fdopen": frozenset({"file"}),
    "shutil.rmtree": frozenset({"tempfile"}),
}

#: Every release-ish callee name; a statement whose calls are all drawn
#: from this set is treated as non-raising, so `f.close()` inside a
#: `finally` does not spuriously "raise with f still held".
#: ``suppress`` rides along: constructing ``contextlib.suppress(...)`` in
#: a ``with`` header is trivially safe, and modeling it as raising would
#: put a phantom leak on the edge into every suppressed region.
_RELEASE_NAMES = frozenset(
    {"close", "release", "join", "terminate", "shutdown", "suppress"}
    | {dotted.split(".")[-1] for dotted in _RELEASE_FUNCS}
)

#: Callees known to *borrow* a handle argument without taking ownership:
#: passing a held resource to one keeps the caller responsible for it.
_BORROWING_CALLEES = frozenset(
    {"dump", "load", "writer", "reader", "DictWriter", "DictReader",
     "copyfileobj", "print"}
)

#: Call names that block the calling thread (REP304 while a lock is held).
_BLOCKING_CALLS = frozenset({"sleep", "wait", "recv", "accept", "select"})

#: Substrings marking a `with <expr>:` context as a lock acquisition.
_LOCKISH_TOKENS = ("lock", "mutex", "sem", "cond")


def _dotted_name(node: ast.expr, imports: Mapping[str, str]) -> str | None:
    """Import-resolved dotted text of a simple name/attribute chain."""
    if isinstance(node, ast.Name):
        return imports.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value, imports)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _call_kind(call: ast.Call, imports: Mapping[str, str]) -> str | None:
    """The resource kind a call acquires, or ``None``."""
    func = call.func
    dotted = _dotted_name(func, imports)
    if dotted in {"open", "io.open", "gzip.open", "bz2.open", "lzma.open"}:
        return "file"
    if dotted == "os.fdopen":
        return "file"
    if dotted in {
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "tempfile.SpooledTemporaryFile",
        "tempfile.TemporaryDirectory",
        "tempfile.mkdtemp",
    }:
        return "tempfile"
    if dotted == "tempfile.mkstemp":
        return "mkstemp"  # expands to an fd + a temp name
    if dotted == "socket.socket" or dotted == "socket.create_connection":
        return "socket"
    if isinstance(func, ast.Attribute):
        if func.attr == "open":
            return "file"  # path.open(...) and friends
        if func.attr == "Pool":
            return "pool"  # multiprocessing.Pool / get_context(...).Pool
    if dotted in {
        "multiprocessing.Pool",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
    }:
        return "pool"
    return None


def _receiver_token(node: ast.expr) -> str | None:
    """Stable text for a lock receiver (``self._lock``, ``CACHE_LOCK``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _receiver_token(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_lockish(token: str | None) -> bool:
    lowered = (token or "").lower()
    return any(mark in lowered for mark in _LOCKISH_TOKENS)


def _resource_may_raise(
    statement: ast.AST, is_release_call=None
) -> bool:
    """The resource layer's raise predicate.

    Like :func:`statement_may_raise`, but a statement whose only calls
    are release calls (``close``/``release``/``join``/``os.replace``/…)
    is treated as non-raising: modeling ``f.close()`` as raising with
    ``f`` still held would flag every correct ``try/finally``.  The
    optional ``is_release_call`` hook extends the family to resolved
    repo-local release wrappers (``helper(f)`` whose summary closes
    ``f``), so interprocedural releases don't reopen exception windows.
    """
    saw_call = False
    for node in ast.walk(statement):
        if isinstance(
            node, (ast.Raise, ast.Assert, ast.Await, ast.Yield, ast.YieldFrom)
        ):
            return True
        if isinstance(node, ast.Call):
            saw_call = True
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name in _RELEASE_NAMES:
                continue
            if is_release_call is not None and is_release_call(node):
                continue
            return True
    if saw_call:
        return False
    return statement_may_raise(statement)


# -- interprocedural summaries -----------------------------------------------

@dataclass
class FunctionSummary:
    """What a callee does with resource-valued parameters.

    Computed syntactically (one walk per function), then converged over
    the call graph so forwarding chains (``a(f)`` -> ``b(f)`` ->
    ``f.close()``) resolve.  ``released`` is may-release — good enough to
    transfer the obligation; ``escaped`` parameters are stored or
    re-exposed, so the caller's obligation is discharged conservatively.
    """

    released: set[str] = field(default_factory=set)
    escaped: set[str] = field(default_factory=set)
    forwarded: set[tuple[str, str, str]] = field(default_factory=set)
    returns_fresh: str | None = None
    returns_calls: set[str] = field(default_factory=set)
    may_block: bool = False
    blocking_site: tuple[str, int] | None = None


def _param_names(node: ast.AST) -> list[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _own_statements(node: ast.AST) -> Iterable[ast.AST]:
    """Every AST node of a function body, excluding nested def/class."""
    body = getattr(node, "body", [])
    if isinstance(body, ast.expr):  # Lambda bodies are a single expression
        body = [body]
    stack = list(body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


class _Resolver:
    """Resolves simple call targets to indexed function qualnames."""

    def __init__(self, index: ProgramIndex, module: ModuleInfo, fn: FunctionInfo):
        self.index = index
        self.module = module
        self.fn = fn

    def qualname_of(self, call: ast.Call) -> str | None:
        """The indexed callee of a plain-name or ``self.method`` call."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self.module.functions.get(func.id)
            if local is not None and local in self.index.functions:
                return local
            dotted = self.module.imports.get(func.id)
            if dotted is not None and dotted in self.index.functions:
                return dotted
            return None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and self.fn.class_name is not None
        ):
            class_info = self.index.classes.get(
                f"{self.fn.module}.{self.fn.class_name}"
            )
            if class_info is not None:
                return class_info.methods.get(func.attr)
        return None


def _scan_function(
    fn: FunctionInfo, module: ModuleInfo, resolver: _Resolver
) -> FunctionSummary:
    """One syntactic pass: parameter fates, fresh returns, blocking calls."""
    summary = FunctionSummary()
    params = set(_param_names(fn.node))
    fresh_names: set[str] = set()  # names assigned a fresh acquisition

    def arg_names(call: ast.Call) -> list[tuple[int, str]]:
        named = []
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Name):
                named.append((position, arg.id))
        return named

    for node in _own_statements(fn.node):
        if isinstance(node, ast.Call):
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            name = func.id if isinstance(func, ast.Name) else attr
            dotted = _dotted_name(func, module.imports)
            # Release through a receiver method (`f.close()`).
            if attr in _RELEASE_NAMES and isinstance(func.value, ast.Name):
                if func.value.id in params:
                    summary.released.add(func.value.id)
            # Release through a function (`os.unlink(tmp)`).
            if dotted in _RELEASE_FUNCS:
                for _, bound in arg_names(node):
                    if bound in params:
                        summary.released.add(bound)
                continue
            if name in _BLOCKING_CALLS:
                summary.may_block = True
                if summary.blocking_site is None:
                    summary.blocking_site = (fn.path, node.lineno)
            callee = resolver.qualname_of(node)
            if callee is not None:
                callee_params = _param_names(
                    resolver.index.functions[callee].node
                )
                if callee_params and callee_params[0] in ("self", "cls"):
                    callee_params = callee_params[1:]
                for position, bound in arg_names(node):
                    if bound in params and position < len(callee_params):
                        summary.forwarded.add(
                            (bound, callee, callee_params[position])
                        )
            elif name not in _BORROWING_CALLEES:
                # Unknown callee: a parameter handed to it may be kept
                # alive elsewhere — discharge the obligation.
                for _, bound in arg_names(node):
                    if bound in params:
                        summary.escaped.add(bound)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if isinstance(value, ast.Call):
                kind = _call_kind(value, module.imports)
                if kind is not None:
                    summary.returns_fresh = "file" if kind == "mkstemp" else kind
                callee = resolver.qualname_of(value)
                if callee is not None:
                    summary.returns_calls.add(callee)
            for inner in ast.walk(value) if value is not None else ():
                if isinstance(inner, ast.Name):
                    if inner.id in params:
                        summary.escaped.add(inner.id)
                    if inner.id in fresh_names:
                        summary.returns_fresh = summary.returns_fresh or "file"
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Call) and _call_kind(
                node.value, module.imports
            ):
                for target in node.targets:
                    for bound in ast.walk(target):
                        if isinstance(bound, ast.Name):
                            fresh_names.add(bound.id)
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for inner in ast.walk(node.value):
                        if isinstance(inner, ast.Name) and inner.id in params:
                            summary.escaped.add(inner.id)
    return summary


def _converge_summaries(
    index: ProgramIndex, summaries: dict[str, FunctionSummary]
) -> None:
    """Propagate released/escaped/blocking facts along forwarding edges."""
    for _ in range(16):
        changed = False
        for qualname, summary in summaries.items():
            for param, callee, callee_param in summary.forwarded:
                callee_summary = summaries.get(callee)
                if callee_summary is None:
                    continue
                if (
                    callee_param in callee_summary.released
                    and param not in summary.released
                ):
                    summary.released.add(param)
                    changed = True
                if (
                    callee_param in callee_summary.escaped
                    and param not in summary.escaped
                ):
                    summary.escaped.add(param)
                    changed = True
            for callee in summary.returns_calls:
                callee_summary = summaries.get(callee)
                if (
                    callee_summary is not None
                    and callee_summary.returns_fresh
                    and summary.returns_fresh is None
                ):
                    summary.returns_fresh = callee_summary.returns_fresh
                    changed = True
            if not summary.may_block:
                for callee in _callee_names(index, qualname):
                    callee_summary = summaries.get(callee)
                    if callee_summary is not None and callee_summary.may_block:
                        summary.may_block = True
                        summary.blocking_site = callee_summary.blocking_site
                        changed = True
                        break
        if not changed:
            break


def _callee_names(index: ProgramIndex, qualname: str) -> Iterable[str]:
    return index.edges.get(qualname, {})


# -- the per-function may-held fixpoint --------------------------------------

Env = dict  # name -> frozenset[Resource]


def _join(envs: Iterable[Env]) -> Env:
    joined: Env = {}
    for env in envs:
        for name, rids in env.items():
            if rids:
                joined[name] = joined.get(name, _EMPTY) | rids
    return joined


def _le(small: Env, big: Env) -> bool:
    return all(rids <= big.get(name, _EMPTY) for name, rids in small.items())


@dataclass
class _FlowResult:
    """What one function's held-resource fixpoint discovered."""

    acquired: dict[Resource, ast.Call] = field(default_factory=dict)
    escaped: set = field(default_factory=set)
    held_normal: set = field(default_factory=set)
    held_raise: set = field(default_factory=set)


class _ResourceFlow:
    """Forward may-held interpreter over one exception-aware CFG."""

    def __init__(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        resolver: _Resolver,
        summaries: Mapping[str, FunctionSummary],
    ):
        self.fn = fn
        self.module = module
        self.resolver = resolver
        self.summaries = summaries
        self.result = _FlowResult()
        self._with_headers: set[int] = set()

    # -- resource bookkeeping ---------------------------------------------

    def _fresh(self, call: ast.Call, kind: str, description: str) -> Resource:
        rid = Resource(
            kind=kind,
            path=self.fn.path,
            line=call.lineno,
            column=call.col_offset,
            description=description,
        )
        self.result.acquired.setdefault(rid, call)
        return rid

    def _escape(self, rids: frozenset) -> None:
        self.result.escaped.update(rids)

    @staticmethod
    def _release(env: Env, rids: frozenset, kinds: frozenset | None = None) -> None:
        doomed = {
            rid
            for rid in rids
            if kinds is None or rid.kind in kinds or rid.kind == "mkstemp"
        }
        if not doomed:
            return
        for name in list(env):
            remaining = env[name] - doomed
            if remaining != env[name]:
                env[name] = remaining

    # -- expression evaluation --------------------------------------------

    def eval(self, node: ast.expr | None, env: Env) -> frozenset:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            return env.get(node.id, _EMPTY)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.NamedExpr):
            rids = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = rids
            return rids
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, (ast.Await, ast.Starred)):
            return self.eval(node.value, env)
        rids = _EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                rids |= self.eval(child, env)
        return rids

    def _eval_call(self, call: ast.Call, env: Env) -> frozenset:
        arg_rids: list[frozenset] = [self.eval(a, env) for a in call.args]
        for keyword in call.keywords:
            arg_rids.append(self.eval(keyword.value, env))
        all_args = frozenset().union(*arg_rids) if arg_rids else _EMPTY

        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        name = func.id if isinstance(func, ast.Name) else attr
        dotted = _dotted_name(func, self.module.imports)

        # Function-style release (`os.replace(tmp, dst)`, `os.fdopen(fd)`).
        if dotted in _RELEASE_FUNCS:
            self._release(env, all_args, _RELEASE_FUNCS[dotted])
            if dotted == "os.fdopen" and id(call) not in self._with_headers:
                return frozenset({self._fresh(call, "file", "os.fdopen handle")})
            return _EMPTY

        # Receiver-method release (`f.close()`, `pool.join()`).
        if attr is not None and isinstance(func, ast.Attribute):
            receiver = self.eval(func.value, env)
            released_kinds = frozenset(
                kind
                for kind, methods in _RELEASE_METHODS.items()
                if attr in methods
            )
            if released_kinds and receiver:
                self._release(env, receiver, released_kinds)
                return _EMPTY
            if attr == "acquire":
                token = _receiver_token(func.value)
                if token is not None:
                    rid = self._fresh(call, "lock", f"lock {token}")
                    env[f"lock:{token}"] = frozenset({rid})
                return _EMPTY
            if attr == "release":
                token = _receiver_token(func.value)
                if token is not None:
                    held = env.get(f"lock:{token}", _EMPTY)
                    self._release(env, held, frozenset({"lock"}))
                return _EMPTY

        # Fresh acquisition.
        kind = _call_kind(call, self.module.imports)
        if kind is not None:
            if id(call) in self._with_headers:
                return _EMPTY  # `with` guarantees release
            description = f"{name or 'call'}(...)"
            if kind == "mkstemp":
                fd = self._fresh(call, "file", "mkstemp fd")
                tmp = self._fresh(call, "tempfile", "mkstemp temp file")
                return frozenset({fd, tmp})
            return frozenset({self._fresh(call, kind, description)})

        # Resolved repo-local callee: apply its summary to the arguments.
        callee = self.resolver.qualname_of(call)
        if callee is not None and callee in self.summaries:
            summary = self.summaries[callee]
            callee_params = _param_names(self.resolver.index.functions[callee].node)
            if callee_params and callee_params[0] in ("self", "cls"):
                callee_params = callee_params[1:]
            for position, rids in enumerate(arg_rids[: len(call.args)]):
                if not rids or position >= len(callee_params):
                    continue
                bound = callee_params[position]
                if bound in summary.released:
                    self._release(env, rids)
                elif bound in summary.escaped:
                    self._escape(rids)
            if summary.returns_fresh is not None:
                return frozenset(
                    {self._fresh(call, summary.returns_fresh, f"{name}(...)")}
                )
            return _EMPTY

        # Unknown callee: arguments escape (conservatively no finding),
        # unless the callee is a known borrower (`json.dump(obj, f)`).
        if all_args and name not in _BORROWING_CALLEES:
            self._escape(all_args)
        return _EMPTY

    # -- statement transfer -------------------------------------------------

    def transfer(self, statement: ast.AST, env: Env) -> None:
        if isinstance(statement, ast.Assign):
            rids = self.eval(statement.value, env)
            for target in statement.targets:
                self._bind(target, rids, env, statement.value)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                rids = self.eval(statement.value, env)
                self._bind(statement.target, rids, env, statement.value)
        elif isinstance(statement, ast.AugAssign):
            self.eval(statement.value, env)
        elif isinstance(statement, ast.Expr):
            value = statement.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                self._escape(self.eval(value.value, env))
            else:
                self.eval(value, env)
        elif isinstance(statement, ast.Return):
            self._escape(self.eval(statement.value, env))
        elif isinstance(statement, ast.Raise):
            self.eval(statement.exc, env)
            self.eval(statement.cause, env)
        elif isinstance(statement, (ast.If, ast.While)):
            self.eval(statement.test, env)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self.eval(statement.iter, env)
            self._bind(statement.target, _EMPTY, env, None)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if isinstance(item.context_expr, ast.Call):
                    self._with_headers.add(id(item.context_expr))
                rids = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, rids, env, None)
        elif isinstance(statement, ast.Match):
            self.eval(statement.subject, env)
        elif isinstance(statement, ast.ExceptHandler):
            if statement.name:
                env[statement.name] = _EMPTY
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    self._escape(env.pop(target.id, _EMPTY))
        elif isinstance(statement, ast.Assert):
            self.eval(statement.test, env)
        # Imports / defs / pass: no resource effect.

    def _bind(
        self,
        target: ast.expr,
        rids: frozenset,
        env: Env,
        value: ast.expr | None,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = rids
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # `fd, tmp = tempfile.mkstemp(...)`: split the pair precisely.
            if (
                isinstance(value, ast.Call)
                and _call_kind(value, self.module.imports) == "mkstemp"
                and len(target.elts) == 2
            ):
                fds = frozenset(r for r in rids if r.kind == "file")
                tmps = frozenset(r for r in rids if r.kind == "tempfile")
                self._bind(target.elts[0], fds, env, None)
                self._bind(target.elts[1], tmps, env, None)
                return
            for element in target.elts:
                self._bind(element, rids, env, None)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, rids, env, None)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            # Stored into an object/container: lifetime leaves this scope.
            self._escape(rids)
            return
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                env[node.id] = env.get(node.id, _EMPTY) | rids


_MAX_SWEEPS = 64


def _run_flow(
    fn: FunctionInfo,
    module: ModuleInfo,
    resolver: _Resolver,
    summaries: Mapping[str, FunctionSummary],
) -> _FlowResult:
    """Fixpoint the may-held analysis over one function."""
    body = getattr(fn.node, "body", None)
    flow = _ResourceFlow(fn, module, resolver, summaries)
    if not isinstance(body, list) or not body:
        return flow.result  # empty bodies and expression-bodied lambdas

    def is_release_call(call: ast.Call) -> bool:
        callee = resolver.qualname_of(call)
        summary = summaries.get(callee) if callee is not None else None
        return summary is not None and bool(summary.released)

    cfg: ExceptionCFG = build_exception_cfg(
        body,
        may_raise=lambda stmt: _resource_may_raise(stmt, is_release_call),
    )
    in_states: dict[int, Env] = {cfg.entry: {}}

    for _sweep in range(_MAX_SWEEPS):
        changed = False
        flow.result.escaped.clear()
        for block_id in sorted(cfg.blocks):
            block = cfg.blocks[block_id]
            entry_env = in_states.get(block_id, {})
            env = {name: rids for name, rids in entry_env.items()}
            for statement in block.statements:
                flow.transfer(statement, env)
            for successor in block.successors:
                merged = _join([in_states.get(successor, {}), env])
                if not _le(merged, in_states.get(successor, {})):
                    in_states[successor] = merged
                    changed = True
            for successor in block.exc_successors:
                # Exception edges carry the block's *entry* state: the
                # raising statement never completed.
                merged = _join([in_states.get(successor, {}), entry_env])
                if not _le(merged, in_states.get(successor, {})):
                    in_states[successor] = merged
                    changed = True
        if not changed:
            break

    def held(exit_id: int) -> set:
        rids: set = set()
        for bound in in_states.get(exit_id, {}).values():
            rids.update(bound)
        return {r for r in rids if r not in flow.result.escaped}

    flow.result.held_normal = held(cfg.normal_exit)
    flow.result.held_raise = held(cfg.raise_exit)
    return flow.result


# -- syntactic site checks (REP302 / REP303-dir) ------------------------------

#: The one module allowed to spell a bare write-mode open.
_SANCTIONED_SUFFIX = "repro/utility/atomic.py"

_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})


def _write_mode_of(call: ast.Call) -> str | None:
    """The constant mode string of an ``open``-family call, if any."""
    mode_node: ast.expr | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _is_durable_write_mode(mode: str) -> bool:
    return ("w" in mode or "x" in mode) and "a" not in mode and "r" not in mode


def _has_dir_keyword(call: ast.Call) -> bool:
    return any(keyword.arg == "dir" for keyword in call.keywords)


# -- whole-program pass -------------------------------------------------------

@dataclass(frozen=True)
class ResourceFinding:
    """A pre-suppression finding plus the function it belongs to."""

    diagnostic: Diagnostic
    function: str  # qualname, or "" for module-level code


@dataclass(frozen=True)
class ResourceWaiver:
    """One REP3xx disable comment that fired."""

    rule: str
    path: str
    line: int
    justification: str
    function: str


@dataclass
class ResourceAnalysis:
    """Converged Layer 5 results for one indexed program."""

    index: ProgramIndex
    surviving: list[ResourceFinding]
    waivers: list[ResourceWaiver]
    audit: list[Diagnostic]  # REP300


def _severity(rule: str) -> Severity:
    return Severity(RESOURCE_RULES[rule]["severity"])


def _diag(rule: str, message: str, path: str, line: int, column: int = 0) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        message=message,
        severity=_severity(rule),
        path=path,
        line=line,
        column=column,
        hint=RESOURCE_RULES[rule]["hint"],
    )


def _function_spans(module: ModuleInfo, index: ProgramIndex) -> list[tuple[int, int, str]]:
    spans = []
    for qualname, fn in index.functions.items():
        if fn.module != module.name:
            continue
        end = getattr(fn.node, "end_lineno", fn.line) or fn.line
        spans.append((fn.line, end, qualname))
    # Innermost (shortest) span wins for nested functions.
    spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
    return spans


def _enclosing_function(spans: Sequence[tuple[int, int, str]], line: int) -> str:
    best = ""
    best_width = None
    for start, end, qualname in spans:
        if start <= line <= end:
            width = end - start
            if best_width is None or width <= best_width:
                best = qualname
                best_width = width
    return best


def _site_findings(
    module: ModuleInfo, spans: Sequence[tuple[int, int, str]]
) -> list[ResourceFinding]:
    """REP302 write-site and REP303 tmp-placement findings for one module."""
    if Path(module.path).as_posix().endswith(_SANCTIONED_SUFFIX):
        return []
    findings: list[ResourceFinding] = []
    calls_replace = any(
        isinstance(node, ast.Call)
        and _dotted_name(node.func, module.imports) in {"os.replace", "os.rename"}
        for node in ast.walk(module.tree)
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        dotted = _dotted_name(func, module.imports)
        attr = func.attr if isinstance(func, ast.Attribute) else None
        function = _enclosing_function(spans, node.lineno)
        if attr in _WRITE_ATTRS:
            findings.append(
                ResourceFinding(
                    _diag(
                        "REP302",
                        f"non-atomic durable write: .{attr}(...) replaces the "
                        "target in place — a crash mid-write tears the file",
                        module.path,
                        node.lineno,
                        node.col_offset,
                    ),
                    function,
                )
            )
            continue
        is_open = dotted in {"open", "io.open", "os.fdopen"} or attr == "open"
        if is_open:
            mode = _write_mode_of(node)
            if mode is not None and _is_durable_write_mode(mode):
                findings.append(
                    ResourceFinding(
                        _diag(
                            "REP302",
                            f"non-atomic durable write: open mode {mode!r} "
                            "truncates the target before writing — a crash "
                            "mid-write tears the file",
                            module.path,
                            node.lineno,
                            node.col_offset,
                        ),
                        function,
                    )
                )
        if (
            dotted in {"tempfile.mkstemp", "tempfile.NamedTemporaryFile", "tempfile.mkdtemp"}
            and not _has_dir_keyword(node)
            and calls_replace
        ):
            findings.append(
                ResourceFinding(
                    _diag(
                        "REP303",
                        "temp file created without dir= in a module that "
                        "os.replace()s: the default temp dir may sit on "
                        "another filesystem, where replace is not atomic",
                        module.path,
                        node.lineno,
                        node.col_offset,
                    ),
                    function,
                )
            )
    return findings


_LEAK_RULE = {
    "file": "REP301",
    "tempfile": "REP303",
    "lock": "REP301",
    "socket": "REP301",
    "pool": "REP305",
}

_LEAK_NOUN = {
    "file": "file handle",
    "tempfile": "temp file",
    "lock": "lock",
    "socket": "socket",
    "pool": "pool/executor",
}


def _leak_findings(qualname: str, result: _FlowResult) -> list[ResourceFinding]:
    findings: list[ResourceFinding] = []
    for rid in sorted(result.held_normal | result.held_raise):
        on_normal = rid in result.held_normal
        on_raise = rid in result.held_raise
        if on_normal and on_raise:
            where = "any path"
        elif on_raise:
            where = "an exception path"
        else:
            where = "the normal path"
        rule = _LEAK_RULE[rid.kind]
        noun = _LEAK_NOUN[rid.kind]
        verb = "joined" if rid.kind == "pool" else "released"
        if rid.kind == "tempfile":
            message = (
                f"temp file from {rid.description} has no guaranteed cleanup: "
                f"not replaced or unlinked on {where}"
            )
        else:
            message = (
                f"{noun} acquired by {rid.description} is not {verb} on {where}"
            )
        findings.append(
            ResourceFinding(
                _diag(rule, message, rid.path, rid.line, rid.column), qualname
            )
        )
    return findings


# -- REP304: lock order + blocking-while-held ---------------------------------

@dataclass(frozen=True)
class _LockEdge:
    first: str
    second: str
    path: str
    line: int


def _lock_walk(
    fn: FunctionInfo,
    module: ModuleInfo,
    resolver: _Resolver,
    summaries: Mapping[str, FunctionSummary],
    edges: set,
    findings: list[ResourceFinding],
) -> None:
    """Collect acquisition-order edges and blocking-while-held findings."""

    def walk(statements: Sequence[ast.AST], held: tuple[str, ...]) -> None:
        held_list = list(held)
        for statement in statements:
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                tokens = []
                for item in statement.items:
                    token = _receiver_token(item.context_expr)
                    if token is not None and _is_lockish(token):
                        tokens.append(token)
                for token in tokens:
                    for holder in held_list:
                        edges.add(
                            _LockEdge(holder, token, fn.path, statement.lineno)
                        )
                walk(statement.body, tuple(held_list + tokens))
                continue
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                attr = func.attr if isinstance(func, ast.Attribute) else None
                name = func.id if isinstance(func, ast.Name) else attr
                if attr == "acquire" and isinstance(func, ast.Attribute):
                    token = _receiver_token(func.value)
                    if token is not None:
                        for holder in held_list:
                            edges.add(
                                _LockEdge(holder, token, fn.path, node.lineno)
                            )
                        held_list.append(token)
                elif attr == "release" and isinstance(func, ast.Attribute):
                    token = _receiver_token(func.value)
                    if token in held_list:
                        held_list.remove(token)
                elif held_list:
                    blocking_site: tuple[str, int] | None = None
                    if name in _BLOCKING_CALLS:
                        blocking_site = (fn.path, node.lineno)
                    else:
                        callee = resolver.qualname_of(node)
                        summary = summaries.get(callee) if callee else None
                        if summary is not None and summary.may_block:
                            blocking_site = (fn.path, node.lineno)
                    if blocking_site is not None:
                        findings.append(
                            ResourceFinding(
                                _diag(
                                    "REP304",
                                    f"blocking call {name}(...) while holding "
                                    f"lock {held_list[-1]}: other threads/"
                                    "processes stall behind the holder",
                                    blocking_site[0],
                                    blocking_site[1],
                                ),
                                fn.qualname,
                            )
                        )
            # Recurse into nested bodies with the current held set.
            for body_field in ("body", "orelse", "finalbody"):
                nested = getattr(statement, body_field, None)
                if nested and not isinstance(statement, (ast.With, ast.AsyncWith)):
                    walk(nested, tuple(held_list))
            for handler in getattr(statement, "handlers", ()) or ():
                walk(handler.body, tuple(held_list))

    body = getattr(fn.node, "body", None)
    if isinstance(body, list) and body:
        walk(body, ())


def _lock_cycle_findings(edges: set) -> list[ResourceFinding]:
    """One REP304 finding per acquisition-order cycle, deterministically."""
    graph: dict[str, set[str]] = {}
    witness: dict[tuple[str, str], _LockEdge] = {}
    for edge in sorted(edges, key=lambda e: (e.path, e.line, e.first, e.second)):
        graph.setdefault(edge.first, set()).add(edge.second)
        witness.setdefault((edge.first, edge.second), edge)
    findings: list[ResourceFinding] = []
    reported: set[frozenset] = set()
    for start in sorted(graph):
        stack = [(start, [start])]
        while stack:
            node, trail = stack.pop()
            for successor in sorted(graph.get(node, ())):
                if successor == start:
                    cycle = frozenset(trail)
                    if cycle in reported:
                        continue
                    reported.add(cycle)
                    edge = witness[(node, start)]
                    order = " -> ".join(trail + [start])
                    findings.append(
                        ResourceFinding(
                            _diag(
                                "REP304",
                                f"lock acquisition-order cycle: {order}; two "
                                "holders can deadlock waiting on each other",
                                edge.path,
                                edge.line,
                            ),
                            "",
                        )
                    )
                elif successor not in trail:
                    stack.append((successor, trail + [successor]))
    return findings


# -- suppressions, public pass, certificates ----------------------------------

def _apply_suppressions(
    index: ProgramIndex, raw: list[ResourceFinding]
) -> tuple[list[ResourceFinding], list[ResourceWaiver], list[Diagnostic]]:
    """Split raw findings into (surviving, waived, REP300 audit)."""
    tables: dict[str, dict[int, tuple[set, str]]] = {}
    sources = {m.path: m.source for m in index.modules.values()}
    surviving: list[ResourceFinding] = []
    waivers: list[ResourceWaiver] = []
    unaudited: dict[tuple[str, int], Diagnostic] = {}
    for finding in raw:
        diagnostic = finding.diagnostic
        table = tables.get(diagnostic.path)
        if table is None:
            source = sources.get(diagnostic.path)
            table = (
                _file_suppressions(source, RESOURCE_RULE_IDS)
                if source is not None
                else {}
            )
            tables[diagnostic.path] = table
        entry = table.get(diagnostic.line)
        if entry is None or diagnostic.rule not in entry[0]:
            surviving.append(finding)
            continue
        ids, justification = entry
        waivers.append(
            ResourceWaiver(
                rule=diagnostic.rule,
                path=diagnostic.path,
                line=diagnostic.line,
                justification=justification,
                function=finding.function,
            )
        )
        if not justification:
            key = (diagnostic.path, diagnostic.line)
            unaudited.setdefault(
                key,
                _diag(
                    "REP300",
                    f"waiver for {', '.join(sorted(ids))} has no justification; "
                    "append ` -- <reason>` so the audit trail explains why "
                    "the lifecycle is safe",
                    diagnostic.path,
                    diagnostic.line,
                ),
            )
    return surviving, waivers, list(unaudited.values())


def analyze_resources(index: ProgramIndex) -> ResourceAnalysis:
    """Run the full Layer 5 pass over an indexed program (memoized)."""
    cached = getattr(index, "_resource_analysis", None)
    if cached is not None:
        return cached

    summaries: dict[str, FunctionSummary] = {}
    resolvers: dict[str, _Resolver] = {}
    for qualname, fn in index.functions.items():
        module = index.modules.get(fn.module)
        if module is None:
            continue
        resolver = _Resolver(index, module, fn)
        resolvers[qualname] = resolver
        summaries[qualname] = _scan_function(fn, module, resolver)
    _converge_summaries(index, summaries)

    raw: list[ResourceFinding] = []
    lock_edges: set = set()
    span_cache: dict[str, list[tuple[int, int, str]]] = {}
    for module_name in sorted(index.modules):
        module = index.modules[module_name]
        spans = span_cache.setdefault(
            module.path, _function_spans(module, index)
        )
        raw.extend(_site_findings(module, spans))
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        module = index.modules.get(fn.module)
        if module is None:
            continue
        resolver = resolvers[qualname]
        if _needs_flow(fn):
            result = _run_flow(fn, module, resolver, summaries)
            raw.extend(_leak_findings(qualname, result))
        _lock_walk(fn, module, resolver, summaries, lock_edges, raw)
    raw.extend(_lock_cycle_findings(lock_edges))

    surviving, waivers, audit = _apply_suppressions(index, raw)
    analysis = ResourceAnalysis(
        index=index, surviving=surviving, waivers=waivers, audit=audit
    )
    index._resource_analysis = analysis  # type: ignore[attr-defined]
    return analysis


def _needs_flow(fn: FunctionInfo) -> bool:
    """Whether a function can possibly hold a tracked resource.

    A quick syntactic gate: only functions containing an acquisition call
    outside a ``with`` header (or a bare ``.acquire()``) pay for the CFG
    fixpoint; everything else trivially holds nothing.
    """
    with_headers: set[int] = set()
    for node in _own_statements(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    with_headers.add(id(item.context_expr))
    for node in _own_statements(fn.node):
        if not isinstance(node, ast.Call) or id(node) in with_headers:
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            return True
        if _probably_acquisition_name(func):
            return True
    return False


def _probably_acquisition_name(func: ast.expr) -> bool:
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name) else None
    )
    return name in {
        "open", "fdopen", "mkstemp", "mkdtemp", "NamedTemporaryFile",
        "TemporaryFile", "SpooledTemporaryFile", "TemporaryDirectory",
        "Pool", "ProcessPoolExecutor", "ThreadPoolExecutor", "socket",
        "create_connection",
    }


def check_resource_safety(
    paths: Sequence[str | Path], select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Run the Layer 5 pass over ``paths`` and return surviving findings.

    ``select`` narrows to specific REP3xx ids (already expanded by the
    caller); ``None`` runs all of them.  Waived findings are dropped, but
    an unjustified waiver surfaces as REP300.
    """
    from .purity import analyze_program

    analysis = analyze_resources(analyze_program(paths).index)
    findings = [f.diagnostic for f in analysis.surviving] + analysis.audit
    if select is not None:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    return findings


CRASH_SAFE = "crash-safe"
CRASH_UNCERTIFIED = "uncertified"


def crash_safety_by_op(analysis: ResourceAnalysis) -> dict[str, dict[str, Any]]:
    """Per-op crash-safety verdicts for the op certificate file.

    An op is ``crash-safe`` when no unwaived REP3xx finding lives in any
    function statically reachable from it; waivers ride along so the
    certificate records what was consciously accepted.
    """
    index = analysis.index
    verdicts: dict[str, dict[str, Any]] = {}
    for op_name in sorted(index.ops):
        registration = index.ops[op_name]
        reach = index.reachable([registration.function])
        findings = sorted(
            f"{f.diagnostic.rule}: {f.diagnostic.message}"
            for f in analysis.surviving
            if f.function in reach
        )
        waivers = [
            {
                "rule": waiver.rule,
                "path": _portable_path(waiver.path),
                "line": waiver.line,
                "justification": waiver.justification,
            }
            for waiver in sorted(
                (w for w in analysis.waivers if w.function in reach),
                key=lambda w: (w.path, w.line, w.rule),
            )
        ]
        verdicts[op_name] = {
            "findings": findings,
            "waivers": waivers,
            "verdict": CRASH_UNCERTIFIED if findings else CRASH_SAFE,
        }
    return verdicts
