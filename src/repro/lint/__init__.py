"""``repro.lint`` — static analysis for anonymization pipelines.

Two layers share one diagnostic core:

* **Layer 1, artifact analysis** (:mod:`repro.lint.artifacts`) validates
  the objects a run is configured with — hierarchy completeness and
  monotonicity, lattice well-formedness, privacy-parameter sanity, and the
  quality-index / r-property / property-vector contracts of Definitions
  1–3 — without anonymizing anything.  The recoding engine calls
  :func:`repro.lint.api.ensure_valid_hierarchies` and refuses to run on
  artifacts that fail.
* **Layer 2, codebase analysis** (:mod:`repro.lint.rules` on the
  :mod:`repro.lint.engine` visitor framework) enforces the repo rules
  ``REP001``–``REP005``: seeded randomness, tolerance-aware float
  comparison in comparators, no mutable defaults, no persisted set order,
  complete :class:`~repro.anonymize.algorithms.base.Anonymizer`
  subclasses.
* **Layer 3, taint analysis** (:mod:`repro.lint.taint` on the
  :mod:`repro.lint.dataflow` CFG/fixpoint machinery) proves raw
  quasi-identifier and sensitive values cannot leak past the anonymizer
  boundary through exceptions, logs, writers or provenance — the
  ``REP101``–``REP104`` family.  Violations are fixed by routing messages
  through :func:`repro.lint.redact.redact_value`.
* **Layer 4, parallel-safety analysis** (:mod:`repro.lint.purity` on the
  :mod:`repro.lint.callgraph` whole-program call graph) certifies every
  registered task operation for distributed execution — no module-state
  writes, no ambient nondeterminism, picklable payloads, complete cache
  keys, no persisted iteration order, no inline-only reachability — the
  ``REP200``–``REP206`` family, with machine-readable verdicts in
  ``lint/op_certificates.json``.
* **Layer 5, resource-lifecycle analysis** (:mod:`repro.lint.resources`
  on the exception-aware CFG of :mod:`repro.lint.dataflow`) certifies
  crash safety: every file handle, temp file, pool, lock and socket is
  released on all paths including exceptional ones, every durable write
  goes through the sanctioned atomic writer
  (:mod:`repro.utility.atomic`), and lock acquisition stays
  deadlock-free — the ``REP300``–``REP305`` family, folded into the same
  op certificates as Layer 4 under each op's ``crash_safety`` key.

Run all of it from the command line with ``repro lint [paths] [--strict]
[--format json|sarif] [--select REP1] [--baseline FILE] [--artifacts]``, or
programmatically through :mod:`repro.lint.api`.  Every rule is documented
with examples in ``docs/static_analysis.md``.
"""

from .api import (
    ARTIFACT_RULES,
    PROGRAM_RULES,
    RESOURCE_RULES,
    apply_baseline,
    check_bench_artifacts,
    check_cache_store,
    check_hierarchies,
    check_hierarchy,
    check_index_registry,
    check_lattice,
    check_obs_artifacts,
    check_parallel_safety,
    check_privacy_parameters,
    check_profile,
    check_property_vectors,
    check_resource_safety,
    check_run_artifacts,
    check_shipped_artifacts,
    check_unary_index,
    ensure_valid_hierarchies,
    expand_selection,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    op_certificates,
    redact_value,
    registered_rules,
    render_certificates,
    write_baseline,
    write_op_certificates,
)
from .diagnostics import Diagnostic, DiagnosticCollector, LintError, Severity
from .engine import LintContext, Rule, RuleVisitor, register
from .report import render, render_json, render_text

__all__ = [
    "ARTIFACT_RULES",
    "PROGRAM_RULES",
    "RESOURCE_RULES",
    "apply_baseline",
    "check_bench_artifacts",
    "check_cache_store",
    "check_hierarchies",
    "check_hierarchy",
    "check_index_registry",
    "check_lattice",
    "check_obs_artifacts",
    "check_parallel_safety",
    "check_privacy_parameters",
    "check_profile",
    "check_property_vectors",
    "check_resource_safety",
    "check_run_artifacts",
    "check_shipped_artifacts",
    "check_unary_index",
    "expand_selection",
    "op_certificates",
    "render_certificates",
    "write_op_certificates",
    "Diagnostic",
    "DiagnosticCollector",
    "ensure_valid_hierarchies",
    "lint_file",
    "lint_paths",
    "lint_source",
    "LintContext",
    "LintError",
    "load_baseline",
    "redact_value",
    "register",
    "registered_rules",
    "render",
    "render_json",
    "render_text",
    "Rule",
    "RuleVisitor",
    "Severity",
    "write_baseline",
]
