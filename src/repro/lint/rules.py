"""Repo-specific codebase rules (``REP001``–``REP005``, ``REP008``).

Each rule targets a defect class that has historically invalidated
anonymization reproductions: hidden non-determinism, tolerance-free float
comparison inside comparators, Python's mutable-default trap, persisted
set ordering, algorithm classes that silently miss the
:class:`~repro.anonymize.algorithms.base.Anonymizer` contract, and per-row
generalization loops that bypass the columnar measurement plane.

The rules are registered with :func:`repro.lint.engine.register`; run them
through :func:`repro.lint.engine.lint_paths` or ``repro lint``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .diagnostics import Diagnostic, Severity
from .engine import LintContext, Rule, RuleVisitor, register

#: Seeded bit-generator constructors that are fine to call unseeded-looking.
_NUMPY_SAFE = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: ``random`` module members that sample from (or reseed) the global state.
_RANDOM_GLOBAL = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}


def _call_args_seeded(node: ast.Call) -> bool:
    """Whether a constructor call passes a non-``None`` seed argument."""
    if node.keywords and any(keyword.arg == "seed" for keyword in node.keywords):
        seeds = [k.value for k in node.keywords if k.arg == "seed"]
        return not any(
            isinstance(s, ast.Constant) and s.value is None for s in seeds
        )
    if not node.args:
        return False
    first = node.args[0]
    return not (isinstance(first, ast.Constant) and first.value is None)


class _AliasTracker(ast.NodeVisitor):
    """Collects module aliases for ``random`` and ``numpy`` in one file."""

    def __init__(self) -> None:
        self.random_aliases: set[str] = set()
        self.numpy_aliases: set[str] = set()
        self.numpy_random_aliases: set[str] = set()
        self.from_random: set[str] = set()
        self.from_numpy_random: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        """Track ``import random`` / ``import numpy [as np]`` aliases."""
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                # `import numpy.random as npr` binds the submodule; plain
                # `import numpy.random` binds `numpy`.
                if alias.asname:
                    self.numpy_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Track ``from random/numpy.random import ...`` bindings."""
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                self.from_random.add(bound)
            elif node.module == "numpy.random":
                self.from_numpy_random.add(bound)
            elif node.module == "numpy" and alias.name == "random":
                self.numpy_random_aliases.add(bound)
        self.generic_visit(node)


@register
class UnseededRandomRule(Rule):
    """``REP001`` — unseeded ``random`` / ``numpy.random`` use.

    Sampling through the module-global state (``random.shuffle``,
    ``np.random.rand``) or constructing an unseeded generator
    (``np.random.default_rng()``, ``random.Random()``) makes runs
    irreproducible: property vectors, and hence every ▶-better verdict,
    change between invocations.  ``datasets/synthetic.py`` is exempt as the
    designated noise source.
    """

    id = "REP001"
    title = "unseeded random / numpy.random call breaks determinism"
    severity = Severity.ERROR
    hint = "use numpy.random.default_rng(seed) / random.Random(seed)"
    exempt_suffixes = ("datasets/synthetic.py",)

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Flag global-state sampling and unseeded generator construction."""
        aliases = _AliasTracker()
        aliases.visit(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                yield from self._check_attribute_call(context, node, func, aliases)
            elif isinstance(func, ast.Name):
                yield from self._check_name_call(context, node, func, aliases)

    def _check_attribute_call(
        self,
        context: LintContext,
        node: ast.Call,
        func: ast.Attribute,
        aliases: _AliasTracker,
    ) -> Iterator[Diagnostic]:
        owner = func.value
        # random.<member>(...)
        if isinstance(owner, ast.Name) and owner.id in aliases.random_aliases:
            if func.attr in _RANDOM_GLOBAL or func.attr == "seed":
                yield self.diagnostic(
                    context,
                    node,
                    f"call to random.{func.attr}() uses the process-global "
                    "random state",
                )
            elif func.attr == "Random" and not _call_args_seeded(node):
                yield self.diagnostic(
                    context, node, "random.Random() constructed without a seed"
                )
            return
        # np.random.<member>(...) or npr.<member>(...)
        is_numpy_random = (
            isinstance(owner, ast.Attribute)
            and owner.attr == "random"
            and isinstance(owner.value, ast.Name)
            and owner.value.id in aliases.numpy_aliases
        ) or (
            isinstance(owner, ast.Name)
            and owner.id in aliases.numpy_random_aliases
        )
        if is_numpy_random:
            if func.attr == "default_rng":
                if not _call_args_seeded(node):
                    yield self.diagnostic(
                        context,
                        node,
                        "numpy.random.default_rng() constructed without a seed",
                    )
            elif func.attr not in _NUMPY_SAFE:
                yield self.diagnostic(
                    context,
                    node,
                    f"call to numpy.random.{func.attr}() uses the legacy "
                    "global random state",
                )

    def _check_name_call(
        self,
        context: LintContext,
        node: ast.Call,
        func: ast.Name,
        aliases: _AliasTracker,
    ) -> Iterator[Diagnostic]:
        if func.id in aliases.from_random and func.id in _RANDOM_GLOBAL:
            yield self.diagnostic(
                context,
                node,
                f"call to random.{func.id}() uses the process-global random state",
            )
        elif func.id in aliases.from_numpy_random:
            if func.id == "default_rng" and not _call_args_seeded(node):
                yield self.diagnostic(
                    context,
                    node,
                    "numpy.random.default_rng() constructed without a seed",
                )
            elif func.id not in _NUMPY_SAFE and func.id != "default_rng":
                yield self.diagnostic(
                    context,
                    node,
                    f"call to numpy.random.{func.id}() uses the legacy "
                    "global random state",
                )


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return _is_float_literal(node.operand)
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_float_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


class _FloatScope(ast.NodeVisitor):
    """Names bound to obviously-float values within one function scope."""

    def __init__(self) -> None:
        self.float_names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Do not descend into nested scopes."""

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track ``name = <float literal | float(...)>`` bindings."""
        if _is_float_literal(node.value) or _is_float_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.float_names.add(target.id)
        self.generic_visit(node)


@register
class FloatEqualityRule(Rule):
    """``REP002`` — tolerance-free float equality in comparator code.

    Dominance and ▶-better verdicts in ``core/`` and ``moo/`` must not
    hinge on exact float identity: two releases whose index values differ
    by one ulp would flip between BETTER and EQUIVALENT across platforms.
    Flags ``==``/``!=`` where a comparand is a float literal, a ``float()``
    call, or a local name bound to one.
    """

    id = "REP002"
    title = "float == / != in comparator code; use a tolerance"
    severity = Severity.ERROR
    hint = "compare with math.isclose() / numpy.isclose() and a tolerance"
    require_parts = ("core", "moo")

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Flag exact float equality per function scope."""
        yield from self._check_scope(context, context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(context, node)

    def _check_scope(
        self, context: LintContext, scope: ast.AST
    ) -> Iterator[Diagnostic]:
        tracker = _FloatScope()
        body = getattr(scope, "body", [])
        for statement in body:
            tracker.visit(statement)

        def floatish(node: ast.AST) -> bool:
            return (
                _is_float_literal(node)
                or _is_float_call(node)
                or (isinstance(node, ast.Name) and node.id in tracker.float_names)
            )

        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # checked as its own scope
            for node in self._walk_same_scope(statement):
                if not isinstance(node, ast.Compare):
                    continue
                comparands = [node.left, *node.comparators]
                for op, left, right in zip(node.ops, comparands, comparands[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if floatish(left) or floatish(right):
                        yield self.diagnostic(
                            context,
                            node,
                            "exact float equality in comparator code; "
                            "one ulp of drift flips the verdict",
                        )
                        break

    @staticmethod
    def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield from FloatEqualityRule._walk_same_scope(child)


@register
class MutableDefaultRule(Rule):
    """``REP003`` — mutable default argument.

    A ``def f(x, acc=[])`` default is created once and shared across
    calls; appending to it leaks state between anonymization runs — the
    classic source of "works the first time" bugs.
    """

    id = "REP003"
    title = "mutable default argument"
    severity = Severity.ERROR
    hint = "default to None and construct the container inside the function"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Flag list/dict/set (literal or constructor) defaults."""
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.diagnostic(
                        context,
                        default,
                        f"function {node.name!r} has a mutable default argument",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )


def _is_set_expression(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    return isinstance(node, ast.Name) and node.id in set_names


class _SetScope(ast.NodeVisitor):
    """Names bound to set expressions within one function scope."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Do not descend into nested scopes."""

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track ``name = {…} | set(…) | frozenset(…)`` bindings."""
        if _is_set_expression(node.value, set()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    """``REP004`` — iteration order of a set reaches the output.

    Set iteration order depends on insertion history and hash seeding;
    looping over a set (or materializing one with ``list``/``tuple``)
    bakes that order into whatever gets persisted — released tables,
    reports, cached columns.  Iterate ``sorted(...)`` instead.
    """

    id = "REP004"
    title = "iteration over an unordered set"
    severity = Severity.WARNING
    hint = "iterate sorted(the_set) to pin a deterministic order"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Flag for-loops, comprehensions and list()/tuple() over sets."""
        yield from self._check_scope(context, context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(context, node)

    def _check_scope(
        self, context: LintContext, scope: ast.AST
    ) -> Iterator[Diagnostic]:
        tracker = _SetScope()
        body = getattr(scope, "body", [])
        for statement in body:
            tracker.visit(statement)
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # checked as its own scope
            for node in FloatEqualityRule._walk_same_scope(statement):
                if isinstance(node, ast.For) and _is_set_expression(
                    node.iter, tracker.set_names
                ):
                    yield self.diagnostic(
                        context, node, "for-loop iterates a set in hash order"
                    )
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    for generator in node.generators:
                        if isinstance(node, ast.SetComp):
                            continue  # building a set: order cannot escape
                        if _is_set_expression(generator.iter, tracker.set_names):
                            yield self.diagnostic(
                                context,
                                node,
                                "comprehension iterates a set in hash order",
                            )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in {"list", "tuple"}
                    and len(node.args) == 1
                    and _is_set_expression(node.args[0], tracker.set_names)
                ):
                    yield self.diagnostic(
                        context,
                        node,
                        f"{node.func.id}() materializes a set in hash order",
                    )


@register
class AnonymizerContractRule(Rule):
    """``REP005`` — ``Anonymizer`` subclass misses the required interface.

    Every concrete subclass of
    :class:`repro.anonymize.algorithms.base.Anonymizer` must define
    ``anonymize(self, dataset, hierarchies)``; a subclass without it (or
    with the wrong arity) only fails at run time, deep inside a
    comparative study.
    """

    id = "REP005"
    title = "Anonymizer subclass missing required interface methods"
    severity = Severity.ERROR
    hint = "define anonymize(self, dataset, hierarchies) on the subclass"

    _REQUIRED_ARITY = 3  # self, dataset, hierarchies

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Flag direct Anonymizer subclasses lacking ``anonymize``."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(self._is_anonymizer_base(base) for base in node.bases):
                continue
            if self._is_abstract(node):
                continue
            method = self._find_method(node, "anonymize")
            if method is None:
                yield self.diagnostic(
                    context,
                    node,
                    f"class {node.name!r} subclasses Anonymizer but does not "
                    "define anonymize()",
                )
            elif len(method.args.args) < self._REQUIRED_ARITY:
                yield self.diagnostic(
                    context,
                    method,
                    f"{node.name}.anonymize() takes {len(method.args.args)} "
                    f"positional parameter(s); the contract is "
                    "(self, dataset, hierarchies)",
                )

    @staticmethod
    def _is_anonymizer_base(base: ast.AST) -> bool:
        if isinstance(base, ast.Name):
            return base.id == "Anonymizer"
        return isinstance(base, ast.Attribute) and base.attr == "Anonymizer"

    @staticmethod
    def _is_abstract(node: ast.ClassDef) -> bool:
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in statement.decorator_list:
                    name = (
                        decorator.attr
                        if isinstance(decorator, ast.Attribute)
                        else getattr(decorator, "id", "")
                    )
                    if name in {"abstractmethod", "abstractproperty"}:
                        return True
        return False

    @staticmethod
    def _find_method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
        for statement in node.body:
            if isinstance(statement, ast.FunctionDef) and statement.name == name:
                return statement
        return None


#: Names that conventionally bind a dataset or its row/column material.
_ROW_SOURCE_NAMES = {"dataset", "rows", "raw"}


def _is_row_iterable(node: ast.AST) -> bool:
    """Whether an iterable expression walks dataset rows or a column."""
    if isinstance(node, ast.Name):
        return node.id in _ROW_SOURCE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr == "rows"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "column":
            return True
        if isinstance(func, ast.Name) and func.id in {"enumerate", "zip"}:
            return any(_is_row_iterable(argument) for argument in node.args)
    return False


def _calls_generalize(node: ast.AST) -> ast.Call | None:
    """The first ``<hierarchy>.generalize(...)`` call under ``node``."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "generalize"
        ):
            return child
    return None


@register
class RowwiseGeneralizationRule(Rule):
    """``REP008`` — per-row generalization loop outside the columnar plane.

    Calling ``hierarchy.generalize`` once per dataset row rediscovers the
    same few distinct values thousands of times; the columnar measurement
    plane (``datasets/columnar.py`` interning + ``hierarchy/codes.py``
    level tables) computes each distinct generalization once and recodes a
    column with a single gather.  Only the engine's reference row plane
    and the plane's own builders are sanctioned to loop rows.
    """

    id = "REP008"
    title = "per-row hierarchy.generalize loop bypasses the columnar plane"
    severity = Severity.WARNING
    hint = (
        "intern the column (dataset.columns().column(name)) and gather "
        "through hierarchy.codes.level_table(...) instead"
    )
    exempt_suffixes = (
        "anonymize/engine.py",
        "datasets/columnar.py",
        "hierarchy/codes.py",
    )

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        """Flag row-iterating for-loops/comprehensions calling generalize."""
        for node in ast.walk(context.tree):
            if isinstance(node, ast.For) and _is_row_iterable(node.iter):
                call = None
                for statement in node.body:
                    call = _calls_generalize(statement)
                    if call is not None:
                        break
                if call is not None:
                    yield self.diagnostic(
                        context,
                        call,
                        "hierarchy.generalize called once per row in a "
                        "dataset loop",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                if not any(
                    _is_row_iterable(generator.iter) for generator in node.generators
                ):
                    continue
                if isinstance(node, ast.DictComp):
                    call = _calls_generalize(node.key) or _calls_generalize(
                        node.value
                    )
                else:
                    call = _calls_generalize(node.elt)
                if call is not None:
                    yield self.diagnostic(
                        context,
                        call,
                        "hierarchy.generalize called once per row in a "
                        "comprehension over dataset rows",
                    )
