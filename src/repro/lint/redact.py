"""Redaction for diagnostics: reference raw values without exposing them.

Error messages need *something* to identify the offending cell — but a
raw quasi-identifier or sensitive value in an exception string escapes
the anonymizer boundary (REP101).  :func:`redact_value` gives messages a
stable, privacy-safe handle: the value's type, its length and a short
SHA-256 digest.  Someone holding the original data can recompute the
digest to locate the cell; someone holding only the log cannot invert it
(beyond guessing, which the truncated digest deliberately weakens).

The Layer-3 taint analysis treats ``redact_value`` as a sanitizer, so
routing a message through it is the sanctioned way to mention a cell.
"""

from __future__ import annotations

import hashlib
from typing import Any

#: Hex digits of SHA-256 kept in the redacted form — enough to correlate
#: against a known dataset, far too few to enumerate the preimage space.
_DIGEST_CHARS = 8


def redact_value(value: Any, label: str = "redacted") -> str:
    """A privacy-safe stand-in for ``value`` in diagnostics.

    Returns ``<redacted type=str len=5 sha256=1a2b3c4d>``-style text:
    debuggable (type, size and a correlatable digest) without reproducing
    any cell content.  ``label`` customizes the leading word, e.g.
    ``redact_value(cell, label="cell")``.
    """
    text = str(value)
    digest = hashlib.sha256(text.encode("utf-8", "surrogatepass")).hexdigest()
    return (
        f"<{label} type={type(value).__name__} len={len(text)} "
        f"sha256={digest[:_DIGEST_CHARS]}>"
    )
