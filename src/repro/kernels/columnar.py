"""The columnar-plane kernel operations, in numpy and pure-python form.

Every operation the measurement plane needs is expressed over dense int64
code arrays:

* ``gather`` — fancy-index a (tiny) per-level table over per-row codes;
* ``pack`` — one mixed-radix packing step ``combined * radix + codes``
  followed by a canonical re-densify, so the running product can never
  overflow int64;
* ``group`` / ``densify`` — label rows by distinct packed value;
* ``bincount`` / ``fold_add`` / ``fold_min`` — per-group sizes and
  representative rows, fresh or folded through a coarsening map;
* ``grouped_value_counts`` — per-class value histograms (the raw material
  of l-diversity / t-closeness) from one grouping pass;
* ``intern`` — vectorized first-occurrence code interning (numpy only;
  the pure backend returns ``None`` and callers keep the dict loop).

**Canonical labels.**  Both backends number group labels by the *sorted
rank* of the packed value (what ``np.unique(return_inverse=True)``
produces) and report one representative per group: the group's minimal row
index.  The pure backend reproduces this exactly, so partitions, labels,
sizes and value counts are identical across backends — not merely
isomorphic — which is what the kernel-equivalence tests assert.

Kernel arrays are opaque to callers: ``numpy.ndarray`` under the numpy
backend, ``array('q')`` under the pure backend.  Callers index them and
pass them back to kernel ops, nothing more; crossing a process boundary
or feeding a public API happens via ``tolist``.
"""

from __future__ import annotations

from array import array
from typing import Any, Sequence


class PythonKernels:
    """Pure-stdlib kernel backend over ``array('q')`` code arrays.

    Always importable; selected automatically when numpy is missing.  The
    implementations mirror the numpy backend's observable semantics
    operation for operation (see the module docstring's canonical-label
    contract).
    """

    name = "python"
    is_numpy = False
    #: The backend's array module, for callers (generators, benchmarks)
    #: that vectorize beyond the kernel surface; ``None`` here.
    numpy = None

    # -- construction -------------------------------------------------------

    def from_code_buffer(self, codes: "array[int]") -> "array[int]":
        """View an interned ``array('q')`` code buffer as a kernel array.

        Zero-copy in both backends; callers must treat the result as
        read-only (it aliases the interned column).
        """
        return codes

    def asarray(self, values: Sequence[int]) -> "array[int]":
        """A kernel array from a python int sequence."""
        return array("q", values)

    def tolist(self, values: Sequence[int]) -> list[int]:
        """Plain python ints (for public APIs and process boundaries)."""
        return [int(value) for value in values]

    # -- gathers ------------------------------------------------------------

    def gather(self, table: Sequence[int], indices: Sequence[int]) -> "array[int]":
        """``table[indices]``: a fresh, writable gathered array."""
        return array("q", map(table.__getitem__, indices))

    def scatter_fill(
        self, values: "array[int]", rows: Sequence[int], fill: int
    ) -> None:
        """``values[rows] = fill`` in place (``values`` from :meth:`gather`)."""
        for row in rows:
            values[row] = fill

    # -- mixed-radix packing and grouping ------------------------------------

    def pack(
        self,
        combined: Sequence[int],
        radix: int,
        codes: Sequence[int],
    ) -> "array[int]":
        """One packing step: ``combined * radix + codes``, re-densified.

        Re-densifying (to canonical sorted-rank labels) after every step
        keeps values strictly below ``rows * radix``, so the mixed-radix
        product can never overflow int64 no matter how many columns pack.
        """
        packed = [
            previous * radix + code for previous, code in zip(combined, codes)
        ]
        rank = {value: position for position, value in enumerate(sorted(set(packed)))}
        return array("q", map(rank.__getitem__, packed))

    def densify(self, combined: Sequence[int]) -> tuple["array[int]", int]:
        """Canonical labels (sorted rank of value) plus the group count."""
        rank = {value: position for position, value in enumerate(sorted(set(combined)))}
        return array("q", map(rank.__getitem__, combined)), len(rank)

    def group(
        self, combined: Sequence[int]
    ) -> tuple["array[int]", "array[int]", int]:
        """``(reps, labels, count)`` of the grouping by packed value.

        ``labels`` are canonical sorted-rank labels; ``reps[g]`` is the
        minimal row index of group ``g`` (its first occurrence in row
        order) — the invariant the incremental coarsening path relies on.
        """
        first: dict[int, int] = {}
        for row, value in enumerate(combined):
            if value not in first:
                first[value] = row
        ordered = sorted(first)
        rank = {value: position for position, value in enumerate(ordered)}
        labels = array("q", map(rank.__getitem__, combined))
        reps = array("q", (first[value] for value in ordered))
        return reps, labels, len(ordered)

    # -- per-group reductions ------------------------------------------------

    def bincount(self, labels: Sequence[int], count: int) -> "array[int]":
        """Per-group sizes of ``labels`` (values in ``range(count)``)."""
        sizes = array("q", bytes(8 * count))
        for label in labels:
            sizes[label] += 1
        return sizes

    def fold_add(
        self, child_of_group: Sequence[int], parent_sizes: Sequence[int], count: int
    ) -> "array[int]":
        """Child-group sizes: parent sizes summed through the coarsening map."""
        sizes = array("q", bytes(8 * count))
        for child, size in zip(child_of_group, parent_sizes):
            sizes[child] += size
        return sizes

    def fold_min(
        self,
        child_of_group: Sequence[int],
        parent_values: Sequence[int],
        count: int,
        fill: int,
    ) -> "array[int]":
        """Child-group minima of parent values through the coarsening map."""
        minima = array("q", [fill]) * count
        for child, value in zip(child_of_group, parent_values):
            if value < minima[child]:
                minima[child] = value
        return minima

    # -- scans ---------------------------------------------------------------

    def argsort(self, values: Sequence[int]) -> list[int]:
        """Indices that sort ``values`` ascending (values are distinct)."""
        return sorted(range(len(values)), key=values.__getitem__)

    def flatnonzero_less(self, values: Sequence[int], bound: int) -> list[int]:
        """Indices whose value is strictly below ``bound``."""
        return [index for index, value in enumerate(values) if value < bound]

    def count_less(self, values: Sequence[int], bound: int) -> int:
        """Number of values strictly below ``bound``."""
        return sum(1 for value in values if value < bound)

    def sum_less(self, values: Sequence[int], bound: int) -> int:
        """Sum of the values strictly below ``bound``."""
        return sum(value for value in values if value < bound)

    # -- histograms ----------------------------------------------------------

    def grouped_value_counts(
        self,
        class_of: Sequence[int],
        group_count: int,
        codes: Sequence[int],
    ) -> list[list[tuple[int, int]]]:
        """Per-class value histograms over interned codes.

        Returns, for each class index, ``(code, count)`` pairs in first-
        occurrence-within-class order — the exact insertion order the
        row plane's dict pass produces, so float consumers that iterate
        histogram values (entropy l-diversity) accumulate identically.
        """
        per_class: list[dict[int, int]] = [{} for _ in range(group_count)]
        for label, code in zip(class_of, codes):
            counts = per_class[label]
            counts[code] = counts.get(code, 0) + 1
        return [list(counts.items()) for counts in per_class]

    # -- interning -----------------------------------------------------------

    def intern(
        self, values: Sequence[Any]
    ) -> tuple["array[int]", tuple[Any, ...]] | None:
        """Vectorized first-occurrence interning, or ``None`` to decline.

        The pure backend always declines: the caller's dict loop *is* the
        pure-python implementation.
        """
        return None


class NumpyKernels:
    """Vectorized kernel backend (requires numpy).

    Observable semantics match :class:`PythonKernels` exactly; see the
    module docstring.  Import only when numpy is present.
    """

    name = "numpy"
    is_numpy = True

    def __init__(self) -> None:
        import numpy

        self._np = numpy

    @property
    def numpy(self):
        """The numpy module backing this backend."""
        return self._np

    # -- construction -------------------------------------------------------

    def from_code_buffer(self, codes: "array[int]") -> Any:
        """Zero-copy int64 view over an ``array('q')`` code buffer."""
        np = self._np
        if isinstance(codes, np.ndarray):
            return codes
        return np.frombuffer(codes, dtype=np.int64)

    def asarray(self, values: Sequence[int]) -> Any:
        """The values as an int64 numpy array."""
        return self._np.asarray(values, dtype=self._np.int64)

    def tolist(self, values: Any) -> list[int]:
        """The values as a plain list of ints."""
        if isinstance(values, self._np.ndarray):
            return values.tolist()
        return [int(value) for value in values]

    # -- gathers ------------------------------------------------------------

    def gather(self, table: Any, indices: Any) -> Any:
        """``table[indices]`` with both operands coerced to int64 arrays."""
        np = self._np
        if not isinstance(table, np.ndarray):
            if isinstance(table, array):
                table = np.frombuffer(table, dtype=np.int64)
            else:
                table = np.asarray(table, dtype=np.int64)
        if not isinstance(indices, np.ndarray):
            if isinstance(indices, array):
                indices = np.frombuffer(indices, dtype=np.int64)
            else:
                indices = np.asarray(indices, dtype=np.int64)
        return table[indices]

    def scatter_fill(self, values: Any, rows: Any, fill: int) -> None:
        """Write ``fill`` into ``values`` at the given row positions, in
        place.
        """
        values[self.asarray(rows) if not isinstance(rows, self._np.ndarray) else rows] = fill

    # -- mixed-radix packing and grouping ------------------------------------

    def pack(self, combined: Any, radix: int, codes: Any) -> Any:
        """Mixed-radix step: ``combined * radix + codes``, re-densified so
        packed values stay bounded by ``rows * radix``.
        """
        combined = combined * radix + codes
        _, dense = self._np.unique(combined, return_inverse=True)
        return dense

    def densify(self, combined: Any) -> tuple[Any, int]:
        """Renumber values to dense sorted ranks; returns ``(dense, count)``.
        """
        distinct, dense = self._np.unique(combined, return_inverse=True)
        return dense, int(distinct.size)

    def group(self, combined: Any) -> tuple[Any, Any, int]:
        """Group equal values: ``(reps, labels, count)`` with reps the
        minimal row index per group.
        """
        _, reps, labels = self._np.unique(
            combined, return_index=True, return_inverse=True
        )
        return reps.astype(self._np.int64, copy=False), labels, int(reps.size)

    # -- per-group reductions ------------------------------------------------

    def bincount(self, labels: Any, count: int) -> Any:
        """Occurrences of each label in ``0..count-1`` as an int64 array."""
        return self._np.bincount(labels, minlength=count).astype(
            self._np.int64, copy=False
        )

    def fold_add(self, child_of_group: Any, parent_sizes: Any, count: int) -> Any:
        """Sum ``parent_sizes`` into child groups selected by
        ``child_of_group``.
        """
        np = self._np
        sizes = np.zeros(count, dtype=np.int64)
        np.add.at(sizes, child_of_group, parent_sizes)
        return sizes

    def fold_min(
        self, child_of_group: Any, parent_values: Any, count: int, fill: int
    ) -> Any:
        """Minimum of ``parent_values`` per child group, starting from
        ``fill``.
        """
        np = self._np
        minima = np.full(count, fill, dtype=np.int64)
        np.minimum.at(minima, child_of_group, parent_values)
        return minima

    # -- scans ---------------------------------------------------------------

    def argsort(self, values: Any) -> list[int]:
        """Indices that would sort ``values`` ascending, as a list."""
        return self._np.argsort(values).tolist()

    def flatnonzero_less(self, values: Any, bound: int) -> list[int]:
        """Row indices where ``values < bound``, in row order."""
        return self._np.flatnonzero(values < bound).tolist()

    def count_less(self, values: Any, bound: int) -> int:
        """Number of elements strictly below ``bound``."""
        return int(self._np.count_nonzero(values < bound))

    def sum_less(self, values: Any, bound: int) -> int:
        """Sum of the elements strictly below ``bound``."""
        return int(values[values < bound].sum())

    # -- histograms ----------------------------------------------------------

    def grouped_value_counts(
        self, class_of: Any, group_count: int, codes: Any
    ) -> list[list[tuple[int, int]]]:
        """Per-class ``(code, count)`` histograms in
        first-occurrence-within-class order — the row plane's dict insertion
        order.
        """
        np = self._np
        if not isinstance(class_of, np.ndarray):
            class_of = self.asarray(class_of)
        if not isinstance(codes, np.ndarray):
            codes = np.frombuffer(codes, dtype=np.int64)
        if not class_of.size:
            return [[] for _ in range(group_count)]
        domain = int(codes.max()) + 1 if codes.size else 1
        keys = class_of * domain + codes
        distinct, first_row, counts = np.unique(
            keys, return_index=True, return_counts=True
        )
        classes = distinct // domain
        values = distinct % domain
        # Emit per class in first-occurrence-within-class order — the dict
        # insertion order of the row plane's single pass.
        order = np.lexsort((first_row, classes))
        histograms: list[list[tuple[int, int]]] = [[] for _ in range(group_count)]
        class_list = classes[order].tolist()
        value_list = values[order].tolist()
        count_list = counts[order].tolist()
        for label, code, count in zip(class_list, value_list, count_list):
            histograms[label].append((code, count))
        return histograms

    # -- interning -----------------------------------------------------------

    def intern(
        self, values: Sequence[Any]
    ) -> tuple["array[int]", tuple[Any, ...]] | None:
        """First-occurrence interning via a stable ``np.unique``.

        Only homogeneous scalar columns take the fast path: pure-``str``,
        pure-``int``/``bool``, and NaN-free pure-``float`` columns (NaN
        equality differs between sort-based and hash-based grouping).
        Anything else — object columns, mixed types (which ``np.asarray``
        would silently coerce, merging values the dict loop keeps
        distinct), ints beyond int64 — returns ``None`` and the caller's
        dict loop runs instead.  Codes and decode tables are identical to
        the dict loop's: codes numbered by first occurrence in row order,
        decode holding the *original* column objects.
        """
        np = self._np
        if not len(values):
            return array("q"), ()
        kinds = {type(value) for value in values}
        if kinds == {str}:
            # numpy's fixed-width unicode dtype pads with (and therefore
            # strips trailing) NULs, which would merge 'a' with 'a\x00';
            # such columns fall back to the dict loop.
            if any("\x00" in value for value in values):
                return None
            dtype = None  # numpy infers <U{max_len}
        elif kinds <= {int, bool}:
            dtype = np.int64
        elif kinds == {float}:
            dtype = np.float64
        else:
            return None
        try:
            arr = np.asarray(values, dtype=dtype)
        except (ValueError, TypeError, OverflowError):  # huge ints, ragged
            return None
        if arr.ndim != 1 or len(arr) != len(values):
            return None
        if arr.dtype.kind == "f" and np.isnan(arr).any():
            return None
        _, first_idx, inverse = np.unique(
            arr, return_index=True, return_inverse=True
        )
        order = np.argsort(first_idx, kind="stable")
        rank = np.empty(order.size, dtype=np.int64)
        rank[order] = np.arange(order.size, dtype=np.int64)
        codes = array("q", bytes(8 * len(values)))
        codes_np = np.frombuffer(codes, dtype=np.int64)
        with _writable(codes_np):
            codes_np[:] = rank[inverse]
        decode = tuple(values[int(position)] for position in first_idx[order])
        return codes, decode


class _writable:
    """Temporarily lift the write guard on a frombuffer view (local use)."""

    def __init__(self, arr: Any) -> None:
        self._arr = arr

    def __enter__(self) -> Any:
        self._arr.flags.writeable = True
        return self._arr

    def __exit__(self, *exc: Any) -> None:
        self._arr.flags.writeable = False
