"""Backend-selectable numeric kernels for the measurement planes.

The columnar plane reduces recoding and grouping to a handful of dense
integer-array operations (gathers, mixed-radix packing, bincounts).  This
package provides those operations behind one small interface with two
interchangeable backends:

* the **numpy backend** (:class:`~repro.kernels.columnar.NumpyKernels`) —
  vectorized gathers/``np.unique``/``bincount``; the scale path that makes
  full-lattice k-sweeps on 1M+ rows take seconds;
* the **python backend** (:class:`~repro.kernels.columnar.PythonKernels`) —
  pure-stdlib loops over ``array('q')`` codes; always available, used
  automatically when numpy is not installed.

Both backends are **bit-identical by contract**: identical group labels
(canonical sorted-rank numbering), sizes, representatives, minimums and
value counts for identical inputs — pinned by
``tests/test_kernel_equivalence.py`` and the plane-equivalence goldens.
Selection happens once at import: numpy when importable, overridable with
``REPRO_KERNELS=python`` (force the fallback) or ``REPRO_KERNELS=numpy``
(fail fast when numpy is missing).

:mod:`repro.kernels.array` additionally exposes ``xp`` — numpy itself when
installed, else a pure-python 1-D float array shim with the small numpy
subset the property-vector/comparator stack uses.  :mod:`repro.kernels.prng`
holds the counter-based RNG whose scalar and vectorized twins produce
identical streams, which is what keeps the synthetic data generators
byte-identical with and without numpy.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

try:  # pragma: no cover - trivially environment-dependent
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

from .columnar import PythonKernels

_FORCED = os.environ.get("REPRO_KERNELS", "").strip().lower()
if _FORCED and _FORCED not in ("numpy", "python"):
    raise RuntimeError(
        f"REPRO_KERNELS must be 'numpy' or 'python', got {_FORCED!r}"
    )
if _FORCED == "numpy" and not HAVE_NUMPY:
    raise RuntimeError("REPRO_KERNELS=numpy but numpy is not importable")

if HAVE_NUMPY and _FORCED != "python":
    from .columnar import NumpyKernels

    _ACTIVE = NumpyKernels()
else:
    _ACTIVE = PythonKernels()


def active():
    """The process-wide kernel backend (chosen once at import)."""
    return _ACTIVE


def backend_name() -> str:
    """Name of the active backend: ``"numpy"`` or ``"python"``."""
    return _ACTIVE.name


@contextlib.contextmanager
def force_backend(name: str) -> Iterator[None]:
    """Temporarily swap the active backend (tests only).

    Production code must never call this: the backend is a process-wide
    constant so cached partitions/labels always share one representation.
    The kernel-equivalence tests use it to drive both implementations
    through the same plane surfaces.
    """
    global _ACTIVE
    if name == "numpy":
        if not HAVE_NUMPY:
            raise RuntimeError("numpy backend requested but numpy is missing")
        from .columnar import NumpyKernels

        replacement = NumpyKernels()
    elif name == "python":
        replacement = PythonKernels()
    else:
        raise ValueError(f"unknown kernel backend {name!r}")
    previous = _ACTIVE
    _ACTIVE = replacement
    try:
        yield
    finally:
        _ACTIVE = previous


__all__ = [
    "HAVE_NUMPY",
    "active",
    "backend_name",
    "force_backend",
    "PythonKernels",
]
