"""``xp``: numpy, or a pure-python stand-in for the 1-D float subset we use.

The property-vector stack (:mod:`repro.core.vector`, the quality indices,
comparators, bias summaries, linkage reports) only ever manipulates 1-D
float arrays with a small set of operations.  Modules migrate by replacing
``import numpy as np`` with::

    from repro.kernels.array import xp as np

and keep every call site unchanged.  When numpy is importable (and not
disabled via ``REPRO_KERNELS=python``), ``xp`` *is* the numpy module.
Otherwise it is :data:`pyarray_namespace`, whose :class:`PyArray` implements
the subset over ``array('d')`` storage:

* elementwise arithmetic and comparisons (comparisons yield 0.0/1.0 masks);
* ``min/max/mean/sum/std``, ``sort``, ``quantile`` (numpy's linear method,
  including the ``t >= 0.5`` lerp branch, so interpolated quantiles agree
  to the last ulp), ``median`` as the mean of the middle pair;
* ``tobytes`` over IEEE-754 doubles, so hashes agree with numpy's.

Reductions in :class:`PyArray` accumulate **sequentially** (left to right).
numpy's ``.sum()`` uses pairwise accumulation, which may differ in the last
ulp for arrays longer than the pairwise block size; no golden-pinned value
flows through an ``xp`` reduction (the goldens pin raw vectors and
sequentially-accumulated metrics), so this never shows up in fixtures —
see the "Kernel layer" section of ``docs/architecture.md``.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Iterable, Iterator, Sequence

from . import HAVE_NUMPY, backend_name


class PyArray:
    """A 1-D float array implementing the numpy subset the repo uses."""

    __slots__ = ("_data",)

    def __init__(self, values: Iterable[float]):
        if isinstance(values, PyArray):
            self._data = array("d", values._data)
        else:
            self._data = array("d", (float(v) for v in values))

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[float]:
        return iter(self._data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return PyArray(self._data[index])
        return self._data[index]

    def __repr__(self) -> str:
        return f"PyArray({self.tolist()!r})"

    # -- numpy-shaped attributes ---------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements (numpy-shaped alias of ``len``)."""
        return len(self._data)

    @property
    def ndim(self) -> int:
        """Always 1 — PyArray is one-dimensional by construction."""
        return 1

    @property
    def shape(self) -> tuple[int, ...]:
        """``(len,)``, mirroring a 1-D numpy array."""
        return (len(self._data),)

    def setflags(self, write: bool = True) -> None:
        """Accepted for API compatibility; PyArray has no write guard."""

    def tolist(self) -> list[float]:
        """The values as a plain list of floats."""
        return list(self._data)

    def tobytes(self) -> bytes:
        """IEEE-754 little-endian doubles; hashes agree with numpy's."""
        return self._data.tobytes()

    # -- elementwise arithmetic ----------------------------------------------

    def _binary(self, other: Any, op) -> "PyArray":
        if isinstance(other, PyArray):
            if len(other) != len(self):
                raise ValueError(
                    f"operands have different sizes ({len(self)} vs {len(other)})"
                )
            return PyArray(op(a, b) for a, b in zip(self._data, other._data))
        scalar = float(other)
        return PyArray(op(a, scalar) for a in self._data)

    def __neg__(self) -> "PyArray":
        return PyArray(-a for a in self._data)

    def __add__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: b - a)

    def __mul__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: a / b)

    # -- elementwise comparisons (0.0/1.0 masks) ------------------------------

    def __gt__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: 1.0 if a > b else 0.0)

    def __ge__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: 1.0 if a >= b else 0.0)

    def __lt__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: 1.0 if a < b else 0.0)

    def __le__(self, other: Any) -> "PyArray":
        return self._binary(other, lambda a, b: 1.0 if a <= b else 0.0)

    def __eq__(self, other: Any):  # type: ignore[override]
        if isinstance(other, (PyArray, int, float)):
            return self._binary(other, lambda a, b: 1.0 if a == b else 0.0)
        return NotImplemented

    def __ne__(self, other: Any):  # type: ignore[override]
        if isinstance(other, (PyArray, int, float)):
            return self._binary(other, lambda a, b: 1.0 if a != b else 0.0)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - arrays are unhashable, like numpy

    # -- reductions (sequential accumulation) ---------------------------------

    def min(self) -> float:
        """Smallest element."""
        return min(self._data)

    def max(self) -> float:
        """Largest element."""
        return max(self._data)

    def sum(self) -> float:
        """Sequential (left-to-right) sum; see the module docstring."""
        total = 0.0
        for value in self._data:
            total += value
        return total

    def mean(self) -> float:
        """Arithmetic mean over the sequential sum."""
        return self.sum() / len(self._data)

    def std(self) -> float:
        """Population standard deviation (``ddof=0``, like numpy)."""
        center = self.mean()
        total = 0.0
        for value in self._data:
            deviation = value - center
            total += deviation * deviation
        return math.sqrt(total / len(self._data))


def _as_pyarray(values: Any) -> PyArray:
    if isinstance(values, PyArray):
        return values
    return PyArray(values)


def _quantile_value(ordered: Sequence[float], q: float) -> float:
    """numpy's linear-interpolation quantile over pre-sorted values.

    Reproduces ``np.quantile(..., method="linear")`` exactly, including the
    lerp branch switch at ``t >= 0.5`` (numpy computes ``b - (b-a)*(1-t)``
    there to keep the interpolation monotone), so interpolated quantiles
    agree with numpy to the last bit.
    """
    position = q * (len(ordered) - 1)
    below = math.floor(position)
    above = min(below + 1, len(ordered) - 1)
    t = position - below
    a, b = ordered[below], ordered[above]
    diff = b - a
    if t >= 0.5:
        return b - diff * (1 - t)
    return a + diff * t


class _PyLinalg:
    """The ``xp.linalg`` namespace: vector norms only."""

    @staticmethod
    def norm(values: Any, ord: float = 2) -> float:
        arr = _as_pyarray(values)
        if ord == 2:
            total = 0.0
            for value in arr:
                total += value * value
            return math.sqrt(total)
        if ord == 1:
            total = 0.0
            for value in arr:
                total += abs(value)
            return total
        if math.isinf(ord) and ord > 0:
            return max(abs(value) for value in arr)
        raise ValueError(f"unsupported norm order {ord!r}")


class PyArrayNamespace:
    """Module-shaped namespace mirroring the numpy functions we call."""

    ndarray = PyArray
    inf = math.inf
    linalg = _PyLinalg()

    # -- construction -------------------------------------------------------

    @staticmethod
    def array(values: Any, dtype: Any = None, copy: bool = True) -> PyArray:
        """Build a PyArray (the ``dtype``/``copy`` arguments are accepted and ignored)."""
        return PyArray(values)

    @staticmethod
    def asarray(values: Any, dtype: Any = None) -> PyArray:
        """The input itself when already a PyArray, else a new PyArray."""
        if isinstance(values, PyArray) and dtype is None:
            return values
        return _as_pyarray(values)

    @staticmethod
    def full(size: int, fill: float) -> PyArray:
        """``size`` copies of ``fill``."""
        return PyArray([float(fill)] * int(size))

    @staticmethod
    def zeros_like(values: Any) -> PyArray:
        """A zero array of the same length."""
        return PyArray([0.0] * len(_as_pyarray(values)))

    @staticmethod
    def arange(start: float, stop: float | None = None, step: float = 1) -> PyArray:
        """Integer range as floats, with numpy's one/two/three-argument forms."""
        if stop is None:
            start, stop = 0, start
        return PyArray(range(int(start), int(stop), int(step)))

    @staticmethod
    def linspace(start: float, stop: float, num: int = 50) -> PyArray:
        """``num`` evenly spaced values from ``start`` to ``stop`` inclusive."""
        if num == 1:
            return PyArray([float(start)])
        step = (stop - start) / (num - 1)
        values = [start + i * step for i in range(num)]
        values[-1] = float(stop)
        return PyArray(values)

    # -- predicates ----------------------------------------------------------

    @staticmethod
    def all(values: Any) -> bool:
        """Whether every element is nonzero (masks use 0.0/1.0)."""
        return all(v != 0 for v in _as_pyarray(values))

    @staticmethod
    def any(values: Any) -> bool:
        """Whether any element is nonzero."""
        return any(v != 0 for v in _as_pyarray(values))

    @staticmethod
    def count_nonzero(values: Any) -> int:
        """Number of nonzero elements."""
        return sum(1 for v in _as_pyarray(values) if v != 0)

    @staticmethod
    def isfinite(values: Any) -> PyArray:
        """Elementwise finiteness as a 0.0/1.0 mask."""
        return PyArray(1.0 if math.isfinite(v) else 0.0 for v in _as_pyarray(values))

    @staticmethod
    def array_equal(first: Any, second: Any) -> bool:
        """Whether both sequences have equal length and elements."""
        a, b = _as_pyarray(first), _as_pyarray(second)
        return len(a) == len(b) and all(x == y for x, y in zip(a, b))

    @staticmethod
    def isclose(a: float, b: float, rtol: float = 1e-05, atol: float = 1e-08) -> bool:
        """numpy's closeness formula on scalars (infinities compare equal)."""
        a, b = float(a), float(b)
        if math.isnan(a) or math.isnan(b):
            return False
        if math.isinf(a) or math.isinf(b):
            return a == b
        return abs(a - b) <= atol + rtol * abs(b)

    # -- elementwise ---------------------------------------------------------

    @staticmethod
    def maximum(first: Any, second: Any) -> PyArray:
        """Elementwise maximum (scalar second operand broadcasts)."""
        return _as_pyarray(first)._binary(second, lambda a, b: a if a >= b else b)

    @staticmethod
    def minimum(first: Any, second: Any) -> PyArray:
        """Elementwise minimum (scalar second operand broadcasts)."""
        return _as_pyarray(first)._binary(second, lambda a, b: a if a <= b else b)

    @staticmethod
    def log(values: Any) -> PyArray:
        """Elementwise natural logarithm."""
        return PyArray(math.log(v) for v in _as_pyarray(values))

    @staticmethod
    def sqrt(values: Any):
        """Square root: scalar in, scalar out; array in, elementwise array out."""
        if isinstance(values, (int, float)):
            return math.sqrt(values)
        return PyArray(math.sqrt(v) for v in _as_pyarray(values))

    # -- reductions and order statistics --------------------------------------

    @staticmethod
    def sort(values: Any) -> PyArray:
        """Ascending copy of the values."""
        return PyArray(sorted(_as_pyarray(values)))

    @staticmethod
    def prod(values: Any) -> float:
        """Sequential product of the values."""
        product = 1.0
        for value in _as_pyarray(values):
            product *= value
        return product

    @staticmethod
    def mean(values: Any) -> float:
        """Arithmetic mean (delegates to :meth:`PyArray.mean`)."""
        return _as_pyarray(values).mean()

    @staticmethod
    def median(values: Any) -> float:
        """Middle value, or the mean of the middle pair for even lengths."""
        ordered = sorted(_as_pyarray(values))
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    @staticmethod
    def quantile(values: Any, q: float) -> float:
        """numpy's linear-interpolation quantile (bit-identical; see ``_quantile_value``)."""
        return _quantile_value(sorted(_as_pyarray(values)), float(q))

    # -- formatting ----------------------------------------------------------

    @staticmethod
    def array2string(values: Any, threshold: int = 1000, precision: int = 8) -> str:
        """numpy-style rendering with head/tail elision past ``threshold``."""
        arr = _as_pyarray(values)

        def fmt(value: float) -> str:
            if value == int(value) and abs(value) < 1e16:
                return f"{int(value)}."
            text = f"{value:.{precision}f}".rstrip("0")
            return text + "0" if text.endswith(".") else text

        if len(arr) > threshold:
            head = [fmt(v) for v in arr[:3]]
            tail = [fmt(v) for v in arr[len(arr) - 3 :]]
            return "[" + " ".join(head) + " ... " + " ".join(tail) + "]"
        return "[" + " ".join(fmt(v) for v in arr) + "]"


pyarray_namespace = PyArrayNamespace()

if HAVE_NUMPY and backend_name() == "numpy":
    import numpy as xp  # noqa: F401 - re-exported
else:
    xp = pyarray_namespace  # type: ignore[assignment]


__all__ = ["PyArray", "PyArrayNamespace", "pyarray_namespace", "xp"]
